//! Framed LDAP access through the full pipeline: coalescing same-station
//! ops into one framed request must cut access-stage latency by exactly
//! the amortised framing share — and change nothing else (admission,
//! routing, results, metrics classes).

use udr_core::{BatchItem, BatchOptions, OpRequest, RetryPolicy, Udr, UdrConfig};
use udr_ldap::{Dn, FrameCursor, LdapOp};
use udr_model::attrs::{AttrId, AttrMod, AttrValue};
use udr_model::config::TxnClass;
use udr_model::identity::{Identity, IdentitySet, Imsi, Msisdn};
use udr_model::ids::SiteId;
use udr_model::time::{SimDuration, SimTime};

fn ids(n: u64) -> IdentitySet {
    IdentitySet {
        imsi: Imsi::new(format!("21401{n:010}")).unwrap(),
        msisdn: Msisdn::new(format!("346{n:08}")).unwrap(),
        impus: vec![],
        impi: None,
    }
}

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

fn build(seed: u64) -> (Udr, Vec<IdentitySet>) {
    let mut cfg = UdrConfig::figure2();
    cfg.seed = seed;
    let mut udr = Udr::build(cfg).expect("valid config");
    let mut subs = Vec::new();
    for r in 0..3u64 {
        let subscriber = ids(r + 1);
        let out = udr.provision_subscriber(
            &subscriber,
            r as u32,
            SiteId(0),
            SimTime::ZERO + SimDuration::from_millis(1 + r),
        );
        assert!(out.is_ok(), "provisioning failed: {:?}", out.op.result);
        subs.push(subscriber);
    }
    (udr, subs)
}

fn read_op(subscriber: &IdentitySet) -> LdapOp {
    LdapOp::Search {
        base: Dn::for_identity(Identity::Imsi(subscriber.imsi)),
        attrs: vec![],
    }
}

/// A batch of reads against one subscriber, per-op vs framed: every op
/// succeeds on both paths, and each framed op after the first per
/// station is exactly one frame share cheaper in its access component.
#[test]
fn framed_batch_amortises_the_framing_share() {
    let (mut udr_a, subs_a) = build(7);
    let (mut udr_b, subs_b) = build(7);
    let ops_a: Vec<LdapOp> = (0..8).map(|_| read_op(&subs_a[0])).collect();
    let ops_b: Vec<LdapOp> = (0..8).map(|_| read_op(&subs_b[0])).collect();

    let per_op: Vec<_> = ops_a
        .iter()
        .map(|op| {
            udr_a
                .execute(
                    OpRequest::new(op)
                        .class(TxnClass::FrontEnd)
                        .site(SiteId(0))
                        .at(t(5)),
                )
                .into_op()
        })
        .collect();
    // One FrameCursor shared across the batch is what coalesces
    // same-station ops into framed requests.
    let mut cursor = FrameCursor::new();
    let framed: Vec<_> = ops_b
        .iter()
        .map(|op| {
            udr_b
                .execute(
                    OpRequest::new(op)
                        .class(TxnClass::FrontEnd)
                        .site(SiteId(0))
                        .at(t(5))
                        .framed(&mut cursor),
                )
                .into_op()
        })
        .collect();

    assert_eq!(per_op.len(), framed.len());
    // figure2 servers run at 1M ops/s → 1 µs base, 250 ns frame share.
    let share = SimDuration::from_nanos(250);
    let mut amortised = 0u32;
    for (a, b) in per_op.iter().zip(&framed) {
        assert!(a.is_ok() && b.is_ok());
        assert_eq!(a.served_by, b.served_by, "framing must not change routing");
        assert!(b.breakdown.access <= a.breakdown.access);
        if a.breakdown.access - b.breakdown.access >= share {
            amortised += 1;
        }
    }
    // figure2 clusters run two servers round-robin: the first op on each
    // opens its frame at full price, everything after continues.
    assert_eq!(amortised, 6, "8 ops over 2 stations amortise 6 frames");
}

/// A single-op "batch" is byte-identical to the per-op path: same
/// outcome, same latency, same breakdown.
#[test]
fn single_op_frame_is_the_per_op_path() {
    let (mut udr_a, subs_a) = build(11);
    let (mut udr_b, subs_b) = build(11);
    let a = udr_a
        .execute(
            OpRequest::new(&read_op(&subs_a[1]))
                .class(TxnClass::FrontEnd)
                .site(SiteId(1))
                .at(t(3)),
        )
        .into_op();
    let mut cursor = FrameCursor::new();
    let b = udr_b
        .execute(
            OpRequest::new(&read_op(&subs_b[1]))
                .class(TxnClass::FrontEnd)
                .site(SiteId(1))
                .at(t(3))
                .framed(&mut cursor),
        )
        .into_op();
    assert!(a.is_ok() && b.is_ok());
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.breakdown, b.breakdown);
}

/// A rejected op must not open a frame: the next op to the same station
/// still pays full price.
#[test]
fn rejected_ops_do_not_open_frames() {
    let (mut udr, subs) = build(13);
    let mut frame = FrameCursor::new();
    // An unknown identity fails in the location stage — after access —
    // so it DOES open a frame; a QoS-shed or overloaded op fails before
    // admission and must not. Exercise the cursor contract directly: the
    // access stage records only on successful admission.
    let ok = udr
        .execute(
            OpRequest::new(&read_op(&subs[2]))
                .class(TxnClass::FrontEnd)
                .site(SiteId(2))
                .at(t(4))
                .framed(&mut frame),
        )
        .into_op();
    assert!(ok.is_ok());
    assert_eq!(frame.open_frames(), 1, "served op opened its frame");
}

/// The chunked provisioning batch with chunk 1 reports exactly what the
/// legacy entry point reports — per-op framing is the identity.
#[test]
fn chunk_one_batch_matches_legacy_batch() {
    let items = |base: u64| -> Vec<BatchItem> {
        (0..20)
            .map(|i| {
                if i % 4 == 3 {
                    BatchItem::Modify {
                        identity: Identity::Imsi(ids(base).imsi),
                        mods: vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(i))],
                    }
                } else {
                    BatchItem::Create {
                        ids: ids(base + 100 + i),
                        home_region: (i % 3) as u32,
                    }
                }
            })
            .collect()
    };
    let (mut udr_a, _) = build(17);
    let (mut udr_b, _) = build(17);
    let a = udr_a.run_provisioning_batch(items(1), 50.0, t(2), SiteId(0), RetryPolicy::default());
    let b = udr_b.run_provisioning_batch_with(
        items(1),
        50.0,
        t(2),
        SiteId(0),
        RetryPolicy::default(),
        BatchOptions::per_op(),
    );
    assert_eq!(a.submitted, b.submitted);
    assert_eq!(a.succeeded, b.succeeded);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.finished_at, b.finished_at);
}

/// Chunked framing leaves batch verdicts untouched while the deployment
/// finishes no later (framed ops only ever get cheaper).
#[test]
fn chunked_batch_keeps_verdicts() {
    let items = |_| -> Vec<BatchItem> {
        (0..30)
            .map(|i| BatchItem::Create {
                ids: ids(200 + i),
                home_region: (i % 3) as u32,
            })
            .collect()
    };
    let (mut udr_a, _) = build(19);
    let (mut udr_b, _) = build(19);
    let a = udr_a.run_provisioning_batch_with(
        items(0),
        100.0,
        t(2),
        SiteId(0),
        RetryPolicy::default(),
        BatchOptions::per_op(),
    );
    let b = udr_b.run_provisioning_batch_with(
        items(0),
        100.0,
        t(2),
        SiteId(0),
        RetryPolicy::default(),
        BatchOptions::framed(8),
    );
    assert_eq!(a.succeeded, b.succeeded);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.finished_at, b.finished_at);
    assert_eq!(b.failed, 0);
}
