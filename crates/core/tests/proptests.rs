//! Randomized failure injection on the assembled UDR: for arbitrary
//! partition/crash schedules and write interleavings, the system-wide
//! invariants the paper's design promises must hold.

use proptest::prelude::*;

use udr_core::{Udr, UdrConfig};
use udr_model::attrs::{AttrId, AttrMod, AttrValue};
use udr_model::config::ReplicationMode;
use udr_model::identity::{Identity, IdentitySet, Imsi, Msisdn};
use udr_model::ids::{SeId, SiteId};
use udr_model::time::{SimDuration, SimTime};
use udr_sim::FaultSchedule;

fn ids(n: u64) -> IdentitySet {
    IdentitySet {
        imsi: Imsi::new(format!("21401{n:010}")).unwrap(),
        msisdn: Msisdn::new(format!("346{n:08}")).unwrap(),
        impus: vec![],
        impi: None,
    }
}

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// One random fault.
#[derive(Debug, Clone)]
enum RandomFault {
    Partition {
        island_site: u32,
        at_s: u64,
        dur_s: u64,
    },
    SeOutage {
        se: u32,
        at_s: u64,
        dur_s: u64,
    },
}

fn fault_strategy() -> impl Strategy<Value = RandomFault> {
    prop_oneof![
        (0u32..3, 20u64..100, 5u64..40).prop_map(|(island_site, at_s, dur_s)| {
            RandomFault::Partition {
                island_site,
                at_s,
                dur_s,
            }
        }),
        (0u32..3, 20u64..100, 5u64..40).prop_map(|(se, at_s, dur_s)| RandomFault::SeOutage {
            se,
            at_s,
            dur_s
        }),
    ]
}

fn schedule_of(faults: &[RandomFault]) -> FaultSchedule {
    let mut s = FaultSchedule::new();
    for f in faults {
        match f {
            RandomFault::Partition {
                island_site,
                at_s,
                dur_s,
            } => {
                s = s.partition(
                    t(*at_s),
                    SimDuration::from_secs(*dur_s),
                    [SiteId(*island_site)],
                );
            }
            RandomFault::SeOutage { se, at_s, dur_s } => {
                s = s.se_outage(t(*at_s), SimDuration::from_secs(*dur_s), SeId(*se));
            }
        }
    }
    s
}

/// Writes: (subscriber index, value, at-second, from-site).
fn writes_strategy() -> impl Strategy<Value = Vec<(u64, u64, u64, u32)>> {
    prop::collection::vec((0u64..12, any::<u64>(), 20u64..140, 0u32..3), 0..40)
}

fn build(mode: ReplicationMode, seed: u64) -> Udr {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.replication = mode;
    cfg.frash.failover_detection = SimDuration::from_secs(2);
    cfg.seed = seed;
    let mut udr = Udr::build(cfg).unwrap();
    for i in 0..12u64 {
        let set = ids(i);
        let out = udr.provision_subscriber(
            &set,
            (i % 3) as u32,
            SiteId(0),
            t(1) + SimDuration::from_millis(i * 10),
        );
        assert!(out.is_ok());
    }
    udr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under any fault schedule and write interleaving, once every fault has
    /// healed and replication settles, all *up* replicas of every partition
    /// converge to identical data — and the run's accounting adds up.
    #[test]
    fn replicas_converge_after_arbitrary_faults(
        faults in prop::collection::vec(fault_strategy(), 0..4),
        writes in writes_strategy(),
        mode_multi in any::<bool>(),
    ) {
        let mode = if mode_multi {
            ReplicationMode::MultiMaster
        } else {
            ReplicationMode::AsyncMasterSlave
        };
        let mut udr = build(mode, 0xF00D);
        udr.schedule_faults(schedule_of(&faults));

        let mut sorted = writes.clone();
        sorted.sort_by_key(|(_, _, at, _)| *at);
        for (sub, val, at_s, site) in &sorted {
            let id = Identity::Imsi(ids(*sub).imsi);
            let _ = udr.modify_services(
                &id,
                vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(*val))],
                SiteId(*site),
                t(*at_s),
            );
        }
        // Everything heals by t=140+40; give catch-up time to drain.
        udr.advance_to(t(400));

        // Accounting adds up.
        let ps = udr.metrics.ops(udr_model::config::TxnClass::Provisioning);
        prop_assert_eq!(
            ps.attempts(),
            ps.ok + ps.unavailable + ps.failed_other
        );

        // Convergence across up replicas.
        for p in 0..3u32 {
            let pid = udr_model::ids::PartitionId(p);
            let group = udr.group(pid).clone();
            let mut states: Vec<Vec<(u64, Option<u64>)>> = Vec::new();
            for se in group.members() {
                if !udr.se(*se).is_up() {
                    continue;
                }
                let engine = udr.se(*se).engine(pid);
                let Ok(engine) = engine else { continue };
                let mut state: Vec<(u64, Option<u64>)> = engine
                    .iter_committed()
                    .map(|view| {
                        (
                            view.uid.raw(),
                            view.entry
                                .and_then(|e| e.get(AttrId::OdbMask))
                                .and_then(AttrValue::as_u64),
                        )
                    })
                    .collect();
                state.sort();
                states.push(state);
            }
            for pair in states.windows(2) {
                prop_assert_eq!(&pair[0], &pair[1], "partition {} diverged", p);
            }
        }
    }

    /// A successful write is never silently lost while its master chain
    /// stays alive: after settling, the master's copy reflects the last
    /// acknowledged value per subscriber (async mode, no SE faults).
    #[test]
    fn acknowledged_writes_stick_without_crashes(
        writes in writes_strategy(),
        partition_at in 30u64..80,
    ) {
        let mut udr = build(ReplicationMode::AsyncMasterSlave, 0xBEEF);
        udr.schedule_faults(FaultSchedule::new().partition(
            t(partition_at),
            SimDuration::from_secs(30),
            [SiteId(2)],
        ));

        let mut last_acked: std::collections::BTreeMap<u64, u64> = Default::default();
        let mut sorted = writes.clone();
        sorted.sort_by_key(|(_, _, at, _)| *at);
        for (sub, val, at_s, site) in &sorted {
            let id = Identity::Imsi(ids(*sub).imsi);
            let out = udr.modify_services(
                &id,
                vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(*val))],
                SiteId(*site),
                t(*at_s),
            );
            if out.is_ok() {
                last_acked.insert(*sub, *val);
            }
        }
        udr.advance_to(t(300));

        for (sub, val) in last_acked {
            let id = Identity::Imsi(ids(sub).imsi);
            let loc = udr.lookup_authority(&id).unwrap();
            let master = udr.group(loc.partition).master();
            let got = udr
                .se(master)
                .read_committed(loc.partition, loc.uid)
                .unwrap()
                .and_then(|e| e.get(AttrId::OdbMask).and_then(AttrValue::as_u64));
            prop_assert_eq!(got, Some(val), "subscriber {} lost its write", sub);
        }
    }
}
