//! Fault-campaign wiring through the event pump: clean partitions yield
//! *typed* partition errors (never generic timeouts), grey failures
//! (one-way loss, WAN brown-outs) degrade without partitioning, and the
//! deployment measurably re-converges after heal.

use udr_core::{OpRequest, Udr, UdrConfig};
use udr_ldap::{Dn, LdapOp};
use udr_model::attrs::{AttrId, AttrMod, AttrValue};
use udr_model::config::{ReadPolicy, ReplicationMode, TxnClass};
use udr_model::error::UdrError;
use udr_model::identity::{Identity, IdentitySet, Imsi, Msisdn};
use udr_model::ids::{SeId, SiteId};
use udr_model::time::{SimDuration, SimTime};
use udr_sim::net::{LatencyModel, LinkProfile};
use udr_sim::FaultScript;

fn ids(n: u64) -> IdentitySet {
    IdentitySet {
        imsi: Imsi::new(format!("21401{n:010}")).unwrap(),
        msisdn: Msisdn::new(format!("346{n:08}")).unwrap(),
        impus: vec![],
        impi: None,
    }
}

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// A loss-free figure-2 deployment with one subscriber per home region
/// (subscriber `r` is mastered at site `r` under home-region placement).
fn build(mode: ReplicationMode, policy: ReadPolicy, seed: u64) -> (Udr, Vec<IdentitySet>) {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.replication = mode;
    cfg.frash.fe_read_policy = policy;
    cfg.seed = seed;
    let mut udr = Udr::build(cfg).expect("valid config");
    let wan = LinkProfile {
        latency: LatencyModel::wan(SimDuration::from_millis(15)),
        loss: 0.0,
    };
    for a in 0..3u32 {
        for b in 0..3u32 {
            if a != b {
                udr.net
                    .topology_mut()
                    .set_link(SiteId(a), SiteId(b), wan.clone());
            }
        }
    }
    let mut subs = Vec::new();
    for r in 0..3u64 {
        let subscriber = ids(r + 1);
        let out = udr.provision_subscriber(
            &subscriber,
            r as u32,
            SiteId(0),
            SimTime::ZERO + SimDuration::from_millis(1 + r),
        );
        assert!(out.is_ok(), "provisioning failed: {:?}", out.op.result);
        subs.push(subscriber);
    }
    (udr, subs)
}

fn write_op(subscriber: &IdentitySet, value: u64) -> LdapOp {
    LdapOp::Modify {
        dn: Dn::for_identity(Identity::Imsi(subscriber.imsi)),
        mods: vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(value))],
    }
}

fn read_op(subscriber: &IdentitySet) -> LdapOp {
    LdapOp::Search {
        base: Dn::for_identity(Identity::Imsi(subscriber.imsi)),
        attrs: vec![AttrId::OdbMask],
    }
}

fn cut_site2(udr: &mut Udr) {
    udr.schedule_script(&FaultScript::new(1).clean_partition(
        t(10),
        SimDuration::from_secs(20),
        [SiteId(2)],
    ));
}

#[test]
fn async_cross_cut_write_fails_typed() {
    let (mut udr, subs) = build(
        ReplicationMode::AsyncMasterSlave,
        ReadPolicy::NearestCopy,
        11,
    );
    cut_site2(&mut udr);
    // Sub homed at site 2 written from site 0: the master sits on the far
    // side of the cut.
    let out = udr
        .execute(
            OpRequest::new(&write_op(&subs[2], 7))
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(15)),
        )
        .into_op();
    let err = out.result.unwrap_err();
    assert!(
        err.is_partition_induced(),
        "expected a typed partition error, got {err:?}"
    );
    assert!(!matches!(err, UdrError::Timeout));
}

#[test]
fn sync_modes_fail_replication_typed_during_cut() {
    for mode in [
        ReplicationMode::DualInSequence,
        ReplicationMode::Quorum { n: 3, w: 2, r: 2 },
    ] {
        let (mut udr, subs) = build(mode, ReadPolicy::NearestCopy, 13);
        cut_site2(&mut udr);
        // Written at its home site: the master commits locally but the
        // replication requirement reaches across the cut.
        let out = udr
            .execute(
                OpRequest::new(&write_op(&subs[2], 9))
                    .class(TxnClass::FrontEnd)
                    .site(SiteId(2))
                    .at(t(15)),
            )
            .into_op();
        let err = out.result.unwrap_err();
        assert!(
            matches!(err, UdrError::ReplicationFailed { .. }),
            "{mode}: expected ReplicationFailed, got {err:?}"
        );
        assert!(err.is_partition_induced());
        assert_eq!(udr.metrics.partial_commits, 1, "{mode}");
    }
}

#[test]
fn master_only_cross_cut_read_fails_typed() {
    let (mut udr, subs) = build(ReplicationMode::MultiMaster, ReadPolicy::MasterOnly, 17);
    cut_site2(&mut udr);
    let out = udr
        .execute(
            OpRequest::new(&read_op(&subs[2]))
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(15)),
        )
        .into_op();
    let err = out.result.unwrap_err();
    assert!(
        err.is_partition_induced(),
        "expected a typed partition error, got {err:?}"
    );
    // Nearest-copy reads of the same record keep being served locally —
    // the AP half of the same deployment.
    let (mut udr, subs) = build(ReplicationMode::MultiMaster, ReadPolicy::NearestCopy, 17);
    cut_site2(&mut udr);
    let out = udr
        .execute(
            OpRequest::new(&read_op(&subs[2]))
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(15)),
        )
        .into_op();
    assert!(out.is_ok(), "nearest-copy read failed: {:?}", out.result);
}

#[test]
fn one_way_loss_is_grey_not_partitioned() {
    let (mut udr, subs) = build(
        ReplicationMode::AsyncMasterSlave,
        ReadPolicy::NearestCopy,
        19,
    );
    udr.schedule_script(&FaultScript::new(2).asymmetric_loss(
        t(10),
        SimDuration::from_secs(20),
        [SiteId(2)],
    ));
    udr.advance_to(t(12));
    assert!(udr.net.degraded());
    assert!(!udr.net.partitioned());
    assert!(udr.net.reachable(SiteId(2), SiteId(0)));
    // Crossing the bad direction times out — a grey failure, not a typed
    // partition (failure detectors cannot see it either).
    let out = udr
        .execute(
            OpRequest::new(&write_op(&subs[0], 3))
                .class(TxnClass::FrontEnd)
                .site(SiteId(2))
                .at(t(15)),
        )
        .into_op();
    let err = out.result.unwrap_err();
    assert!(matches!(err, UdrError::Timeout), "got {err:?}");
    assert!(!err.is_partition_induced());
    // Local reads on the lossy island still serve.
    let out = udr
        .execute(
            OpRequest::new(&read_op(&subs[2]))
                .class(TxnClass::FrontEnd)
                .site(SiteId(2))
                .at(t(16)),
        )
        .into_op();
    assert!(out.is_ok());
    // The window clears on schedule.
    udr.advance_to(t(31));
    assert!(!udr.net.degraded());
    let out = udr
        .execute(
            OpRequest::new(&write_op(&subs[0], 4))
                .class(TxnClass::FrontEnd)
                .site(SiteId(2))
                .at(t(32)),
        )
        .into_op();
    assert!(out.is_ok(), "post-heal write failed: {:?}", out.result);
}

#[test]
fn wan_degrade_stretches_remote_reads() {
    let (mut udr, subs) = build(
        ReplicationMode::AsyncMasterSlave,
        ReadPolicy::MasterOnly,
        23,
    );
    udr.schedule_script(&FaultScript::new(3).wan_degradation(
        t(10),
        SimDuration::from_secs(20),
        8.0,
        0.0,
    ));
    // Remote master-only read during the brown-out vs after it.
    let slow = udr
        .execute(
            OpRequest::new(&read_op(&subs[2]))
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(15)),
        )
        .into_op();
    assert!(slow.is_ok(), "degraded read failed: {:?}", slow.result);
    let fast = udr
        .execute(
            OpRequest::new(&read_op(&subs[2]))
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(35)),
        )
        .into_op();
    assert!(fast.is_ok());
    assert!(
        slow.latency > fast.latency * 3,
        "8× brown-out barely visible: {} vs {}",
        slow.latency,
        fast.latency
    );
}

#[test]
fn replication_relag_and_settle_after_heal() {
    let (mut udr, subs) = build(
        ReplicationMode::AsyncMasterSlave,
        ReadPolicy::NearestCopy,
        29,
    );
    cut_site2(&mut udr);
    // Writes at site 0 during the cut: the site-2 slave cannot apply them.
    for i in 0..4u64 {
        let out = udr
            .execute(
                OpRequest::new(&write_op(&subs[0], 100 + i))
                    .class(TxnClass::FrontEnd)
                    .site(SiteId(0))
                    .at(t(15 + i)),
            )
            .into_op();
        assert!(out.is_ok(), "home write failed: {:?}", out.result);
    }
    udr.advance_to(t(25));
    assert!(udr.max_replica_lag() >= 4, "lag {}", udr.max_replica_lag());
    assert!(!udr.replication_settled());
    // After heal, periodic catch-up drains the backlog.
    udr.advance_to(t(32));
    assert_eq!(udr.max_replica_lag(), 0);
    assert!(udr.replication_settled());
}

#[test]
fn flapping_cycles_cut_and_heal() {
    let (mut udr, _) = build(
        ReplicationMode::AsyncMasterSlave,
        ReadPolicy::NearestCopy,
        31,
    );
    // Two 3 s-down / 2 s-up cycles starting at t=10.
    udr.schedule_script(&FaultScript::new(4).flapping(
        t(10),
        [SiteId(2)],
        2,
        SimDuration::from_secs(3),
        SimDuration::from_secs(2),
    ));
    udr.advance_to(t(11)); // 1 s into cycle 1's down window (≥ 2.4 s long)
    assert!(udr.net.partitioned());
    udr.advance_to(t(14)); // past the longest possible down window
    assert!(!udr.net.partitioned());
    udr.advance_to(t(16)); // 1 s into cycle 2's down window
    assert!(udr.net.partitioned());
    udr.advance_to(t(21));
    assert!(!udr.net.partitioned());
    assert!(udr.replication_settled());
}

#[test]
fn se_outage_script_crashes_and_restores() {
    let (mut udr, subs) = build(
        ReplicationMode::AsyncMasterSlave,
        ReadPolicy::NearestCopy,
        37,
    );
    udr.schedule_script(&FaultScript::new(5).se_outage(t(10), SimDuration::from_secs(15), SeId(0)));
    udr.advance_to(t(11));
    assert!(!udr.se(SeId(0)).is_up());
    // Failover (5 s detection) moves sub 0's master off the crashed SE;
    // writes work again before the SE even restores.
    let out = udr
        .execute(
            OpRequest::new(&write_op(&subs[0], 55))
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(18)),
        )
        .into_op();
    assert!(out.is_ok(), "post-failover write failed: {:?}", out.result);
    assert_eq!(udr.metrics.failovers, 1);
    udr.advance_to(t(26));
    assert!(udr.se(SeId(0)).is_up());
    udr.advance_to(t(30));
    assert!(udr.replication_settled());
}
