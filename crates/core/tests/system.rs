//! System-level tests of the assembled UDR: the paper's qualitative claims
//! must hold on the Figure 2 deployment.

use udr_core::{BatchItem, OpRequest, RetryPolicy, Udr, UdrConfig};
use udr_model::attrs::{AttrId, AttrMod, AttrValue};
use udr_model::config::{
    DurabilityMode, LocatorKind, Pacelc, PlacementPolicy, ReplicationMode, TxnClass,
};
use udr_model::error::UdrError;
use udr_model::identity::{Identity, IdentitySet, Impi, Impu, Imsi, Msisdn};
use udr_model::ids::{SeId, SiteId};
use udr_model::procedures::ProcedureKind;
use udr_model::time::{SimDuration, SimTime};
use udr_sim::FaultSchedule;

fn ids(n: u64) -> IdentitySet {
    IdentitySet {
        imsi: Imsi::new(format!("21401{n:010}")).unwrap(),
        msisdn: Msisdn::new(format!("346{n:08}")).unwrap(),
        impus: vec![Impu::new(format!("sip:user{n}@ims.example.com")).unwrap()],
        impi: Some(Impi::new(format!("user{n}@ims.example.com")).unwrap()),
    }
}

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// Provision `n` subscribers with home regions round-robin over sites.
fn provision_n(udr: &mut Udr, n: u64, sites: u32) -> Vec<IdentitySet> {
    let mut subs = Vec::with_capacity(n as usize);
    for i in 0..n {
        let set = ids(i);
        let region = (i % u64::from(sites)) as u32;
        let out = udr.provision_subscriber(
            &set,
            region,
            SiteId(0),
            t(1) + SimDuration::from_millis(i * 5),
        );
        assert!(out.is_ok(), "provisioning {i} failed: {:?}", out.op.result);
        subs.push(set);
    }
    subs
}

#[test]
fn provision_then_serve_procedures() {
    let mut udr = Udr::build(UdrConfig::figure2()).unwrap();
    let subs = provision_n(&mut udr, 30, 3);
    assert_eq!(udr.total_subscribers(), 30);

    // Every procedure kind runs successfully for a home subscriber.
    let mut at = t(10);
    for (i, kind) in ProcedureKind::ALL.iter().enumerate() {
        let set = &subs[i % subs.len()];
        let home = SiteId((i % 3) as u32);
        let out = udr
            .execute(OpRequest::procedure(*kind, set).site(home).at(at))
            .into_procedure();
        assert!(out.success, "{kind} failed: {:?}", out.failure);
        assert_eq!(out.ops_ok, kind.total_ops());
        at += SimDuration::from_millis(50);
    }
    assert!(udr.metrics.fe_ops.ok > 0);
}

#[test]
fn default_config_is_pa_el_for_fe_and_pc_ec_for_ps() {
    let udr = Udr::build(UdrConfig::figure2()).unwrap();
    assert_eq!(udr.pacelc_for(TxnClass::FrontEnd), Pacelc::PA_EL);
    assert_eq!(udr.pacelc_for(TxnClass::Provisioning), Pacelc::PC_EC);
}

#[test]
fn local_reads_meet_the_10ms_target() {
    let mut udr = Udr::build(UdrConfig::figure2()).unwrap();
    let subs = provision_n(&mut udr, 30, 3);
    // Home-region traffic: subscriber i has home region i%3, data pinned
    // there; FE at the same site reads locally.
    let mut at = t(20);
    for (i, set) in subs.iter().enumerate() {
        let site = SiteId((i % 3) as u32);
        let out = udr
            .execute(
                OpRequest::procedure(ProcedureKind::CallSetupMo, set)
                    .site(site)
                    .at(at),
            )
            .into_procedure();
        assert!(out.success);
        at += SimDuration::from_millis(10);
    }
    let mean = udr.metrics.fe_latency.mean();
    assert!(
        mean < SimDuration::from_millis(10),
        "mean FE latency {mean} breaches the §2.3 target"
    );
}

#[test]
fn partition_fails_provisioning_but_not_fe_reads() {
    // §4.1: on a partition, FE transactions (mostly reads) proceed, PS
    // transactions (writes) almost always fail.
    let mut udr = Udr::build(UdrConfig::figure2()).unwrap();
    let subs = provision_n(&mut udr, 30, 3);

    // Partition site 2 away from sites 0-1 from t=100 for 60 s.
    udr.schedule_faults(FaultSchedule::new().partition(
        t(100),
        SimDuration::from_secs(60),
        [SiteId(2)],
    ));

    let mut fe_ok = 0;
    let mut fe_fail = 0;
    let mut ps_ok = 0;
    let mut ps_fail = 0;
    let mut at = t(110);
    for (i, set) in subs.iter().enumerate() {
        // FE at site 2 (inside the island) reading its local data.
        let read = udr
            .execute(
                OpRequest::procedure(ProcedureKind::SmsDelivery, set)
                    .site(SiteId(2))
                    .at(at),
            )
            .into_procedure();
        if read.success {
            fe_ok += 1;
        } else {
            fe_fail += 1;
        }
        // PS at site 0 modifying subscribers homed at site 2 — the master
        // is unreachable, so these must fail.
        if i % 3 == 2 {
            let modify = udr.modify_services(
                &Identity::Imsi(set.imsi),
                vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(1))],
                SiteId(0),
                at,
            );
            if modify.is_ok() {
                ps_ok += 1;
            } else {
                ps_fail += 1;
            }
        }
        at += SimDuration::from_millis(20);
    }
    // Every subscriber has a replica reachable from site 2 (RF=3 across 3
    // sites), so FE reads keep working.
    assert_eq!(fe_fail, 0, "FE reads failed during partition");
    assert!(fe_ok > 0);
    // Writes to island-homed masters fail: C chosen over A (§3.2).
    assert_eq!(ps_ok, 0, "PS writes to partitioned masters must fail");
    assert!(ps_fail > 0);

    // After heal, provisioning works again.
    let modify = udr.modify_services(
        &Identity::Imsi(subs[2].imsi),
        vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(2))],
        SiteId(0),
        t(200),
    );
    assert!(
        modify.is_ok(),
        "post-heal write failed: {:?}",
        modify.result
    );
}

#[test]
fn slave_reads_can_be_stale_then_converge() {
    let mut udr = Udr::build(UdrConfig::figure2()).unwrap();
    let subs = provision_n(&mut udr, 9, 3);
    let victim = &subs[0]; // homed at site 0
    let imsi = Identity::Imsi(victim.imsi);

    // Let replication settle, then write at the master...
    udr.advance_to(t(50));
    let w = udr.modify_services(
        &imsi,
        vec![AttrMod::Set(AttrId::CallBarring, AttrValue::Bool(true))],
        SiteId(0),
        t(60),
    );
    assert!(w.is_ok());
    // ...and read instantly from site 1 (slave copy): must be stale because
    // the async replication delivery (~15 ms WAN) has not landed yet.
    let stale_before = udr.metrics.staleness.stale_reads;
    let r = udr
        .execute(
            OpRequest::procedure(ProcedureKind::CallSetupMo, victim)
                .site(SiteId(1))
                .at(t(60)),
        )
        .into_procedure();
    assert!(r.success);
    assert!(
        udr.metrics.staleness.stale_reads > stale_before,
        "instant remote read should observe stale data"
    );

    // After a second, replication has delivered; the same read is fresh.
    let stale_mid = udr.metrics.staleness.stale_reads;
    let r2 = udr
        .execute(
            OpRequest::procedure(ProcedureKind::CallSetupMo, victim)
                .site(SiteId(1))
                .at(t(61)),
        )
        .into_procedure();
    assert!(r2.success);
    assert_eq!(
        udr.metrics.staleness.stale_reads, stale_mid,
        "read after lag should be fresh"
    );
}

#[test]
fn master_crash_fails_writes_until_failover_promotes() {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.failover_detection = SimDuration::from_secs(5);
    let mut udr = Udr::build(cfg).unwrap();
    let subs = provision_n(&mut udr, 9, 3);
    let victim = &subs[0]; // homed at site 0: master is SE 0
    let imsi = Identity::Imsi(victim.imsi);
    let master = udr
        .group(udr.lookup_authority(&imsi).unwrap().partition)
        .master();

    udr.schedule_faults(FaultSchedule::new().se_crash(t(100), master));

    // Before detection completes, writes fail.
    let w1 = udr.modify_services(
        &imsi,
        vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(1))],
        SiteId(0),
        t(102),
    );
    assert!(!w1.is_ok(), "write succeeded with crashed master");

    // After detection + promotion, writes succeed on the new master.
    let w2 = udr.modify_services(
        &imsi,
        vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(2))],
        SiteId(0),
        t(110),
    );
    assert!(w2.is_ok(), "write after failover failed: {:?}", w2.result);
    assert!(udr.metrics.failovers >= 1);
    let partition = udr.lookup_authority(&imsi).unwrap().partition;
    assert_ne!(udr.group(partition).master(), master);
}

#[test]
fn reads_survive_se_crash_via_other_replicas() {
    let mut udr = Udr::build(UdrConfig::figure2()).unwrap();
    let subs = provision_n(&mut udr, 9, 3);
    udr.advance_to(t(50)); // let replication settle
    udr.schedule_faults(FaultSchedule::new().se_crash(t(100), SeId(0)));

    // All subscribers stay readable from every site (RF=3).
    let mut at = t(101);
    for set in &subs {
        for site in 0..3u32 {
            let out = udr
                .execute(
                    OpRequest::procedure(ProcedureKind::SmsDelivery, set)
                        .site(SiteId(site))
                        .at(at),
                )
                .into_procedure();
            assert!(out.success, "read failed after SE crash: {:?}", out.failure);
            at += SimDuration::from_millis(7);
        }
    }
}

#[test]
fn multimaster_keeps_provisioning_alive_and_merges_after_heal() {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.replication = ReplicationMode::MultiMaster;
    let mut udr = Udr::build(cfg).unwrap();
    let subs = provision_n(&mut udr, 9, 3);
    let victim = &subs[2]; // homed at site 2
    let imsi = Identity::Imsi(victim.imsi);
    udr.advance_to(t(50));

    udr.schedule_faults(FaultSchedule::new().partition(
        t(100),
        SimDuration::from_secs(60),
        [SiteId(2)],
    ));

    // Writes from BOTH sides of the cut succeed (PA behaviour, §5)...
    let w_majority = udr.modify_services(
        &imsi,
        vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(11))],
        SiteId(0),
        t(110),
    );
    assert!(
        w_majority.is_ok(),
        "majority-side write failed: {:?}",
        w_majority.result
    );
    let w_island = udr.modify_services(
        &imsi,
        vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(22))],
        SiteId(2),
        t(111),
    );
    assert!(
        w_island.is_ok(),
        "island-side write failed: {:?}",
        w_island.result
    );

    // After heal, the restoration process merges and counts the conflict.
    udr.advance_to(t(200));
    assert!(udr.metrics.merges >= 1, "no restoration ran");
    assert!(
        udr.metrics.merge_conflicts >= 1,
        "conflicting writes not detected"
    );

    // All replicas converge: reads from any site agree.
    let partition = udr.lookup_authority(&imsi).unwrap().partition;
    let uid = udr.lookup_authority(&imsi).unwrap().uid;
    let values: Vec<Option<u64>> = udr
        .group(partition)
        .members()
        .iter()
        .map(|se| {
            udr.se(*se)
                .read_committed(partition, uid)
                .unwrap()
                .and_then(|e| e.get(AttrId::OdbMask).and_then(AttrValue::as_u64))
        })
        .collect();
    assert!(
        values.windows(2).all(|w| w[0] == w[1]),
        "replicas diverge: {values:?}"
    );
    // LWW: the later write (island side, t=111) won.
    assert_eq!(values[0], Some(22));
}

#[test]
fn periodic_snapshot_bounds_crash_loss_and_reseed_restores_fleet() {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.durability = DurabilityMode::PeriodicSnapshot {
        interval: SimDuration::from_secs(30),
    };
    cfg.frash.auto_failover = false; // keep mastership fixed for the check
    let mut udr = Udr::build(cfg).unwrap();
    let subs = provision_n(&mut udr, 9, 3);
    let victim = &subs[0];
    let imsi = Identity::Imsi(victim.imsi);
    let loc = udr.lookup_authority(&imsi).unwrap();
    let master = udr.group(loc.partition).master();

    // Write at t=40 (after the t=30 snapshot), crash at t=45, restore t=50.
    let w = udr.modify_services(
        &imsi,
        vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(7))],
        SiteId(0),
        t(40),
    );
    assert!(w.is_ok());
    udr.schedule_faults(FaultSchedule::new().se_outage(t(45), SimDuration::from_secs(5), master));
    udr.advance_to(t(55));

    // The restored master rebuilt itself from the most caught-up slave
    // (which had the t=40 write replicated), so nothing was lost.
    let entry = udr
        .se(master)
        .read_committed(loc.partition, loc.uid)
        .unwrap()
        .unwrap();
    assert_eq!(
        entry.get(AttrId::OdbMask).and_then(AttrValue::as_u64),
        Some(7)
    );
    assert!(udr.metrics.reseeds >= 1);
}

#[test]
fn sync_commit_masters_lose_nothing_even_without_slaves() {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.durability = DurabilityMode::SyncCommit;
    cfg.frash.replication_factor = 1; // no replicas: disk is the only net
    cfg.frash.auto_failover = false;
    let mut udr = Udr::build(cfg).unwrap();
    let subs = provision_n(&mut udr, 6, 3);
    let victim = &subs[0];
    let imsi = Identity::Imsi(victim.imsi);
    let loc = udr.lookup_authority(&imsi).unwrap();
    let master = udr.group(loc.partition).master();

    let w = udr.modify_services(
        &imsi,
        vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(9))],
        SiteId(0),
        t(40),
    );
    assert!(w.is_ok());
    udr.schedule_faults(FaultSchedule::new().se_outage(t(41), SimDuration::from_secs(4), master));
    udr.advance_to(t(50));

    let entry = udr
        .se(master)
        .read_committed(loc.partition, loc.uid)
        .unwrap()
        .unwrap();
    assert_eq!(
        entry.get(AttrId::OdbMask).and_then(AttrValue::as_u64),
        Some(9)
    );
    assert_eq!(udr.metrics.lost_commits, 0);
}

#[test]
fn dual_in_sequence_waits_for_second_replica_and_fails_on_partition() {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.replication = ReplicationMode::DualInSequence;
    let mut udr = Udr::build(cfg).unwrap();
    let subs = provision_n(&mut udr, 9, 3);
    let victim = &subs[0];
    let imsi = Identity::Imsi(victim.imsi);

    // Healthy: the write waits one WAN round trip more than async would.
    let w = udr.modify_services(
        &imsi,
        vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(1))],
        SiteId(0),
        t(50),
    );
    assert!(w.is_ok());
    assert!(
        w.latency > SimDuration::from_millis(15),
        "dual-in-sequence latency {} should include a WAN ack",
        w.latency
    );

    // Cut the master's site off from both slave sites: the second copy is
    // unreachable, the transaction reports failure (§5: one replica updated
    // is acceptable but the commit fails).
    udr.schedule_faults(FaultSchedule::new().partition(
        t(100),
        SimDuration::from_secs(30),
        [SiteId(0)],
    ));
    let w2 = udr.modify_services(
        &imsi,
        vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(2))],
        SiteId(0),
        t(105),
    );
    assert!(
        matches!(w2.result, Err(UdrError::ReplicationFailed { .. })),
        "{:?}",
        w2.result
    );
    assert!(udr.metrics.partial_commits >= 1);
}

#[test]
fn quorum_write_latency_and_partition_behaviour() {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.replication = ReplicationMode::Quorum { n: 3, w: 2, r: 2 };
    let mut udr = Udr::build(cfg).unwrap();
    let subs = provision_n(&mut udr, 9, 3);
    let victim = &subs[0];
    let imsi = Identity::Imsi(victim.imsi);

    // Healthy quorum write: waits for the 2nd ack (one WAN RTT).
    let w = udr.modify_services(
        &imsi,
        vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(1))],
        SiteId(0),
        t(50),
    );
    assert!(w.is_ok());
    assert!(
        w.latency > SimDuration::from_millis(15),
        "quorum w=2 latency {}",
        w.latency
    );

    // Reads go through the ensemble too.
    let r = udr
        .execute(
            OpRequest::procedure(ProcedureKind::CallSetupMo, victim)
                .site(SiteId(0))
                .at(t(51)),
        )
        .into_procedure();
    assert!(r.success);
    assert!(
        r.latency > SimDuration::from_millis(15),
        "quorum r=2 latency {}",
        r.latency
    );

    // Island of one site: the master side retains quorum (2 of 3 sites),
    // so writes from the majority side still succeed.
    udr.schedule_faults(FaultSchedule::new().partition(
        t(100),
        SimDuration::from_secs(30),
        [SiteId(2)],
    ));
    let w2 = udr.modify_services(
        &imsi,
        vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(2))],
        SiteId(0),
        t(105),
    );
    assert!(
        w2.is_ok(),
        "majority-side quorum write failed: {:?}",
        w2.result
    );

    // Master alone on an island: quorum lost, write fails.
    udr.schedule_faults(FaultSchedule::new().partition(
        t(200),
        SimDuration::from_secs(30),
        [SiteId(0)],
    ));
    let w3 = udr.modify_services(
        &imsi,
        vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(3))],
        SiteId(0),
        t(205),
    );
    assert!(
        matches!(w3.result, Err(UdrError::ReplicationFailed { .. })),
        "{:?}",
        w3.result
    );
}

#[test]
fn scale_out_sync_window_blocks_new_poa_with_provisioned_maps() {
    let mut udr = Udr::build(UdrConfig::figure2()).unwrap();
    let subs = provision_n(&mut udr, 30, 3);
    // New cluster at site 1 starts syncing at t=100.
    let idx = udr.add_cluster(SiteId(1), t(100));
    assert!(udr.cluster_sync_done_at(idx).is_some());

    // Traffic through site 1 round-robins onto the new PoA: during the
    // window some operations fail with LocationStageSyncing.
    let mut syncing_failures = 0;
    let mut at = t(100) + SimDuration::from_millis(5);
    for set in subs.iter().take(10) {
        let out = udr
            .execute(
                OpRequest::procedure(ProcedureKind::SmsDelivery, set)
                    .site(SiteId(1))
                    .at(at),
            )
            .into_procedure();
        if let Some(UdrError::LocationStageSyncing) = out.failure {
            syncing_failures += 1;
        }
        at += SimDuration::from_millis(10);
    }
    assert!(syncing_failures > 0, "no operation hit the sync window");

    // Long after the window, the new PoA serves.
    let mut all_ok = true;
    let mut at = t(1000);
    for set in subs.iter().take(10) {
        let out = udr
            .execute(
                OpRequest::procedure(ProcedureKind::SmsDelivery, set)
                    .site(SiteId(1))
                    .at(at),
            )
            .into_procedure();
        all_ok &= out.success;
        at += SimDuration::from_millis(10);
    }
    assert!(all_ok, "new PoA still failing after sync window");
}

#[test]
fn cached_locator_probes_on_miss_then_hits() {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.locator = LocatorKind::CachedMaps;
    let mut udr = Udr::build(cfg).unwrap();
    let subs = provision_n(&mut udr, 9, 3);
    // Provisioning warmed the caches; a fresh cluster at site 0 has a cold
    // cache.
    udr.add_cluster(SiteId(0), t(50));
    let probes_before = udr.metrics.dls_probes;
    // Force traffic through the new (cold) PoA repeatedly.
    let mut at = t(51);
    for _ in 0..4 {
        let out = udr
            .execute(
                OpRequest::procedure(ProcedureKind::SmsDelivery, &subs[0])
                    .site(SiteId(0))
                    .at(at),
            )
            .into_procedure();
        assert!(out.success, "{:?}", out.failure);
        at += SimDuration::from_millis(10);
    }
    assert!(
        udr.metrics.dls_probes > probes_before,
        "cold cache never probed"
    );
}

#[test]
fn batch_survives_glitch_with_retries_but_not_without() {
    // §4.1: "a network glitch as short as 30 seconds may cause a batch
    // that's been running for hours to fail".
    let build = || {
        let mut cfg = UdrConfig::figure2();
        cfg.frash.placement = PlacementPolicy::Random;
        Udr::build(cfg).unwrap()
    };
    let items = |n: u64| -> Vec<BatchItem> {
        (0..n)
            .map(|i| BatchItem::Create {
                ids: ids(1000 + i),
                home_region: (i % 3) as u32,
            })
            .collect()
    };

    // A backbone glitch at t=30 for 30 s; the batch runs 10 items/s for 60s.
    let mut udr = build();
    udr.schedule_faults(FaultSchedule::new().glitch(t(30), SimDuration::from_secs(30)));
    let no_retry = udr.run_provisioning_batch(
        items(600),
        10.0,
        t(0),
        SiteId(0),
        RetryPolicy {
            max_attempts: 1,
            backoff: SimDuration::from_secs(1),
        },
    );
    assert!(
        no_retry.failed > 100,
        "glitch should fail a large chunk without retries, failed={}",
        no_retry.failed
    );

    let mut udr = build();
    udr.schedule_faults(FaultSchedule::new().glitch(t(30), SimDuration::from_secs(30)));
    let with_retry = udr.run_provisioning_batch(
        items(600),
        10.0,
        t(0),
        SiteId(0),
        RetryPolicy {
            max_attempts: 10,
            backoff: SimDuration::from_secs(10),
        },
    );
    assert!(with_retry.failed < no_retry.failed);
    assert!(with_retry.retries > 0);
    assert!(
        with_retry.backlog.max().unwrap_or(0.0) > 1.0,
        "backlog never grew"
    );
}

#[test]
fn home_region_placement_avoids_backbone() {
    let run = |placement: PlacementPolicy| -> f64 {
        let mut cfg = UdrConfig::figure2();
        cfg.frash.placement = placement;
        cfg.seed = 7;
        let mut udr = Udr::build(cfg).unwrap();
        let subs = provision_n(&mut udr, 30, 3);
        udr.metrics.backbone_ops = 0;
        udr.metrics.local_ops = 0;
        let mut at = t(50);
        for (i, set) in subs.iter().enumerate() {
            // FE traffic always from the subscriber's home region. With
            // RF = sites every site holds a copy, so *reads* are always
            // local; the placement effect shows on the write leg
            // (LocationUpdate writes to the master).
            let site = SiteId((i % 3) as u32);
            let out = udr
                .execute(
                    OpRequest::procedure(ProcedureKind::LocationUpdate, set)
                        .site(site)
                        .at(at),
                )
                .into_procedure();
            assert!(out.success);
            at += SimDuration::from_millis(10);
        }
        udr.metrics.backbone_fraction()
    };
    let pinned = run(PlacementPolicy::HomeRegion);
    let random = run(PlacementPolicy::Random);
    assert_eq!(
        pinned, 0.0,
        "home-region pinning should keep home traffic local"
    );
    assert!(
        random > 0.3,
        "random placement should cross the backbone, got {random}"
    );
}

#[test]
fn readable_fraction_probe_tracks_partitions() {
    let mut udr = Udr::build(UdrConfig::figure2()).unwrap();
    provision_n(&mut udr, 30, 3);
    udr.advance_to(t(50));
    assert_eq!(udr.readable_subscriber_fraction(SiteId(0)), 1.0);

    // Crash two of three SEs: every partition still has one copy (RF=3),
    // so data stays readable — the §2.3 "one PoA and one SE" claim.
    udr.schedule_faults(
        FaultSchedule::new()
            .se_crash(t(100), SeId(0))
            .se_crash(t(100), SeId(1)),
    );
    udr.advance_to(t(101));
    assert_eq!(udr.readable_subscriber_fraction(SiteId(2)), 1.0);
    // Writability is gone for partitions whose master crashed until
    // failover runs (detection is 5 s).
    udr.advance_to(t(120));
    assert!(udr.metrics.failovers > 0);
}

#[test]
fn bind_and_compare_route_like_reads() {
    use udr_ldap::{Dn, LdapOp};
    use udr_model::attrs::AttrValue;

    let mut udr = Udr::build(UdrConfig::figure2()).unwrap();
    let subs = provision_n(&mut udr, 9, 3);
    let sub = &subs[0];
    let identity = Identity::Imsi(sub.imsi);

    // Bind against the subscriber's entry succeeds and is a read
    // (served from the nearest copy, never the master exclusively).
    let bind = LdapOp::Bind {
        dn: Dn::for_identity(identity),
        password: b"fe-secret".to_vec(),
    };
    let out = udr
        .execute(
            OpRequest::new(&bind)
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(50)),
        )
        .into_op();
    assert!(out.is_ok(), "{:?}", out.result);

    // Compare on a fresh profile: call barring is false.
    let cmp_false = LdapOp::Compare {
        dn: Dn::for_identity(identity),
        attr: AttrId::CallBarring,
        value: AttrValue::Bool(true),
    };
    let out = udr
        .execute(
            OpRequest::new(&cmp_false)
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(51)),
        )
        .into_op();
    assert!(
        matches!(&out.result, Ok(None)),
        "compareFalse expected: {:?}",
        out.result
    );

    // Set barring, then the same compare matches.
    let w = udr.modify_services(
        &identity,
        vec![AttrMod::Set(AttrId::CallBarring, AttrValue::Bool(true))],
        SiteId(0),
        t(52),
    );
    assert!(w.is_ok());
    let out = udr
        .execute(
            OpRequest::new(&cmp_false)
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(53)),
        )
        .into_op();
    assert!(
        matches!(&out.result, Ok(Some(_))),
        "compareTrue expected: {:?}",
        out.result
    );
}
