//! Live partition migration: the epoch-versioned shard map under data
//! movement. Scale-out, drain, fault-during-migration and stale-route
//! retries — each asserting the acceptance properties: zero lost or
//! duplicated committed records, epochs that only advance at cutover, and
//! stale-epoch lookups retried at most once.

use udr_core::{MigrationPlan, MoveReason, OpRequest, Rebalancer, Udr, UdrConfig};
use udr_model::attrs::{AttrId, AttrMod, AttrValue};
use udr_model::identity::{Identity, IdentitySet, Imsi, Msisdn};
use udr_model::ids::{SeId, SiteId};
use udr_model::procedures::ProcedureKind;
use udr_model::time::{SimDuration, SimTime};
use udr_replication::MigrationState;
use udr_sim::FaultSchedule;

fn ids(n: u64) -> IdentitySet {
    IdentitySet {
        imsi: Imsi::new(format!("21401{n:010}")).unwrap(),
        msisdn: Msisdn::new(format!("346{n:08}")).unwrap(),
        impus: vec![],
        impi: None,
    }
}

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// A 3-site system with two SEs per cluster: enough partitions and spare
/// capacity for moves to be non-trivial.
fn system() -> Udr {
    let mut cfg = UdrConfig::figure2();
    cfg.ses_per_cluster = 2;
    cfg.partitions = 6;
    cfg.frash.replication_factor = 2;
    Udr::build(cfg).unwrap()
}

fn provision_n(udr: &mut Udr, n: u64) -> Vec<IdentitySet> {
    let mut subs = Vec::with_capacity(n as usize);
    for i in 0..n {
        let set = ids(i);
        let out = udr.provision_subscriber(
            &set,
            (i % 3) as u32,
            SiteId(0),
            t(1) + SimDuration::from_millis(i * 5),
        );
        assert!(out.is_ok(), "provisioning {i} failed: {:?}", out.op.result);
        subs.push(set);
    }
    subs
}

/// Write a known value per subscriber, returning the oracle map the
/// post-migration full scan is checked against.
fn write_oracle(udr: &mut Udr, subs: &[IdentitySet], base: SimTime) -> Vec<(Identity, u64)> {
    let mut oracle = Vec::new();
    for (i, set) in subs.iter().enumerate() {
        let identity: Identity = set.imsi.into();
        let value = 0xBEEF_0000 + i as u64;
        let out = udr.modify_services(
            &identity,
            vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(value))],
            SiteId(0),
            base + SimDuration::from_millis(i as u64 * 3),
        );
        assert!(out.is_ok(), "oracle write {i} failed: {:?}", out.result);
        oracle.push((identity, value));
    }
    oracle
}

/// Full scan against the shadow oracle: every committed record readable
/// exactly once, from the partition's current master, with the expected
/// value — zero loss, zero duplication.
fn verify_against_oracle(udr: &Udr, oracle: &[(Identity, u64)]) {
    for (identity, expected) in oracle {
        let loc = udr
            .lookup_authority(identity)
            .unwrap_or_else(|| panic!("{identity} lost its binding"));
        // Exactly one SE may master this partition, and its copy must
        // hold the oracle value.
        let master = udr
            .shard_map()
            .master_of(loc.partition)
            .expect("partition mapped");
        let entry = udr
            .se(master)
            .read_committed(loc.partition, loc.uid)
            .expect("master serves reads")
            .unwrap_or_else(|| panic!("{identity}: record lost in migration"));
        assert_eq!(
            entry.get(AttrId::OdbMask),
            Some(&AttrValue::U64(*expected)),
            "{identity}: stale/duplicated value after migration"
        );
        // No retired copy still claims the partition: the record exists
        // only on current group members.
        for se_idx in 0..udr.se_count() {
            let se = udr.se(SeId(se_idx as u32));
            let hosts = se.partitions().any(|p| p == loc.partition);
            let is_member = udr
                .shard_map()
                .members_of(loc.partition)
                .unwrap()
                .contains(&se.id());
            assert!(
                !hosts || is_member,
                "{}: retired copy of {} still hosted (duplication)",
                se.id(),
                loc.partition
            );
        }
    }
}

/// Let the event pump run until every migration reaches a terminal state.
fn settle_migrations(udr: &mut Udr, mut at: SimTime) -> SimTime {
    for _ in 0..200 {
        if udr.active_migrations() == 0 {
            break;
        }
        at += SimDuration::from_millis(100);
        udr.advance_to(at);
    }
    assert_eq!(udr.active_migrations(), 0, "migrations never settled");
    at
}

#[test]
fn scale_out_migrates_partitions_with_zero_loss() {
    let mut udr = system();
    let subs = provision_n(&mut udr, 48);
    let oracle = write_oracle(&mut udr, &subs, t(5));
    let epoch_before = udr.shard_map().epoch();

    // N → N+1: a fresh SE joins site 0 and the rebalancer fills it.
    let new_se = udr.add_se(SiteId(0), t(10));
    let plans = Rebalancer::plan_scale_out(&udr, new_se);
    assert!(!plans.is_empty(), "scale-out planned nothing");
    for (i, plan) in plans.iter().enumerate() {
        udr.start_migration(*plan, t(11) + SimDuration::from_millis(i as u64));
    }
    let settled = settle_migrations(&mut udr, t(11));

    assert_eq!(
        udr.metrics.migrations_completed,
        plans.len() as u64,
        "not every planned move cut over"
    );
    assert!(udr.shard_map().epoch() > epoch_before);
    // The newcomer now carries its fair share.
    assert_eq!(
        udr.shard_map().partitions_on(new_se).len(),
        plans.len(),
        "newcomer hosts fewer copies than planned"
    );
    verify_against_oracle(&udr, &oracle);

    // Traffic still flows end to end after the reshuffle.
    let mut at = settled + SimDuration::from_secs(1);
    for set in subs.iter().take(12) {
        let out = udr
            .execute(
                OpRequest::procedure(ProcedureKind::SmsDelivery, set)
                    .site(SiteId(1))
                    .at(at),
            )
            .into_procedure();
        assert!(out.success, "post-migration read failed: {:?}", out.failure);
        at += SimDuration::from_millis(20);
    }
}

#[test]
fn drain_empties_an_se_with_zero_loss() {
    let mut udr = system();
    let subs = provision_n(&mut udr, 36);
    let oracle = write_oracle(&mut udr, &subs, t(5));

    // N → N−1: move everything off se3, then it could be decommissioned.
    let victim = SeId(3);
    let hosted_before = udr.shard_map().partitions_on(victim).len();
    assert!(hosted_before > 0, "victim hosts nothing to drain");
    let plans = Rebalancer::plan_drain(&udr, victim);
    assert_eq!(plans.len(), hosted_before);
    for (i, plan) in plans.iter().enumerate() {
        udr.start_migration(*plan, t(10) + SimDuration::from_millis(i as u64 * 50));
    }
    settle_migrations(&mut udr, t(10));

    assert_eq!(udr.metrics.migrations_completed, plans.len() as u64);
    // The victim is empty: shard map, groups and the SE itself agree.
    assert!(udr.shard_map().partitions_on(victim).is_empty());
    assert_eq!(udr.se(victim).partitions().count(), 0);
    verify_against_oracle(&udr, &oracle);
}

#[test]
fn partition_cut_between_reseed_and_cutover_aborts_cleanly() {
    let mut udr = system();
    let subs = provision_n(&mut udr, 24);
    let oracle = write_oracle(&mut udr, &subs, t(5));
    udr.advance_to(t(9));
    let epoch_before = udr.shard_map().epoch();

    // Move a *master* copy from its site-0 SE to a newcomer at site 1:
    // the shipping path crosses the backbone, so a cut severs it.
    let partition = udr
        .shard_map()
        .partitions()
        .find(|p| {
            let m = udr.shard_map().master_of(*p).unwrap();
            udr.se(m).site() == SiteId(0)
        })
        .expect("some partition mastered at site 0");
    let from = udr.shard_map().master_of(partition).unwrap();
    let to = udr.add_se(SiteId(1), t(9));
    let plan = MigrationPlan {
        partition,
        from,
        to,
        reason: MoveReason::ScaleOut,
    };
    let id = udr.start_migration(plan, t(10));

    // The cut lands right after the snapshot reseed (MigrationStart at
    // t=10) but before the first catch-up tick can drive the cutover.
    udr.schedule_faults(FaultSchedule::new().partition(
        t(10) + SimDuration::from_millis(20),
        SimDuration::from_secs(30),
        [SiteId(1)],
    ));
    udr.advance_to(t(15));

    // The migration aborted cleanly: no epoch advance, target dropped its
    // partial copy, the old owner still masters and serves.
    assert_eq!(udr.migration_state(id), Some(MigrationState::Aborted));
    assert_eq!(udr.metrics.migrations_aborted, 1);
    assert_eq!(udr.metrics.migrations_completed, 0);
    assert_eq!(udr.shard_map().epoch(), epoch_before);
    assert_eq!(udr.shard_map().master_of(partition), Some(from));
    assert_eq!(udr.se(to).partitions().count(), 0);
    // Reads of the partition keep serving from the old owner (site-0
    // clients are unaffected by the site-1 island).
    let moved_sub = subs
        .iter()
        .find(|s| udr.lookup_authority(&s.imsi.into()).map(|l| l.partition) == Some(partition))
        .expect("some subscriber lives on the partition");
    let out = udr
        .execute(
            OpRequest::procedure(ProcedureKind::SmsDelivery, moved_sub)
                .site(SiteId(0))
                .at(t(16)),
        )
        .into_procedure();
    assert!(out.success, "read after abort failed: {:?}", out.failure);
    // After the cut heals, data is still intact everywhere.
    udr.advance_to(t(50));
    verify_against_oracle(&udr, &oracle);
}

#[test]
fn stale_epoch_lookup_is_retried_at_most_once() {
    let mut udr = system();
    let subs = provision_n(&mut udr, 24);
    write_oracle(&mut udr, &subs, t(5));
    udr.advance_to(t(9));

    // Complete a master move so the epoch bumps.
    let partition = udr
        .shard_map()
        .partitions()
        .find(|p| {
            let m = udr.shard_map().master_of(*p).unwrap();
            udr.se(m).site() == SiteId(0)
        })
        .unwrap();
    let from = udr.shard_map().master_of(partition).unwrap();
    let to = udr.add_se(SiteId(0), t(9));
    let plan = MigrationPlan {
        partition,
        from,
        to,
        reason: MoveReason::HotspotSplit,
    };
    let id = udr.start_migration(plan, t(10));
    settle_migrations(&mut udr, t(10));
    assert_eq!(udr.migration_state(id), Some(MigrationState::Done));
    assert_eq!(udr.shard_map().master_of(partition), Some(to));
    assert_eq!(udr.shard_map().retired_master(partition), Some(from));

    // First lookup through a (stale) cluster bounces off the retired
    // owner once: the retry surfaces in the location breakdown.
    let moved_sub = subs
        .iter()
        .find(|s| udr.lookup_authority(&s.imsi.into()).map(|l| l.partition) == Some(partition))
        .expect("subscriber on moved partition");
    assert_eq!(udr.metrics.stale_route_retries, 0);
    let out = udr
        .execute(
            OpRequest::procedure(ProcedureKind::SmsDelivery, moved_sub)
                .site(SiteId(1))
                .at(t(20)),
        )
        .into_procedure();
    assert!(out.success, "stale-route read failed: {:?}", out.failure);
    assert_eq!(udr.metrics.stale_route_retries, 1);
    assert!(
        out.latency > SimDuration::ZERO,
        "bounce should cost latency"
    );

    // The same cluster is refreshed now: no second retry.
    let out = udr
        .execute(
            OpRequest::procedure(ProcedureKind::SmsDelivery, moved_sub)
                .site(SiteId(1))
                .at(t(21)),
        )
        .into_procedure();
    assert!(out.success);
    assert_eq!(udr.metrics.stale_route_retries, 1, "retried more than once");
}

/// A completed hotspot cutover resets the moved partition's load
/// counter so re-planning doesn't relocate the same partition forever.
#[test]
fn hotspot_cutover_resets_load_counter() {
    let mut udr = system();
    let subs = provision_n(&mut udr, 24);
    write_oracle(&mut udr, &subs, t(5));
    udr.advance_to(t(9));

    let hot = udr.shard_map().partitions().next().unwrap();
    let from = udr.shard_map().master_of(hot).unwrap();
    let to = udr.add_se(udr.se(from).site(), t(9));
    let before = udr.partition_ops(hot);
    assert!(before > 0, "oracle writes should have loaded the partition");
    let id = udr.start_migration(
        MigrationPlan {
            partition: hot,
            from,
            to,
            reason: MoveReason::HotspotSplit,
        },
        t(10),
    );
    settle_migrations(&mut udr, t(10));
    assert_eq!(udr.migration_state(id), Some(MigrationState::Done));
    assert_eq!(udr.partition_ops(hot), 0, "hot counter not reset");
}

/// Sites are fixed at build time: adding an SE outside the topology is
/// rejected at the API boundary, not as an index panic mid-event-pump.
#[test]
#[should_panic(expected = "outside the 3-site topology")]
fn add_se_rejects_unknown_site() {
    let mut udr = system();
    udr.add_se(SiteId(3), t(1));
}

/// Failover promotes a slave whose position in the member vector is not
/// first; the shard map must still record the *promoted* SE as master
/// (regression: `reassign` used to receive insertion-ordered members and
/// kept deriving the crashed SE as owner).
#[test]
fn failover_updates_shard_map_master() {
    let mut udr = system();
    let subs = provision_n(&mut udr, 24);
    write_oracle(&mut udr, &subs, t(5));
    udr.advance_to(t(9));

    let partition = udr.shard_map().partitions().next().unwrap();
    let old_master = udr.shard_map().master_of(partition).unwrap();
    let epoch_before = udr.shard_map().epoch();
    udr.schedule_faults(FaultSchedule::new().se_crash(t(10), old_master));
    udr.advance_to(t(20)); // past failover detection

    let new_master = udr.group(partition).master();
    assert_ne!(new_master, old_master, "failover never promoted");
    assert_eq!(
        udr.shard_map().master_of(partition),
        Some(new_master),
        "shard map still names the crashed SE as owner"
    );
    assert_eq!(udr.shard_map().retired_master(partition), Some(old_master));
    assert!(udr.shard_map().epoch() > epoch_before);
    // A stale route cache now detects the change.
    assert!(udr
        .shard_map()
        .routing_changed_since(partition, epoch_before));
}

/// A malformed plan (out-of-range partition, target == source, target
/// already a member) aborts cleanly instead of panicking, and the
/// started/completed/aborted ledger stays consistent.
#[test]
fn invalid_plans_abort_cleanly() {
    let mut udr = system();
    provision_n(&mut udr, 6);
    udr.advance_to(t(9));
    let member = udr
        .shard_map()
        .members_of(udr_model::ids::PartitionId(0))
        .unwrap()[1];

    let bogus = [
        // Partition that does not exist.
        MigrationPlan {
            partition: udr_model::ids::PartitionId(99),
            from: SeId(0),
            to: SeId(1),
            reason: MoveReason::Drain,
        },
        // Target == source.
        MigrationPlan {
            partition: udr_model::ids::PartitionId(0),
            from: SeId(0),
            to: SeId(0),
            reason: MoveReason::ScaleOut,
        },
        // Target already a member of the replica set.
        MigrationPlan {
            partition: udr_model::ids::PartitionId(0),
            from: SeId(0),
            to: member,
            reason: MoveReason::ScaleOut,
        },
    ];
    let mut ids = Vec::new();
    for (i, plan) in bogus.iter().enumerate() {
        ids.push(udr.start_migration(*plan, t(10) + SimDuration::from_millis(i as u64)));
    }
    udr.advance_to(t(12));
    for id in ids {
        assert_eq!(udr.migration_state(id), Some(MigrationState::Aborted));
    }
    assert_eq!(udr.metrics.migrations_started, 3);
    assert_eq!(udr.metrics.migrations_aborted, 3);
    assert_eq!(udr.metrics.migrations_completed, 0);
    assert_eq!(udr.shard_map().epoch(), udr_dls::Epoch::INITIAL);
}

#[test]
fn master_move_freeze_window_is_accounted() {
    let mut udr = system();
    let subs = provision_n(&mut udr, 24);
    write_oracle(&mut udr, &subs, t(5));
    udr.advance_to(t(9));

    let partition = udr.shard_map().partitions().next().unwrap();
    let from = udr.shard_map().master_of(partition).unwrap();
    let to = udr.add_se(udr.se(from).site(), t(9));
    let id = udr.start_migration(
        MigrationPlan {
            partition,
            from,
            to,
            reason: MoveReason::ScaleOut,
        },
        t(10),
    );
    settle_migrations(&mut udr, t(10));
    assert_eq!(udr.migration_state(id), Some(MigrationState::Done));
    // A master hand-off always passes through the freeze window.
    assert!(
        udr.metrics.migration_freeze_time > SimDuration::ZERO,
        "master move should account a freeze window"
    );
    assert!(udr.metrics.migration_records_shipped > 0 || udr.metrics.migrations_completed == 1);
}
