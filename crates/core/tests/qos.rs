//! Integration tests of the QoS admission-control subsystem wired into
//! the pipeline: class-aware shedding under overload, zero priority
//! inversions, typed shed errors, rate ceilings, and the adaptive
//! consistency degradation of sustained overload.

use udr_core::{OpRequest, Udr, UdrConfig};
use udr_model::config::ReadPolicy;
use udr_model::error::UdrError;
use udr_model::identity::{IdentitySet, Impi, Impu, Imsi, Msisdn};
use udr_model::ids::SiteId;
use udr_model::procedures::ProcedureKind;
use udr_model::qos::{PriorityClass, ShedReason};
use udr_model::time::{SimDuration, SimTime};
use udr_qos::QosConfig;

fn ids(n: u64) -> IdentitySet {
    IdentitySet {
        imsi: Imsi::new(format!("21401{n:010}")).unwrap(),
        msisdn: Msisdn::new(format!("346{n:08}")).unwrap(),
        impus: vec![Impu::new(format!("sip:user{n}@ims.example.com")).unwrap()],
        impi: Some(Impi::new(format!("user{n}@ims.example.com")).unwrap()),
    }
}

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// A deployment slow enough to overload from a test loop: one 500 ops/s
/// LDAP server per cluster (2 ms service, 5 ms queue bound).
fn slow_config(qos: QosConfig) -> UdrConfig {
    let mut cfg = UdrConfig::figure2();
    cfg.ldap_servers_per_cluster = 1;
    cfg.ldap_ops_per_sec = 500.0;
    cfg.qos = qos;
    cfg
}

fn provision_n(udr: &mut Udr, n: u64) -> Vec<IdentitySet> {
    let mut subs = Vec::with_capacity(n as usize);
    for i in 0..n {
        let set = ids(i);
        let out = udr.provision_subscriber(
            &set,
            (i % 3) as u32,
            SiteId(0),
            t(1) + SimDuration::from_millis(i * 20),
        );
        assert!(out.is_ok(), "provisioning {i} failed: {:?}", out.op.result);
        subs.push(set);
    }
    subs
}

/// Hammer one site with `kind` procedures back-to-back (zero virtual
/// inter-arrival time) and report (ok, shed, other-failures).
fn hammer(
    udr: &mut Udr,
    subs: &[IdentitySet],
    kind: ProcedureKind,
    at: SimTime,
    count: usize,
) -> (u64, u64, u64) {
    let (mut ok, mut shed, mut other) = (0u64, 0u64, 0u64);
    for i in 0..count {
        let sub = &subs[i % subs.len()];
        let out = udr
            .execute(OpRequest::procedure(kind, sub).site(SiteId(0)).at(at))
            .into_procedure();
        if out.success {
            ok += 1;
        } else if matches!(out.failure, Some(UdrError::Shed { .. })) {
            shed += 1;
        } else {
            other += 1;
        }
    }
    (ok, shed, other)
}

#[test]
fn disabled_qos_changes_nothing_but_overloads_blindly() {
    let mut udr = Udr::build(slow_config(QosConfig::disabled())).unwrap();
    let subs = provision_n(&mut udr, 6);
    // A zero-gap burst saturates the 500 ops/s station.
    let (_, shed, other) = hammer(&mut udr, &subs, ProcedureKind::CallSetupMo, t(10), 60);
    assert_eq!(shed, 0, "disabled QoS must never shed");
    assert!(other > 0, "the raw station still overloads");
    assert_eq!(udr.metrics.qos.total_shed(), 0);
    // Offered load is still accounted per class.
    assert!(udr.metrics.qos.class(PriorityClass::CallSetup).offered > 0);
}

#[test]
fn overload_sheds_low_classes_and_spares_high_with_zero_inversions() {
    let mut qos = QosConfig::protective();
    qos.shed_target = SimDuration::from_micros(500);
    qos.shed_interval = SimDuration::from_millis(5);
    let mut udr = Udr::build(slow_config(qos)).unwrap();
    let subs = provision_n(&mut udr, 6);

    // Sustained 3× overload: one procedure per virtual millisecond
    // (alternating registrations and call setups ≈ 1.5 ops/ms) against a
    // 0.5 ops/ms station.
    let (mut call_ok, mut call_shed) = (0u64, 0u64);
    let (mut reg_ok, mut reg_shed) = (0u64, 0u64);
    for i in 0..200u64 {
        let at = t(10) + SimDuration::from_millis(i);
        let sub = &subs[(i as usize) % subs.len()];
        let kind = if i % 2 == 0 {
            ProcedureKind::LocationUpdate
        } else {
            ProcedureKind::CallSetupMo
        };
        let out = udr
            .execute(OpRequest::procedure(kind, sub).site(SiteId(0)).at(at))
            .into_procedure();
        let shed = matches!(out.failure, Some(UdrError::Shed { .. }));
        match kind {
            ProcedureKind::LocationUpdate => {
                if out.success {
                    reg_ok += 1;
                } else if shed {
                    reg_shed += 1;
                }
            }
            _ => {
                if out.success {
                    call_ok += 1;
                } else if shed {
                    call_shed += 1;
                }
            }
        }
    }
    assert!(reg_shed > 0, "registrations must be shed under saturation");
    assert!(
        call_ok > reg_ok,
        "call setups ({call_ok} ok, {call_shed} shed) must fare better than \
         registrations ({reg_ok} ok, {reg_shed} shed)"
    );
    assert_eq!(
        udr.metrics.qos.priority_inversions, 0,
        "no lower class may be admitted where a higher one was shed"
    );
    let reg = udr.metrics.qos.class(PriorityClass::Registration);
    assert!(reg.shed_delay > 0, "sheds carry the queue-delay reason");
}

#[test]
fn shed_error_is_typed_and_retryable() {
    let mut qos = QosConfig::protective();
    qos.shed_target = SimDuration::from_micros(200);
    qos.shed_interval = SimDuration::from_millis(2);
    let mut udr = Udr::build(slow_config(qos)).unwrap();
    let subs = provision_n(&mut udr, 4);
    let mut seen_shed = None;
    for i in 0..200u64 {
        let out = udr
            .execute(
                OpRequest::procedure(
                    ProcedureKind::LocationUpdate,
                    &subs[(i as usize) % subs.len()],
                )
                .site(SiteId(0))
                .at(t(10) + SimDuration::from_millis(i / 2)),
            )
            .into_procedure();
        if let Some(UdrError::Shed { class, reason }) = out.failure {
            seen_shed = Some((class, reason));
            break;
        }
    }
    let (class, reason) = seen_shed.expect("saturation must shed something");
    assert_eq!(class, PriorityClass::Registration);
    assert_eq!(reason, ShedReason::QueueDelay);
    assert!(UdrError::Shed { class, reason }.is_retryable());
}

#[test]
fn rate_ceiling_sheds_with_rate_limit_reason() {
    // Bucket the Query class (bare FE searches) tightly. Provisioning
    // must carry a bucket too: the borrowing walk falls through an
    // unbucketed lower class, so Query is only ever rate-shed once its
    // own budget *and* Provisioning's are both exhausted — which also
    // sheds Provisioning itself at that point (no inversion).
    let qos = QosConfig::protective()
        .with_rate_limit(PriorityClass::Query, 10.0, 2.0)
        .with_rate_limit(PriorityClass::Provisioning, 1_000_000.0, 4.0);
    let mut cfg = UdrConfig::figure2();
    cfg.qos = qos;
    let mut udr = Udr::build(cfg).unwrap();
    let subs = provision_n(&mut udr, 4);

    // Bare searches run as TxnClass::FrontEnd → PriorityClass::Query.
    use udr_ldap::{Dn, LdapOp};
    use udr_model::config::TxnClass;
    let op = LdapOp::Search {
        base: Dn::for_identity(subs[0].imsi.into()),
        attrs: vec![],
    };
    let mut shed_rate = 0u64;
    for _ in 0..40 {
        let out = udr
            .execute(
                OpRequest::new(&op)
                    .class(TxnClass::FrontEnd)
                    .site(SiteId(0))
                    .at(t(10)),
            )
            .into_op();
        if let Err(UdrError::Shed { reason, .. }) = out.result {
            assert_eq!(reason, ShedReason::RateLimit);
            shed_rate += 1;
        }
    }
    // 2 own tokens + 4 borrowed from provisioning admit 6; the rest of
    // the zero-width burst is rate-shed.
    assert!(shed_rate > 20, "only {shed_rate} rate-shed of 40");
    assert_eq!(udr.metrics.qos.priority_inversions, 0);
    assert!(udr.metrics.qos.class(PriorityClass::Query).shed_rate > 0);
}

#[test]
fn sustained_overload_downgrades_guarded_reads_and_accounts_them() {
    let mut qos = QosConfig::protective();
    qos.shed_target = SimDuration::from_micros(300);
    qos.shed_interval = SimDuration::from_millis(2);
    qos.degrade_after = SimDuration::from_millis(10);
    let mut cfg = slow_config(qos);
    cfg.frash.fe_read_policy = ReadPolicy::BoundedStaleness { max_lag: 2 };
    let mut udr = Udr::build(cfg).unwrap();
    let subs = provision_n(&mut udr, 6);

    // Sustained saturation at site 0: zero-gap bursts across 100 ms of
    // virtual time keep the queue above target past the degradation fuse.
    let mut downgraded_reads = 0u64;
    for step in 0..100u64 {
        let at = t(10) + SimDuration::from_millis(step);
        for i in 0..4 {
            let out = udr
                .execute(
                    OpRequest::procedure(ProcedureKind::CallSetupMo, &subs[i % subs.len()])
                        .site(SiteId(0))
                        .at(at),
                )
                .into_procedure();
            if out.success {
                downgraded_reads += 1;
            }
        }
    }
    assert!(downgraded_reads > 0);
    let g = &udr.metrics.guarantees;
    assert!(
        g.policy_downgrades > 0,
        "sustained overload must trigger explicit downgrades"
    );
    assert_eq!(
        g.violations(),
        0,
        "downgrades are accounted, never silent violations"
    );
    // Non-degraded periods still audit normally.
    assert!(udr.qos_controller(0).config().adaptive_degradation);
}

#[test]
fn procedure_overrides_reroute_priority() {
    let qos = QosConfig::protective()
        .with_override(ProcedureKind::SmsDelivery, PriorityClass::Provisioning);
    let mut cfg = UdrConfig::figure2();
    cfg.qos = qos;
    let mut udr = Udr::build(cfg).unwrap();
    let subs = provision_n(&mut udr, 3);
    let out = udr
        .execute(
            OpRequest::procedure(ProcedureKind::SmsDelivery, &subs[0])
                .site(SiteId(0))
                .at(t(10)),
        )
        .into_procedure();
    assert!(out.success);
    // The op was accounted under the overridden class.
    assert!(udr.metrics.qos.class(PriorityClass::Provisioning).offered > 0);
    assert_eq!(udr.metrics.qos.class(PriorityClass::CallSetup).offered, 0);
}
