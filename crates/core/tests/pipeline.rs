//! End-to-end pipeline integration: a read and a write must traverse all
//! four stages (`AccessStage → LocationStage → ReplicationStage →
//! StorageStage`) and report a latency decomposition consistent with the
//! end-to-end latency the monolithic pre-refactor path reported — i.e.
//! the per-stage components must account for every nanosecond of
//! `OpOutcome::latency`, deterministically across identically-seeded
//! deployments.

use udr_core::{LatencyBreakdown, OpRequest, Udr, UdrConfig};
use udr_ldap::{Dn, LdapOp};
use udr_model::attrs::{AttrId, AttrMod, AttrValue};
use udr_model::config::{LocatorKind, ReplicationMode, TxnClass};
use udr_model::identity::{Identity, IdentitySet, Imsi, Msisdn};
use udr_model::ids::SiteId;
use udr_model::time::{SimDuration, SimTime};

fn ids(n: u64) -> IdentitySet {
    IdentitySet {
        imsi: Imsi::new(format!("21401{n:010}")).unwrap(),
        msisdn: Msisdn::new(format!("346{n:08}")).unwrap(),
        impus: vec![],
        impi: None,
    }
}

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

fn provisioned_udr(cfg: UdrConfig) -> Udr {
    let mut udr = Udr::build(cfg).unwrap();
    for i in 0..4u64 {
        let out = udr.provision_subscriber(&ids(i), (i % 3) as u32, SiteId(0), t(1));
        assert!(out.is_ok(), "provisioning failed: {:?}", out.op.result);
    }
    udr
}

fn search(n: u64) -> LdapOp {
    LdapOp::Search {
        base: Dn::for_identity(Identity::from(ids(n).imsi)),
        attrs: vec![],
    }
}

fn modify(n: u64) -> LdapOp {
    LdapOp::Modify {
        dn: Dn::for_identity(Identity::from(ids(n).imsi)),
        mods: vec![AttrMod::Set(
            AttrId::VlrAddress,
            AttrValue::Str("vlr-test".into()),
        )],
    }
}

/// The decomposition invariant of the success path: every component the
/// stages charged is visible, and the sum reproduces the end-to-end
/// latency exactly — the same total the pre-refactor monolithic path
/// produced for this configuration.
fn assert_decomposed(label: &str, breakdown: &LatencyBreakdown, latency: SimDuration) {
    assert_eq!(
        breakdown.total(),
        latency,
        "{label}: breakdown {breakdown:?} does not sum to latency {latency}"
    );
    assert!(
        breakdown.access > SimDuration::ZERO,
        "{label}: access stage charged nothing (PoA RTT + LDAP processing missing)"
    );
    assert!(
        breakdown.storage > SimDuration::ZERO,
        "{label}: storage stage charged nothing (SE RTT + engine cost missing)"
    );
}

#[test]
fn read_and_write_traverse_all_four_stages() {
    let mut udr = provisioned_udr(UdrConfig::figure2());

    let read = udr
        .execute(
            OpRequest::new(&search(0))
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(10)),
        )
        .into_op();
    assert!(read.is_ok(), "read failed: {:?}", read.result);
    assert!(
        read.served_by.is_some(),
        "read never reached a storage element"
    );
    assert!(
        read.result.as_ref().unwrap().is_some(),
        "read returned no entry"
    );
    assert_decomposed("read", &read.breakdown, read.latency);
    // Provisioned maps resolve locally: the location stage ran but is free.
    assert_eq!(read.breakdown.location, SimDuration::ZERO);
    // Async master/slave replication: the commit waits for nothing, and a
    // read replicates nothing.
    assert_eq!(read.breakdown.replication, SimDuration::ZERO);

    let write = udr
        .execute(
            OpRequest::new(&modify(0))
                .class(TxnClass::Provisioning)
                .site(SiteId(0))
                .at(t(11)),
        )
        .into_op();
    assert!(write.is_ok(), "write failed: {:?}", write.result);
    assert!(
        write.served_by.is_some(),
        "write never reached a storage element"
    );
    assert_decomposed("write", &write.breakdown, write.latency);
}

/// A cached locator misses on first resolution: the location stage must
/// charge the probe broadcast to its own component.
#[test]
fn cached_locator_charges_the_location_stage() {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.locator = LocatorKind::CachedMaps;
    // A one-entry cache: provisioning subscribers 0..4 evicts the early
    // bindings, so resolving subscriber 2 misses → probe → fill.
    cfg.dls_cache_capacity = 1;
    let mut udr = provisioned_udr(cfg);
    let read = udr
        .execute(
            OpRequest::new(&search(2))
                .class(TxnClass::FrontEnd)
                .site(SiteId(1))
                .at(t(10)),
        )
        .into_op();
    assert!(read.is_ok(), "read failed: {:?}", read.result);
    assert_decomposed("cached read", &read.breakdown, read.latency);
    assert!(
        read.breakdown.location > SimDuration::ZERO,
        "cache miss should charge the location stage, got {:?}",
        read.breakdown
    );
    // The filled cache serves the next resolution locally.
    let again = udr
        .execute(
            OpRequest::new(&search(2))
                .class(TxnClass::FrontEnd)
                .site(SiteId(1))
                .at(t(11)),
        )
        .into_op();
    assert!(again.is_ok());
    assert_eq!(again.breakdown.location, SimDuration::ZERO);
}

/// Synchronous replication modes must charge the replication stage: the
/// quorum write waits for acks, the quorum read waits for the consult.
#[test]
fn quorum_mode_charges_the_replication_stage() {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.replication = ReplicationMode::Quorum { n: 3, w: 2, r: 2 };
    let mut udr = provisioned_udr(cfg);

    let write = udr
        .execute(
            OpRequest::new(&modify(1))
                .class(TxnClass::Provisioning)
                .site(SiteId(0))
                .at(t(10)),
        )
        .into_op();
    assert!(write.is_ok(), "quorum write failed: {:?}", write.result);
    assert_decomposed("quorum write", &write.breakdown, write.latency);
    assert!(
        write.breakdown.replication > SimDuration::ZERO,
        "w=2 commit must wait for a slave ack, got {:?}",
        write.breakdown
    );

    let read = udr
        .execute(
            OpRequest::new(&search(1))
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(11)),
        )
        .into_op();
    assert!(read.is_ok(), "quorum read failed: {:?}", read.result);
    assert_decomposed("quorum read", &read.breakdown, read.latency);
    assert!(
        read.breakdown.replication > SimDuration::ZERO,
        "r=2 read must wait for the consult, got {:?}",
        read.breakdown
    );
}

/// §5 ack carry-over: the replicas whose acks a committed quorum write
/// waited for have applied the record by the time the client sees the
/// commit — no event-pump progress required. With every replica
/// reachable the responder set is the whole ensemble, so replication is
/// settled the instant the write returns, and an immediate r=2 consult
/// anywhere sees the new value.
#[test]
fn quorum_acks_carry_the_write_synchronously() {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.replication = ReplicationMode::Quorum { n: 3, w: 2, r: 2 };
    let mut udr = provisioned_udr(cfg);

    let write = udr
        .execute(
            OpRequest::new(&modify(1))
                .class(TxnClass::Provisioning)
                .site(SiteId(0))
                .at(t(10)),
        )
        .into_op();
    assert!(write.is_ok(), "quorum write failed: {:?}", write.result);
    assert_eq!(
        udr.max_replica_lag(),
        0,
        "every responder must be applied at commit time, not at delivery"
    );

    // The freshest consulted copy — wherever the consult lands — already
    // holds the write.
    let read = udr
        .execute(
            OpRequest::new(&search(1))
                .class(TxnClass::FrontEnd)
                .site(SiteId(2))
                .at(t(10)),
        )
        .into_op();
    assert!(read.is_ok(), "quorum read failed: {:?}", read.result);
    let entry = read.result.unwrap().expect("entry present");
    let vlr = entry
        .iter()
        .find(|(id, _)| **id == AttrId::VlrAddress)
        .map(|(_, v)| v.clone());
    assert_eq!(
        vlr,
        Some(AttrValue::Str("vlr-test".into())),
        "an immediate overlap read must see the acknowledged write"
    );
}

/// Quorum-served reads must keep per-operation semantics: a failed
/// Compare assertion is compareFalse (`None`), not the full entry.
#[test]
fn quorum_reads_preserve_operation_semantics() {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.replication = ReplicationMode::Quorum { n: 3, w: 2, r: 2 };
    let mut udr = provisioned_udr(cfg);

    let compare = LdapOp::Compare {
        dn: Dn::for_identity(Identity::from(ids(0).imsi)),
        attr: AttrId::VlrAddress,
        value: AttrValue::Str("definitely-not-the-vlr".into()),
    };
    let out = udr
        .execute(
            OpRequest::new(&compare)
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(10)),
        )
        .into_op();
    assert!(out.is_ok(), "compare failed: {:?}", out.result);
    assert_eq!(
        out.result.unwrap(),
        None,
        "mismatched Compare under quorum must be compareFalse, not the raw entry"
    );

    let bind = LdapOp::Bind {
        dn: Dn::for_identity(Identity::from(ids(0).imsi)),
        password: b"secret".to_vec(),
    };
    let out = udr
        .execute(
            OpRequest::new(&bind)
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(11)),
        )
        .into_op();
    assert!(out.is_ok(), "bind failed: {:?}", out.result);
    assert_eq!(
        out.result.unwrap(),
        None,
        "Bind must not leak the subscriber entry"
    );
}

/// Identically-seeded deployments must produce identical outcomes and
/// identical decompositions through every pipeline entry point — the
/// refactor preserves the monolithic path's determinism.
#[test]
fn decomposition_is_deterministic_across_identical_deployments() {
    let run = || {
        let mut udr = provisioned_udr(UdrConfig::figure2());
        let mut trace = Vec::new();
        for (i, site) in [(0u64, 0u32), (1, 1), (2, 2), (3, 0)] {
            let read = udr
                .execute(
                    OpRequest::new(&search(i))
                        .class(TxnClass::FrontEnd)
                        .site(SiteId(site))
                        .at(t(10 + i)),
                )
                .into_op();
            let write = udr
                .execute(
                    OpRequest::new(&modify(i))
                        .class(TxnClass::Provisioning)
                        .site(SiteId(0))
                        .at(t(20 + i)),
                )
                .into_op();
            trace.push((read.latency, read.breakdown, write.latency, write.breakdown));
        }
        trace
    };
    assert_eq!(run(), run());
}

/// Procedures (multi-op sequences) run entirely through the pipeline; the
/// per-op decompositions must add up to the procedure latency.
#[test]
fn procedure_latency_is_the_sum_of_stage_decompositions() {
    let mut udr = provisioned_udr(UdrConfig::figure2());
    let set = ids(0);
    let ops = udr_core::procedure_ops(
        udr_model::procedures::ProcedureKind::Attach,
        &set,
        SiteId(0),
    );
    let mut by_stage = SimDuration::ZERO;
    let mut total = SimDuration::ZERO;
    let mut at = t(30);
    for op in &ops {
        let out = udr
            .execute(
                OpRequest::new(op)
                    .class(TxnClass::FrontEnd)
                    .site(SiteId(0))
                    .at(at),
            )
            .into_op();
        assert!(out.is_ok(), "attach op failed: {:?}", out.result);
        by_stage += out.breakdown.total();
        total += out.latency;
        at += out.latency;
    }
    assert_eq!(by_stage, total);
}
