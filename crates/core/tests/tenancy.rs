//! Multi-tenant authorization and isolation through the full pipeline:
//! the capability mask gates every operation in the access stage, a
//! denial is a permanent [`UdrError::Forbidden`] (never shed, never
//! retried), revocations take effect mid-run via the directory epoch,
//! and per-tenant rate budgets spend independently.

use udr_core::{OpRequest, Udr, UdrConfig};
use udr_ldap::{Dn, LdapOp};
use udr_model::attrs::{AttrId, AttrMod, AttrValue};
use udr_model::config::TxnClass;
use udr_model::error::UdrError;
use udr_model::identity::{Identity, IdentitySet, Imsi, Msisdn};
use udr_model::ids::SiteId;
use udr_model::procedures::ProcedureKind;
use udr_model::qos::{PriorityClass, ShedReason};
use udr_model::tenant::{Capability, CapabilitySet, TenantBudget, TenantDirectory, TenantId};
use udr_model::time::{SimDuration, SimTime};
use udr_workload::RetryPolicy;

fn ids(n: u64) -> IdentitySet {
    IdentitySet {
        imsi: Imsi::new(format!("21401{n:010}")).unwrap(),
        msisdn: Msisdn::new(format!("346{n:08}")).unwrap(),
        impus: vec![],
        impi: None,
    }
}

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// Two tenants: A (0) fully entitled, B (1) front-end only.
fn two_tenant_directory() -> TenantDirectory {
    let mut dir = TenantDirectory::empty();
    dir.add_tenant(CapabilitySet::ALL);
    dir.add_tenant(CapabilitySet::front_end());
    dir
}

fn build(dir: TenantDirectory, n: u64) -> (Udr, Vec<IdentitySet>) {
    let mut cfg = UdrConfig::figure2();
    cfg.tenants = dir;
    let mut udr = Udr::build(cfg).expect("valid config");
    let mut subs = Vec::new();
    for i in 0..n {
        let set = ids(i + 1);
        let out = udr.provision_subscriber(
            &set,
            (i % 3) as u32,
            SiteId(0),
            t(1) + SimDuration::from_millis(i * 20),
        );
        assert!(out.is_ok(), "provisioning {i} failed: {:?}", out.op.result);
        subs.push(set);
    }
    (udr, subs)
}

fn read_op(sub: &IdentitySet) -> LdapOp {
    LdapOp::Search {
        base: Dn::for_identity(Identity::Imsi(sub.imsi)),
        attrs: vec![AttrId::OdbMask],
    }
}

fn write_op(sub: &IdentitySet, v: u64) -> LdapOp {
    LdapOp::Modify {
        dn: Dn::for_identity(Identity::Imsi(sub.imsi)),
        mods: vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(v))],
    }
}

/// A tenant with the empty mask is forbidden every single operation —
/// and a forbidden op is never counted as offered or shed.
#[test]
fn empty_mask_tenant_is_forbidden_everything() {
    let mut dir = two_tenant_directory();
    let nobody = dir.add_tenant(CapabilitySet::EMPTY);
    let (mut udr, subs) = build(dir, 3);

    for kind in ProcedureKind::ALL {
        let out = udr
            .execute(
                OpRequest::procedure(kind, &subs[0])
                    .site(SiteId(0))
                    .at(t(10))
                    .tenant(nobody),
            )
            .into_procedure();
        assert!(!out.success);
        assert_eq!(
            out.failure,
            Some(UdrError::Forbidden {
                tenant: nobody,
                capability: Capability::Procedure(kind)
            })
        );
    }
    let out = udr
        .execute(
            OpRequest::new(&read_op(&subs[0]))
                .site(SiteId(0))
                .at(t(11))
                .tenant(nobody),
        )
        .into_op();
    assert!(matches!(
        out.result,
        Err(UdrError::Forbidden {
            capability: Capability::DirectRead,
            ..
        })
    ));

    let counters = udr.metrics.qos.tenant(nobody);
    assert_eq!(counters.forbidden, ProcedureKind::ALL.len() as u64 + 1);
    assert_eq!(counters.offered(), 0, "denials are not offered load");
    assert_eq!(counters.shed(), 0, "denials are never accounted as shed");
}

/// An unregistered tenant id resolves to the empty mask — forbidden, not
/// a panic, not a fall-through to some default entitlement.
#[test]
fn unknown_tenant_is_forbidden() {
    let (mut udr, subs) = build(two_tenant_directory(), 3);
    let ghost = TenantId(7);
    let out = udr
        .execute(
            OpRequest::procedure(ProcedureKind::SmsDelivery, &subs[1])
                .site(SiteId(1))
                .at(t(10))
                .tenant(ghost),
        )
        .into_procedure();
    assert_eq!(
        out.failure,
        Some(UdrError::Forbidden {
            tenant: ghost,
            capability: Capability::Procedure(ProcedureKind::SmsDelivery)
        })
    );
}

/// The capability boundary holds per-capability: tenant B (front-end
/// mask) runs procedures fine but is denied bare writes and provisioning.
#[test]
fn capability_mask_splits_read_and_write_paths() {
    let (mut udr, subs) = build(two_tenant_directory(), 3);
    let b = TenantId(1);

    let ok = udr
        .execute(
            OpRequest::procedure(ProcedureKind::CallSetupMo, &subs[0])
                .site(SiteId(0))
                .at(t(10))
                .tenant(b),
        )
        .into_procedure();
    assert!(ok.success, "front-end tenant must run procedures: {ok:?}");

    let denied = udr
        .execute(
            OpRequest::new(&write_op(&subs[0], 5))
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(11))
                .tenant(b),
        )
        .into_op();
    assert!(matches!(
        denied.result,
        Err(UdrError::Forbidden {
            tenant: TenantId(1),
            capability: Capability::DirectWrite
        })
    ));
    // The denial cost nothing downstream: no replication, no storage.
    assert_eq!(denied.breakdown.replication, SimDuration::ZERO);
    assert_eq!(denied.breakdown.storage, SimDuration::ZERO);
}

/// Revoking a capability mid-run takes effect on the very next operation
/// (the directory epoch invalidates derived state); re-granting restores
/// service.
#[test]
fn revocation_mid_run_takes_effect_on_next_op() {
    let (mut udr, subs) = build(two_tenant_directory(), 3);
    let b = TenantId(1);
    let cap = Capability::Procedure(ProcedureKind::LocationUpdate);
    let run = |udr: &mut Udr, at: SimTime| {
        udr.execute(
            OpRequest::procedure(ProcedureKind::LocationUpdate, &subs[1])
                .site(SiteId(1))
                .at(at)
                .tenant(b),
        )
        .into_procedure()
    };

    assert!(run(&mut udr, t(10)).success);
    udr.tenant_directory_mut().revoke(b, cap);
    let denied = run(&mut udr, t(11));
    assert_eq!(
        denied.failure,
        Some(UdrError::Forbidden {
            tenant: b,
            capability: cap
        })
    );
    udr.tenant_directory_mut().grant(b, cap);
    assert!(run(&mut udr, t(12)).success, "re-grant restores service");
}

/// `Forbidden` is a permanent policy denial: not an availability
/// failure, not retryable, so the client retry loop never spends an
/// attempt on it regardless of the policy's budget.
#[test]
fn forbidden_is_never_retried() {
    let (mut udr, subs) = build(two_tenant_directory(), 3);
    let b = TenantId(1);
    let out = udr
        .execute(
            OpRequest::new(&write_op(&subs[0], 9))
                .class(TxnClass::FrontEnd)
                .site(SiteId(0))
                .at(t(10))
                .tenant(b),
        )
        .into_op();
    let err = out.result.expect_err("front-end tenant cannot bare-write");
    assert!(!err.is_retryable(), "Forbidden must be permanent");
    assert!(!err.is_availability_failure());

    // The harness retry gate is `is_retryable() && policy.should_retry`:
    // even the most aggressive policy never re-offers a denial.
    let policy = RetryPolicy::aggressive(6);
    assert!(policy.should_retry(0), "policy itself has budget");
    assert!(!(err.is_retryable() && policy.should_retry(0)));
}

/// A tenant's rate budget spends only on that tenant: hammering tenant
/// A into its budget ceiling sheds A with `RateLimit` while B's
/// identical traffic is untouched — and the per-tenant counters never
/// bleed into each other.
#[test]
fn tenant_budgets_spend_independently() {
    let mut dir = two_tenant_directory();
    // A may register at most 5 ops/s (burst 2); B is uncapped.
    dir.set_budget(
        TenantId(0),
        PriorityClass::Registration,
        TenantBudget {
            rate: 5.0,
            burst: 2.0,
        },
    );
    let (mut udr, subs) = build(dir, 3);
    let (a, b) = (TenantId(0), TenantId(1));

    let mut shed_a = 0u64;
    let mut ok_b = 0u64;
    for i in 0..40u64 {
        let at = t(10) + SimDuration::from_millis(i * 10); // 100/s offered
        let out_a = udr
            .execute(
                OpRequest::procedure(ProcedureKind::LocationUpdate, &subs[0])
                    .site(SiteId(0))
                    .at(at)
                    .tenant(a),
            )
            .into_procedure();
        if let Some(UdrError::Shed {
            reason: ShedReason::RateLimit,
            ..
        }) = out_a.failure
        {
            shed_a += 1;
        }
        let out_b = udr
            .execute(
                OpRequest::procedure(ProcedureKind::LocationUpdate, &subs[1])
                    .site(SiteId(1))
                    .at(at)
                    .tenant(b),
            )
            .into_procedure();
        if out_b.success {
            ok_b += 1;
        }
    }
    assert!(shed_a > 20, "A must hit its 5/s budget: {shed_a} shed");
    assert_eq!(ok_b, 40, "B's uncapped traffic must be untouched");

    let ca = udr.metrics.qos.tenant(a);
    let cb = udr.metrics.qos.tenant(b);
    // Counters are per LDAP op: LocationUpdate costs 2, a shed procedure
    // stops at its shed op (fail-fast), so A lands between the extremes.
    assert_eq!(cb.offered(), 80);
    assert!(ca.offered() >= 40 && ca.offered() <= 80, "{}", ca.offered());
    assert_eq!(ca.shed(), shed_a);
    assert_eq!(cb.shed(), 0, "B never borrows or pays for A");
    assert_eq!(ca.forbidden + cb.forbidden, 0);
}

/// The deprecated single-op shim delegates to `Udr::execute` exactly:
/// same outcome, same latency, same breakdown (intentional shim-compat
/// coverage; everything else in the tree uses the builder).
#[test]
fn deprecated_shims_delegate_to_execute() {
    let (mut udr_a, subs_a) = build(two_tenant_directory(), 3);
    let (mut udr_b, subs_b) = build(two_tenant_directory(), 3);
    #[allow(deprecated)]
    let legacy = udr_a.execute_op(&read_op(&subs_a[2]), TxnClass::FrontEnd, SiteId(2), t(5));
    let current = udr_b
        .execute(
            OpRequest::new(&read_op(&subs_b[2]))
                .class(TxnClass::FrontEnd)
                .site(SiteId(2))
                .at(t(5)),
        )
        .into_op();
    assert_eq!(legacy.result.is_ok(), current.result.is_ok());
    assert_eq!(legacy.latency, current.latency);
    assert_eq!(legacy.breakdown, current.breakdown);
    assert_eq!(legacy.served_by, current.served_by);
}
