//! Consensus replication mode: per-partition Multi-Paxos replica groups
//! embedded in the deployment's event pump.
//!
//! Under [`ReplicationMode::Consensus`] the ordinary master/slave
//! machinery — asynchronous shippers, failover checks, snapshot reseeds —
//! is switched off. Each partition instead runs an `n`-node
//! [`udr_consensus::Replica`] ensemble over the same Storage Elements the
//! replication group names: node `i` of partition `p`'s ensemble lives on
//! `groups[p].members()[i]`. Protocol timers ([`UdrEvent::ConsensusTick`])
//! and message deliveries ([`UdrEvent::ConsensusDeliver`]) flow through
//! the sharded pump on the partition's lane, so consensus traffic
//! interleaves deterministically with faults and client operations.
//!
//! The log replicates *state*, not operations: the serving leader computes
//! the post-image of a write against its committed store and the chosen
//! [`Payload::Write`] carries it, so every replica applies the identical
//! record (`Udr::consensus_apply`). A replica's engine therefore always
//! equals its applied committed prefix — the structural property that
//! makes stale reads impossible when reads are routed to the serving
//! leader (see `ReplicationStage::consensus_read` in the pipeline).
//!
//! Crashes model a process stop with acceptor state preserved across
//! restart (the persistence Paxos requires): a down node simply stops
//! ticking and receiving; on restore its engine is rolled forward from
//! the recovered disk position by replaying the chosen log.
//!
//! Migration cutovers ride the log as [`Payload::Reconfig`] commands —
//! exactly-once (command-id dedup plus first-apply-wins) and totally
//! ordered against the write stream, replacing the legacy write-freeze
//! window (see `Udr::run_consensus_migrations`).
//!
//! [`ReplicationMode::Consensus`]: udr_model::config::ReplicationMode::Consensus
//! [`Payload::Write`]: udr_consensus::Payload::Write
//! [`Payload::Reconfig`]: udr_consensus::Payload::Reconfig

use udr_consensus::{
    ChosenLog, CmdId, Command, Message, NodeId, Payload, Replica, ReplicaConfig, Role,
};
use udr_model::attrs::Entry;
use udr_model::config::ReplicationMode;
use udr_model::ids::{PartitionId, ReplicaRole, SeId, SiteId, SubscriberUid};
use udr_model::time::{SimDuration, SimTime};
use udr_replication::MigrationState;
use udr_storage::{Change, CommitRecord, Lsn};

use crate::udr::{Udr, UdrEvent};

/// How often each partition's ensemble runs its protocol timers
/// (election timeouts, heartbeats, forward retries, catch-up probes).
pub(crate) const CONSENSUS_TICK_INTERVAL: SimDuration = SimDuration::from_millis(50);

/// One partition's Multi-Paxos ensemble and its apply bookkeeping.
pub(crate) struct ConsensusGroup {
    /// Hosting SEs; index `i` is protocol node `NodeId(i)`. Kept in sync
    /// with the partition's [`udr_replication::ReplicationGroup`] — a
    /// migration cutover swaps the member here and there atomically.
    pub(crate) members: Vec<SeId>,
    /// The protocol state machines (RAM *and* the durable acceptor state —
    /// preserved across SE crashes, as Paxos requires).
    pub(crate) replicas: Vec<Replica>,
    /// Effective-entry apply cursor per node: how many entries of
    /// `iter_effective()` this node has applied to its storage.
    pub(crate) applied: Vec<usize>,
    /// Last observed serving leader (bookkeeping for failover counting).
    pub(crate) last_leader: Option<usize>,
    /// Serving-leader hand-offs observed (failovers under consensus).
    pub(crate) leader_changes: u64,
}

impl ConsensusGroup {
    /// A fresh ensemble of `n` followers over `members`.
    pub(crate) fn new(members: Vec<SeId>, n: usize, seed: u64, partition: u32) -> Self {
        debug_assert_eq!(members.len(), n, "ensemble size must match membership");
        let replicas = (0..members.len())
            .map(|i| {
                Replica::new(
                    NodeId(i as u32),
                    n,
                    ReplicaConfig::default(),
                    seed ^ 0x9A05 ^ ((partition as u64) << 8),
                )
            })
            .collect();
        ConsensusGroup {
            applied: vec![0; members.len()],
            replicas,
            members,
            last_leader: None,
            leader_changes: 0,
        }
    }

    /// Majority threshold of this ensemble.
    pub(crate) fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }
}

/// The apply cursor equivalent to `writes` committed records: positioned
/// right after the `writes`-th effective `Write` entry, so a recovering
/// engine at LSN `writes` resumes exactly where its disk state left off.
/// Reconfig entries at or after the cursor are re-applied; the
/// first-apply-wins guard in [`Udr::consensus_reconfig_applied`] makes
/// that a no-op.
fn cursor_for_writes(log: &ChosenLog, writes: u64) -> usize {
    if writes == 0 {
        return 0;
    }
    let mut seen = 0u64;
    for (idx, (_, cmd)) in log.iter_effective().enumerate() {
        if matches!(cmd.payload, Payload::Write { .. }) {
            seen += 1;
            if seen == writes {
                return idx + 1;
            }
        }
    }
    log.iter_effective().count()
}

impl Udr {
    /// Whether the deployment replicates through consensus.
    pub(crate) fn consensus_mode(&self) -> bool {
        matches!(
            self.cfg.frash.replication,
            ReplicationMode::Consensus { .. }
        )
    }

    /// Whether ensemble node `i` of partition `p` is up (its hosting SE).
    pub(crate) fn consensus_node_up(&self, p: usize, i: usize) -> bool {
        let se = self.consensus[p].members[i];
        self.ses[se.index()].is_up()
    }

    fn consensus_node_site(&self, p: usize, i: usize) -> SiteId {
        let se = self.consensus[p].members[i];
        self.ses[se.index()].site()
    }

    /// Allocate the next client command id (0 is the reserved no-op).
    pub(crate) fn consensus_alloc_cmd_id(&mut self) -> CmdId {
        let id = self.next_cmd_id;
        self.next_cmd_id += 1;
        CmdId(id)
    }

    /// Whether any replica of partition `p` has chosen command `id`.
    pub(crate) fn consensus_chosen(&self, p: usize, id: CmdId) -> bool {
        self.consensus[p]
            .replicas
            .iter()
            .any(|r| r.log().contains_id(id))
    }

    /// The live leader of partition `p`'s ensemble: among up nodes in the
    /// `Leader` role, the one holding the highest ballot (a deposed
    /// leader that has not yet heard of its successor loses the tie).
    fn consensus_live_leader(&self, p: usize) -> Option<usize> {
        (0..self.consensus[p].members.len())
            .filter(|i| {
                self.consensus_node_up(p, *i)
                    && self.consensus[p].replicas[*i].role() == Role::Leader
            })
            .max_by_key(|i| self.consensus[p].replicas[*i].current_ballot())
    }

    /// The *serving* leader of partition `p`: the live leader, provided it
    /// structurally reaches a majority of the ensemble (itself included).
    /// A leader stranded on the minority side of a cut cannot confirm its
    /// lease and is not allowed to serve — the read-index check that makes
    /// minority-side refusals typed instead of stale.
    pub(crate) fn consensus_serving_leader(&self, p: usize) -> Option<usize> {
        let leader = self.consensus_live_leader(p)?;
        let leader_site = self.consensus_node_site(p, leader);
        let n = self.consensus[p].members.len();
        let reach = (0..n)
            .filter(|j| {
                self.consensus_node_up(p, *j)
                    && self
                        .net
                        .reachable(leader_site, self.consensus_node_site(p, *j))
            })
            .count();
        (reach >= self.consensus[p].majority()).then_some(leader)
    }

    /// Up ensemble members of partition `p` reachable from `from`
    /// (the "acks available" figure a typed refusal reports).
    pub(crate) fn consensus_reachable_from(&self, p: usize, from: SiteId) -> usize {
        (0..self.consensus[p].members.len())
            .filter(|j| {
                self.consensus_node_up(p, *j)
                    && self.net.reachable(from, self.consensus_node_site(p, *j))
            })
            .count()
    }

    /// Submit a command at node `node` of `partition`'s ensemble and route
    /// whatever the protocol wants sent. `trace` (0 = untraced) rides every
    /// protocol message the submission fans out, so a traced client write
    /// can be followed propose → chosen → apply across the ensemble.
    pub(crate) fn consensus_submit_via(
        &mut self,
        t: SimTime,
        partition: PartitionId,
        node: usize,
        cmd: Command,
        trace: u64,
    ) {
        if trace != 0 && self.tracer.enabled() {
            self.tracer.instant(
                trace,
                0,
                "consensus.propose",
                t,
                Some(format!("p{} via n{node} cmd={}", partition.0, cmd.id.0)),
            );
        }
        let outs = self.consensus[partition.index()].replicas[node].submit(t, cmd);
        self.route_consensus(t, partition, node, outs, trace);
    }

    /// `ConsensusTick`: run every up replica's protocol timers, apply what
    /// got chosen, and re-arm the partition's timer.
    pub(crate) fn consensus_tick(&mut self, t: SimTime, partition: PartitionId) {
        let p = partition.index();
        for i in 0..self.consensus[p].members.len() {
            if !self.consensus_node_up(p, i) {
                continue;
            }
            let outs = self.consensus[p].replicas[i].tick(t);
            self.route_consensus(t, partition, i, outs, 0);
        }
        self.consensus_apply(t, partition);
        self.note_consensus_leadership(p);
        self.schedule_event(
            t + CONSENSUS_TICK_INTERVAL,
            UdrEvent::ConsensusTick { partition },
        );
    }

    /// `ConsensusDeliver`: hand a protocol message to its destination
    /// replica. The message may arrive after a cut started or the node
    /// crashed; then it is simply lost (retries and catch-up re-cover it).
    /// `trace` is the context the sender stamped (0 = untraced); responses
    /// the handler generates inherit it, so the causal chain survives
    /// multi-hop rounds.
    pub(crate) fn consensus_deliver(
        &mut self,
        t: SimTime,
        partition: PartitionId,
        to: usize,
        from: usize,
        msg: Message,
        trace: u64,
    ) {
        let p = partition.index();
        if !self.consensus_node_up(p, to) {
            return;
        }
        let from_site = self.consensus_node_site(p, from);
        let to_site = self.consensus_node_site(p, to);
        if !self.net.reachable(from_site, to_site) {
            return;
        }
        if trace != 0 && self.tracer.enabled() {
            self.tracer.instant(
                trace,
                0,
                "consensus.msg",
                t,
                Some(format!("p{} n{from}→n{to}", partition.0)),
            );
        }
        let applied_before = self.consensus[p].applied.iter().sum::<usize>();
        let outs = self.consensus[p].replicas[to].handle(t, NodeId(from as u32), msg);
        self.route_consensus(t, partition, to, outs, trace);
        self.consensus_apply(t, partition);
        if trace != 0 && self.tracer.enabled() {
            let applied_after = self.consensus[p].applied.iter().sum::<usize>();
            if applied_after > applied_before {
                self.tracer.instant(
                    trace,
                    0,
                    "consensus.apply",
                    t,
                    Some(format!(
                        "p{} n={}",
                        partition.0,
                        applied_after - applied_before
                    )),
                );
            }
        }
        self.note_consensus_leadership(p);
    }

    /// Route a replica's outbound messages over the simulated network,
    /// stamping each with the originating `trace` context.
    fn route_consensus(
        &mut self,
        t: SimTime,
        partition: PartitionId,
        from: usize,
        outs: Vec<udr_consensus::replica::Outbound>,
        trace: u64,
    ) {
        use udr_consensus::replica::Outbound;
        for out in outs {
            match out {
                Outbound::To(dest, msg) => {
                    self.consensus_send(t, partition, from, dest.0 as usize, msg, trace);
                }
                Outbound::Broadcast(msg) => {
                    for j in 0..self.consensus[partition.index()].members.len() {
                        if j != from {
                            self.consensus_send(t, partition, from, j, msg.clone(), trace);
                        }
                    }
                }
            }
        }
    }

    /// Sample the path and schedule one protocol message delivery (or
    /// drop it: a cut or link loss loses the datagram, as for replication
    /// deliveries).
    fn consensus_send(
        &mut self,
        t: SimTime,
        partition: PartitionId,
        from: usize,
        to: usize,
        msg: Message,
        trace: u64,
    ) {
        let p = partition.index();
        if !self.consensus_node_up(p, to) {
            return;
        }
        let from_site = self.consensus_node_site(p, from);
        let to_site = self.consensus_node_site(p, to);
        if let Some(delay) = self.net.send(from_site, to_site, &mut self.rng).delay() {
            self.metrics.consensus_messages += 1;
            self.schedule_event(
                t + delay,
                UdrEvent::ConsensusDeliver {
                    partition,
                    to,
                    from,
                    msg: Box::new(msg),
                    trace,
                },
            );
        }
    }

    /// Apply newly chosen commands on every up replica: roll each node's
    /// engine forward to its log's effective committed prefix. `Write`
    /// entries become ordinary commit records (the LSN is the node's own
    /// next position — every node applies the identical `Write`
    /// subsequence, so the engines stay byte-identical); `Reconfig`
    /// entries execute the migration cutover exactly once.
    pub(crate) fn consensus_apply(&mut self, t: SimTime, partition: PartitionId) {
        let p = partition.index();
        for i in 0..self.consensus[p].members.len() {
            if !self.consensus_node_up(p, i) {
                continue;
            }
            loop {
                let next = {
                    let g = &self.consensus[p];
                    g.replicas[i]
                        .log()
                        .iter_effective()
                        .nth(g.applied[i])
                        .map(|(_, cmd)| cmd.clone())
                };
                let Some(cmd) = next else { break };
                // Advance the cursor *before* applying: a reconfig apply
                // re-seeds membership state and must not be clobbered by
                // a post-increment.
                self.consensus[p].applied[i] += 1;
                match cmd.payload {
                    Payload::Noop => {}
                    Payload::Write { uid, entry } => {
                        let se = self.consensus[p].members[i];
                        let lsn = self.ses[se.index()]
                            .last_lsn(partition)
                            .unwrap_or(Lsn::ZERO)
                            .next();
                        let written_by = self.consensus[p].members[0];
                        let record = CommitRecord {
                            lsn,
                            committed_at: t,
                            written_by,
                            changes: vec![Change { uid, entry }],
                        };
                        let _ = self.ses[se.index()].apply_replicated(partition, &record);
                    }
                    Payload::Reconfig { migration } => {
                        self.consensus_reconfig_applied(t, migration);
                    }
                }
            }
            let viols = self.consensus[p].replicas[i].take_violations();
            self.consensus_violations
                .extend(viols.into_iter().map(|v| format!("partition {p}: {v}")));
        }
    }

    /// Track serving-leader hand-offs (the consensus notion of failover).
    fn note_consensus_leadership(&mut self, p: usize) {
        let leader = self.consensus_serving_leader(p);
        if let Some(l) = leader {
            let g = &mut self.consensus[p];
            if g.last_leader != Some(l) {
                if g.last_leader.is_some() {
                    g.leader_changes += 1;
                }
                g.last_leader = Some(l);
            }
        }
    }

    /// Elections started across all ensembles (proof a campaign actually
    /// exercised leader failover).
    pub fn consensus_elections(&self) -> u64 {
        self.consensus
            .iter()
            .flat_map(|g| g.replicas.iter())
            .map(|r| r.elections_started)
            .sum()
    }

    /// Serving-leader hand-offs observed across all partitions.
    pub fn consensus_leader_changes(&self) -> u64 {
        self.consensus.iter().map(|g| g.leader_changes).sum()
    }

    /// Paxos safety violations observed (always empty in a correct run —
    /// fault campaigns assert this outright).
    pub fn consensus_violations(&self) -> &[String] {
        &self.consensus_violations
    }

    /// Total protocol messages each ensemble exchanged, by partition
    /// (write-amplification visibility for experiments).
    pub fn consensus_committed_slots(&self) -> Vec<u64> {
        self.consensus
            .iter()
            .map(|g| {
                g.replicas
                    .iter()
                    .map(|r| r.log().committed().0)
                    .max()
                    .unwrap_or(0)
            })
            .collect()
    }

    /// The effective `Write` post-images in one partition's final chosen
    /// log, in commit order, read from the replica with the deepest
    /// committed watermark. Campaign oracles check acknowledged writes by
    /// value against this: an acked write is durable iff its post-image
    /// appears here, and appears exactly once.
    pub fn consensus_write_history(
        &self,
        partition: PartitionId,
    ) -> Vec<(SubscriberUid, Option<Entry>)> {
        let g = &self.consensus[partition.index()];
        let best = g
            .replicas
            .iter()
            .max_by_key(|r| r.log().committed())
            .expect("ensembles are never empty");
        best.log()
            .iter_effective()
            .filter_map(|(_, cmd)| match &cmd.payload {
                Payload::Write { uid, entry } => Some((*uid, entry.clone())),
                _ => None,
            })
            .collect()
    }

    /// Whether every ensemble has fully re-converged: a serving leader
    /// exists, all up nodes agree on the committed watermark, every up
    /// node has applied its full effective prefix, and the leader has
    /// nothing in flight. The consensus-mode arm of
    /// [`Udr::replication_settled`].
    pub(crate) fn consensus_settled(&self) -> bool {
        self.consensus.iter().enumerate().all(|(p, g)| {
            let Some(l) = self.consensus_serving_leader(p) else {
                return false;
            };
            let leader = &g.replicas[l];
            if leader.pending_len() != 0 || !leader.read_index_ready() {
                return false;
            }
            let watermark = leader.log().committed();
            (0..g.members.len())
                .filter(|i| self.consensus_node_up(p, *i))
                .all(|i| {
                    g.replicas[i].log().committed() == watermark
                        && g.applied[i] == g.replicas[i].log().iter_effective().count()
                })
        })
    }

    /// Consensus-mode replica lag: the widest committed-watermark spread
    /// between up members of any ensemble.
    pub(crate) fn consensus_replica_lag(&self) -> u64 {
        let mut max = 0u64;
        for (p, g) in self.consensus.iter().enumerate() {
            let marks: Vec<u64> = (0..g.members.len())
                .filter(|i| self.consensus_node_up(p, *i))
                .map(|i| g.replicas[i].log().committed().0)
                .collect();
            if let (Some(lo), Some(hi)) = (marks.iter().min(), marks.iter().max()) {
                max = max.max(hi - lo);
            }
        }
        max
    }

    /// Restore bookkeeping for a recovered SE under consensus: the chosen
    /// log survived the crash (durable acceptor state), the engine came
    /// back at its recovered disk position — reset the apply cursor there
    /// and replay the rest of the committed prefix.
    pub(crate) fn consensus_restore(
        &mut self,
        t: SimTime,
        se: SeId,
        recovered: &[(PartitionId, Lsn)],
    ) {
        let recovered: std::collections::HashMap<PartitionId, Lsn> =
            recovered.iter().copied().collect();
        for p in 0..self.consensus.len() {
            let Some(i) = self.consensus[p].members.iter().position(|m| *m == se) else {
                continue;
            };
            let pid = PartitionId(p as u32);
            let lsn = recovered.get(&pid).copied();
            if lsn.is_none() {
                // Nothing on disk (in-RAM durability): rejoin empty; the
                // log replay below rebuilds the full committed prefix.
                let role = if self.groups[p].master() == se {
                    ReplicaRole::Master
                } else {
                    ReplicaRole::Slave
                };
                self.ses[se.index()].add_replica(pid, role);
            }
            let writes = lsn.unwrap_or(Lsn::ZERO).raw();
            self.consensus[p].applied[i] =
                cursor_for_writes(self.consensus[p].replicas[i].log(), writes);
            self.consensus_apply(t, pid);
        }
    }

    /// Drive active migrations under consensus (runs on each
    /// `CatchupTick` instead of the legacy channel catch-up): once the
    /// seed transfer is done, the cutover is a [`Payload::Reconfig`]
    /// command submitted through the serving leader — exactly-once and
    /// totally ordered against the write stream, no write-freeze window.
    pub(crate) fn run_consensus_migrations(&mut self, t: SimTime) {
        for id in 0..self.migrations.len() {
            let (plan, state, started) = {
                let m = &self.migrations[id];
                (m.plan, m.state, m.channel.is_some())
            };
            if !state.is_active() || !started {
                continue;
            }
            let p = plan.partition.index();
            let valid = p < self.consensus.len()
                && self.consensus[p].members.contains(&plan.from)
                && !self.consensus[p].members.contains(&plan.to)
                && plan.to.index() < self.ses.len()
                && self.ses[plan.from.index()].is_up()
                && self.ses[plan.to.index()].is_up();
            if !valid {
                self.migration_abort(t, id as u64);
                continue;
            }
            match state {
                MigrationState::Seeding { ready_at } if t < ready_at => {}
                MigrationState::Seeding { .. } => {
                    // Seed transfer done: replicate the cutover decision.
                    // No serving leader right now (election in progress)
                    // simply retries on the next tick.
                    if let Some(l) = self.consensus_serving_leader(p) {
                        let cmd_id = self.consensus_alloc_cmd_id();
                        self.consensus_submit_via(
                            t,
                            plan.partition,
                            l,
                            Command::reconfig(cmd_id, id as u64),
                            0,
                        );
                        self.migrations[id].state = MigrationState::CatchingUp;
                    }
                }
                // CatchingUp: the reconfig is in flight through the log;
                // `consensus_reconfig_applied` completes (or aborts) it.
                _ => {}
            }
        }
    }

    /// A chosen [`Payload::Reconfig`] executes here, once per migration:
    /// the first replica to apply it performs the cutover (swap the
    /// member in the ensemble and the replication group, carry the
    /// retiring copy's exact storage state to the target, bump the
    /// shard-map epoch); every later apply finds the migration already in
    /// a terminal state and no-ops — the exactly-once guarantee.
    pub(crate) fn consensus_reconfig_applied(&mut self, t: SimTime, migration: u64) {
        let Some(m) = self.migrations.get(migration as usize) else {
            return;
        };
        let (plan, state) = (m.plan, m.state);
        if !state.is_active() {
            return; // already cut over (or aborted): exactly-once no-op
        }
        let p = plan.partition.index();
        let Some(i) = self.consensus[p]
            .members
            .iter()
            .position(|s| *s == plan.from)
        else {
            self.migration_abort(t, migration);
            return;
        };
        let feasible = !self.consensus[p].members.contains(&plan.to)
            && plan.to.index() < self.ses.len()
            && self.ses[plan.to.index()].is_up()
            && self.ses[plan.from.index()].is_up();
        if !feasible {
            self.migration_abort(t, migration);
            return;
        }
        let was_master_move = self.groups[p].master() == plan.from;
        // The replica process migrates with its replicated state: the
        // target takes the retiring copy's engine verbatim (exactly the
        // node's applied prefix — LSN continuity, no cursor rewind).
        let Ok(engine) = self.ses[plan.from.index()].engine(plan.partition) else {
            self.migration_abort(t, migration);
            return;
        };
        let snapshot = engine.snapshot();
        let role = if was_master_move {
            ReplicaRole::Master
        } else {
            ReplicaRole::Slave
        };
        self.ses[plan.to.index()].seed_replica(plan.partition, role, snapshot);
        self.groups[p]
            .replace_member(plan.from, plan.to)
            .expect("cutover swap validated");
        self.consensus[p].members[i] = plan.to;
        let _ = self.ses[plan.from.index()].release_partition(plan.partition);
        self.sync_shard_map(plan.partition);
        self.rebuild_placement();
        if plan.reason == crate::rebalance::MoveReason::HotspotSplit {
            self.ops_per_partition[p] = 0;
        }
        let task = &mut self.migrations[migration as usize];
        task.state = MigrationState::Done;
        task.channel = None;
        self.metrics.migrations_completed += 1;
        self.metrics.consensus_commits += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(id: u64) -> Command {
        Command::write(CmdId(id), udr_model::ids::SubscriberUid(id), None)
    }

    #[test]
    fn cursor_for_writes_lands_after_the_nth_write() {
        let mut log = ChosenLog::default();
        // slot1: noop, slot2: write, slot3: reconfig, slot4: write
        log.record(udr_consensus::Slot(1), Command::noop()).unwrap();
        log.record(udr_consensus::Slot(2), write(1)).unwrap();
        log.record(udr_consensus::Slot(3), Command::reconfig(CmdId(9), 0))
            .unwrap();
        log.record(udr_consensus::Slot(4), write(2)).unwrap();
        // Effective entries: [write1, reconfig, write2].
        assert_eq!(cursor_for_writes(&log, 0), 0);
        assert_eq!(cursor_for_writes(&log, 1), 1); // reconfig re-applies (no-op)
        assert_eq!(cursor_for_writes(&log, 2), 3);
        // More writes on disk than the log exposes cannot happen (the log
        // is durable); the cursor saturates at the effective length.
        assert_eq!(cursor_for_writes(&log, 7), 3);
    }
}
