//! 3GPP network procedures as LDAP operation sequences (§3.5: typical
//! procedures cost 1–3 operations, IMS procedures 5–6).
//!
//! An application front-end executes the operations of a procedure
//! sequentially against its local PoA; the procedure fails fast on the
//! first failed operation (the network procedure would be aborted).

use udr_ldap::{Dn, LdapOp};
use udr_model::attrs::{AttrId, AttrMod, AttrValue};
use udr_model::error::UdrError;
use udr_model::identity::{Identity, IdentitySet};
use udr_model::ids::SiteId;
use udr_model::procedures::ProcedureKind;
use udr_model::session::SessionToken;
use udr_model::time::{SimDuration, SimTime};

use crate::ops::OpRequest;
use crate::udr::Udr;

/// Result of one network procedure run.
#[derive(Debug, Clone)]
pub struct ProcedureOutcome {
    /// The procedure executed.
    pub kind: ProcedureKind,
    /// Whether every operation succeeded.
    pub success: bool,
    /// Sum of operation latencies (the procedure's UDR contribution).
    pub latency: SimDuration,
    /// Operations that succeeded.
    pub ops_ok: u32,
    /// Operations that failed (0 or 1 — procedures fail fast).
    pub ops_failed: u32,
    /// The first failure, if any.
    pub failure: Option<UdrError>,
}

fn search(identity: Identity, attrs: Vec<AttrId>) -> LdapOp {
    LdapOp::Search {
        base: Dn::for_identity(identity),
        attrs,
    }
}

fn modify(identity: Identity, mods: Vec<AttrMod>) -> LdapOp {
    LdapOp::Modify {
        dn: Dn::for_identity(identity),
        mods,
    }
}

/// Build the LDAP operation sequence of a procedure for a subscriber.
///
/// The `(reads, writes)` counts match [`ProcedureKind::ldap_ops`] exactly;
/// a unit test enforces it.
pub fn procedure_ops(kind: ProcedureKind, ids: &IdentitySet, fe_site: SiteId) -> Vec<LdapOp> {
    let imsi: Identity = ids.imsi.into();
    let msisdn: Identity = ids.msisdn.into();
    let ims_id: Identity = ids.impus.first().map(|i| (*i).into()).unwrap_or(imsi);
    let vlr = format!("vlr-{fe_site}");
    let mme = format!("mme-{fe_site}");
    let scscf = format!("scscf-{fe_site}");

    match kind {
        ProcedureKind::Attach => vec![
            search(imsi, vec![AttrId::AuthKi, AttrId::AuthAmf, AttrId::AuthSqn]),
            search(
                imsi,
                vec![
                    AttrId::SubscriberStatus,
                    AttrId::OdbMask,
                    AttrId::Teleservices,
                ],
            ),
            modify(
                imsi,
                vec![
                    AttrMod::Set(AttrId::VlrAddress, AttrValue::Str(vlr)),
                    AttrMod::Set(AttrId::MmeAddress, AttrValue::Str(mme)),
                ],
            ),
        ],
        ProcedureKind::LocationUpdate => vec![
            search(imsi, vec![AttrId::SubscriberStatus]),
            modify(
                imsi,
                vec![AttrMod::Set(AttrId::VlrAddress, AttrValue::Str(vlr))],
            ),
        ],
        ProcedureKind::CallSetupMt => vec![
            search(msisdn, vec![AttrId::VlrAddress, AttrId::Imsi]),
            search(imsi, vec![AttrId::CallBarring, AttrId::CallForwarding]),
        ],
        ProcedureKind::CallSetupMo => {
            vec![search(imsi, vec![AttrId::CallBarring, AttrId::OdbMask])]
        }
        ProcedureKind::SmsDelivery => vec![search(msisdn, vec![AttrId::VlrAddress])],
        ProcedureKind::ImsRegistration => vec![
            search(ims_id, vec![AttrId::ImpuList, AttrId::Impi]),
            search(imsi, vec![AttrId::AuthKi, AttrId::AuthSqn]),
            search(imsi, vec![AttrId::SubscriberStatus]),
            search(ims_id, vec![AttrId::ScscfName]),
            modify(
                ims_id,
                vec![AttrMod::Set(
                    AttrId::ImsRegState,
                    AttrValue::Str("registered".into()),
                )],
            ),
            modify(
                ims_id,
                vec![AttrMod::Set(AttrId::ScscfName, AttrValue::Str(scscf))],
            ),
        ],
        ProcedureKind::ImsSession => vec![
            search(ims_id, vec![AttrId::ImsRegState]),
            search(ims_id, vec![AttrId::ScscfName]),
            search(imsi, vec![AttrId::CallBarring, AttrId::OdbMask]),
            search(imsi, vec![AttrId::ChargingProfile]),
            search(ims_id, vec![AttrId::ImpuList]),
        ],
        ProcedureKind::Detach => {
            vec![modify(imsi, vec![AttrMod::Delete(AttrId::VlrAddress)])]
        }
    }
}

impl Udr {
    /// Run one network procedure for a subscriber from an application
    /// front-end at `fe_site`, starting at `now`.
    #[deprecated(note = "build an OpRequest::procedure and call Udr::execute")]
    pub fn run_procedure(
        &mut self,
        kind: ProcedureKind,
        ids: &IdentitySet,
        fe_site: SiteId,
        now: SimTime,
    ) -> ProcedureOutcome {
        self.execute(OpRequest::procedure(kind, ids).site(fe_site).at(now))
            .into_procedure()
    }

    /// `run_procedure` for a subscriber whose front-end signalling
    /// maintains a [`SessionToken`].
    #[deprecated(note = "build an OpRequest::procedure and call Udr::execute")]
    pub fn run_procedure_with_session(
        &mut self,
        kind: ProcedureKind,
        ids: &IdentitySet,
        fe_site: SiteId,
        now: SimTime,
        session: Option<&mut SessionToken>,
    ) -> ProcedureOutcome {
        let mut req = OpRequest::procedure(kind, ids).site(fe_site).at(now);
        if let Some(session) = session {
            req = req.session(session);
        }
        self.execute(req).into_procedure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::identity::{Impi, Impu, Imsi, Msisdn};

    fn ids() -> IdentitySet {
        IdentitySet {
            imsi: Imsi::new("214011234567890").unwrap(),
            msisdn: Msisdn::new("34600123456").unwrap(),
            impus: vec![Impu::new("sip:alice@ims.example.com").unwrap()],
            impi: Some(Impi::new("alice@ims.example.com").unwrap()),
        }
    }

    #[test]
    fn op_counts_match_declared_costs() {
        // The sequences must agree with ProcedureKind::ldap_ops — the
        // §3.5 "1–3 ops, IMS 5–6" accounting.
        for kind in ProcedureKind::ALL {
            let ops = procedure_ops(kind, &ids(), SiteId(0));
            let reads = ops.iter().filter(|o| !o.is_write()).count() as u32;
            let writes = ops.iter().filter(|o| o.is_write()).count() as u32;
            assert_eq!((reads, writes), kind.ldap_ops(), "{kind}");
        }
    }

    #[test]
    fn ims_procedures_address_ims_identities() {
        let ops = procedure_ops(ProcedureKind::ImsRegistration, &ids(), SiteId(1));
        let impu_ops = ops
            .iter()
            .filter(|o| o.dn().identity().as_str().starts_with("sip:"))
            .count();
        assert!(impu_ops >= 3, "IMS registration should address IMPUs");
    }

    #[test]
    fn mt_call_uses_msisdn_index() {
        let ops = procedure_ops(ProcedureKind::CallSetupMt, &ids(), SiteId(0));
        assert_eq!(ops[0].dn().identity().as_str(), "34600123456");
    }

    #[test]
    fn subscriber_without_ims_falls_back_to_imsi() {
        let mut plain = ids();
        plain.impus.clear();
        plain.impi = None;
        let ops = procedure_ops(ProcedureKind::ImsSession, &plain, SiteId(0));
        assert!(ops
            .iter()
            .all(|o| !o.dn().identity().as_str().starts_with("sip:")));
    }
}
