//! Deployment configuration of a UDR NF: the topology knobs of §2.3/§3.4
//! on top of the FRASH behaviour knobs from `udr-model`.

use udr_model::config::FrashConfig;
use udr_model::error::{UdrError, UdrResult};
use udr_model::tenant::TenantDirectory;
use udr_qos::QosConfig;
use udr_replication::ShipBatchConfig;
use udr_sim::PumpConfig;
use udr_trace::TraceConfig;

/// Full configuration of one simulated UDR deployment.
#[derive(Debug, Clone)]
pub struct UdrConfig {
    /// Behavioural knobs (§3 design decisions).
    pub frash: FrashConfig,
    /// QoS admission control and overload protection (disabled by
    /// default — the front door admits everything, as the paper's first
    /// realization does).
    pub qos: QosConfig,
    /// Geographic sites (regions); FE populations and home regions map 1:1
    /// onto sites.
    pub sites: u32,
    /// Blade clusters per site (each with a PoA, LDAP servers and a
    /// data-location stage instance).
    pub clusters_per_site: u32,
    /// Storage elements per cluster (§3.5 caps this at 16 per cluster).
    pub ses_per_cluster: u32,
    /// LDAP server processes per cluster (§3.5 caps this at 32).
    pub ldap_servers_per_cluster: u32,
    /// Subscriber-data partitions. Defaults to one per SE (each SE masters
    /// exactly one partition, the Figure 2 layout).
    pub partitions: u32,
    /// De-rated LDAP server throughput for simulation (ops/s). The paper's
    /// blades do 10⁶; simulations usually run smaller populations and keep
    /// the ratio meaningful rather than the absolute.
    pub ldap_ops_per_sec: f64,
    /// Capacity of cached-locator stages (entries), when used.
    pub dls_cache_capacity: usize,
    /// Replication log-shipping coalescing. Defaults to per-record (one
    /// delivery per commit, the paper's baseline); the scale campaign
    /// enables batching to amortise the per-message cost.
    pub ship_batch: ShipBatchConfig,
    /// Event-pump sharding: lane-local queues per partition group plus a
    /// cross-lane queue. Defaults to the legacy single-lane shape; any
    /// lane count replays the identical merged timeline (the pump's
    /// deterministic-merge contract), so this is a throughput knob, not
    /// a semantics knob.
    pub pump: PumpConfig,
    /// Structured tracing (flight recorder + slow-op exemplars). Disabled
    /// by default; enabling it must never change simulated behaviour,
    /// only record it.
    pub trace: TraceConfig,
    /// Operators sharing this UDR: per-tenant capability masks and rate
    /// budgets. Defaults to one tenant entitled to everything — the
    /// single-operator deployment every earlier experiment models.
    pub tenants: TenantDirectory,
    /// RNG seed: same seed ⇒ identical run.
    pub seed: u64,
}

impl Default for UdrConfig {
    fn default() -> Self {
        UdrConfig {
            frash: FrashConfig::default(),
            qos: QosConfig::disabled(),
            sites: 3,
            clusters_per_site: 1,
            ses_per_cluster: 1,
            ldap_servers_per_cluster: 2,
            partitions: 3,
            ldap_ops_per_sec: 1_000_000.0,
            dls_cache_capacity: 65_536,
            ship_batch: ShipBatchConfig::per_record(),
            pump: PumpConfig::single(),
            trace: TraceConfig::disabled(),
            tenants: TenantDirectory::single_tenant(),
            seed: 0xC0FFEE,
        }
    }
}

impl UdrConfig {
    /// Total clusters.
    pub fn total_clusters(&self) -> u32 {
        self.sites * self.clusters_per_site
    }

    /// Total storage elements.
    pub fn total_ses(&self) -> u32 {
        self.total_clusters() * self.ses_per_cluster
    }

    /// Total LDAP servers.
    pub fn total_ldap_servers(&self) -> u32 {
        self.total_clusters() * self.ldap_servers_per_cluster
    }

    /// Validate the deployment shape.
    pub fn validate(&self) -> UdrResult<()> {
        self.frash.validate()?;
        self.qos.validate()?;
        self.tenants.validate()?;
        if self.sites == 0 {
            return Err(UdrError::Config("at least one site required".into()));
        }
        if self.clusters_per_site == 0 || self.ses_per_cluster == 0 {
            return Err(UdrError::Config(
                "clusters and SEs per cluster must be ≥ 1".into(),
            ));
        }
        if self.ldap_servers_per_cluster == 0 {
            return Err(UdrError::Config("each cluster needs an LDAP server".into()));
        }
        if self.partitions == 0 {
            return Err(UdrError::Config("at least one partition required".into()));
        }
        if self.partitions > self.total_ses() {
            return Err(UdrError::Config(format!(
                "{} partitions cannot each have a master among {} SEs",
                self.partitions,
                self.total_ses()
            )));
        }
        let rf = u32::from(self.frash.replication_factor);
        if rf > self.total_ses() {
            return Err(UdrError::Config(format!(
                "replication factor {rf} exceeds {} SEs",
                self.total_ses()
            )));
        }
        if self.ldap_ops_per_sec <= 0.0 {
            return Err(UdrError::Config("ldap_ops_per_sec must be positive".into()));
        }
        if self.pump.lanes == 0 {
            return Err(UdrError::Config("the pump needs at least one lane".into()));
        }
        Ok(())
    }

    /// The paper's Figure 2 example: three sites, one cluster each, one SE
    /// per cluster, three partitions, RF 3 — every SE masters one partition
    /// and holds secondaries of the other two.
    pub fn figure2() -> Self {
        UdrConfig::default()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // knob-by-knob mutation reads clearer here
mod tests {
    use super::*;
    use udr_model::config::ReplicationMode;

    #[test]
    fn default_is_valid_figure2() {
        let c = UdrConfig::figure2();
        assert!(c.validate().is_ok());
        assert_eq!(c.total_ses(), 3);
        assert_eq!(c.total_clusters(), 3);
        assert_eq!(c.total_ldap_servers(), 6);
    }

    #[test]
    fn rejects_degenerate_shapes() {
        let mut c = UdrConfig::default();
        c.sites = 0;
        assert!(c.validate().is_err());

        let mut c = UdrConfig::default();
        c.partitions = 0;
        assert!(c.validate().is_err());

        let mut c = UdrConfig::default();
        c.partitions = 99;
        assert!(c.validate().is_err());

        let mut c = UdrConfig::default();
        c.frash.replication_factor = 200;
        assert!(c.validate().is_err());

        let mut c = UdrConfig::default();
        c.ldap_ops_per_sec = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn qos_knobs_are_validated_when_enabled() {
        let mut c = UdrConfig::default();
        c.qos = udr_qos::QosConfig::protective();
        assert!(c.validate().is_ok());
        c.qos.shed_interval = udr_model::time::SimDuration::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tenant_directory_is_validated() {
        let mut c = UdrConfig::default();
        c.tenants = udr_model::tenant::TenantDirectory::empty();
        assert!(c.validate().is_err());
    }

    #[test]
    fn consensus_must_match_rf() {
        let mut c = UdrConfig::default();
        c.frash.replication = ReplicationMode::Consensus { n: 3 };
        c.frash.replication_factor = 3;
        assert!(c.validate().is_ok());
        c.frash.replication_factor = 2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn quorum_must_match_rf() {
        let mut c = UdrConfig::default();
        c.frash.replication = ReplicationMode::Quorum { n: 3, w: 2, r: 2 };
        c.frash.replication_factor = 3;
        assert!(c.validate().is_ok());
        c.frash.replication_factor = 2;
        assert!(c.validate().is_err());
    }
}
