//! Online repartitioning: planning live partition moves over the
//! epoch-versioned shard map.
//!
//! §3.4.2 measures what *adding a blade cluster* costs in availability;
//! this module is the analogous machinery for *moving data*. A
//! [`Rebalancer`] turns a topology intent — scale out onto a fresh SE,
//! drain a retiring/failed SE, relocate a hotspot — into
//! [`MigrationPlan`]s, each a single-partition move executed online by
//! the [`Udr`] event pump: snapshot reseed of the target,
//! asynchronous log catch-up while traffic flows, a brief write-freeze
//! for the final hand-off, and an atomic cutover that bumps the shard-map
//! epoch. Traffic routed under the old epoch bounces once off the retired
//! owner and refreshes (see [`LocationStage`](crate::pipeline::LocationStage)).

use udr_model::ids::{PartitionId, SeId};

use crate::udr::Udr;

/// Why a partition is being moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveReason {
    /// Rebalancing onto a freshly added SE.
    ScaleOut,
    /// Emptying a retiring (or failing) SE so it can be decommissioned.
    Drain,
    /// Relocating the hottest partition away from a contended SE.
    HotspotSplit,
}

impl std::fmt::Display for MoveReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MoveReason::ScaleOut => "scale-out",
            MoveReason::Drain => "drain",
            MoveReason::HotspotSplit => "hotspot-split",
        })
    }
}

/// One planned partition move: relocate the copy of `partition` hosted on
/// `from` to `to`, preserving the rest of the replica set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The partition whose copy moves.
    pub partition: PartitionId,
    /// The SE giving the copy up.
    pub from: SeId,
    /// The SE receiving the copy.
    pub to: SeId,
    /// The intent behind the move.
    pub reason: MoveReason,
}

/// Plans partition moves against a deployment's current shard map. The
/// planner is pure: it never mutates the deployment — execution happens
/// by handing each plan to [`Udr::start_migration`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Rebalancer;

impl Rebalancer {
    /// Plan the moves that rebalance replica slots onto `new_se` (a
    /// freshly added, empty SE): copies migrate from the most loaded SEs
    /// until the newcomer carries its fair share. Slave copies are
    /// preferred (their moves need no write-freeze); master copies move
    /// only when a donor has nothing else to give.
    pub fn plan_scale_out(udr: &Udr, new_se: SeId) -> Vec<MigrationPlan> {
        let n = udr.se_count();
        let mut counts = udr.shard_map().replicas_per_se(n);
        let total: usize = counts.iter().sum();
        let fair_share = total.div_ceil(n);
        let mut plans = Vec::new();
        let mut taken: Vec<PartitionId> = udr.shard_map().partitions_on(new_se);

        while counts[new_se.index()] < fair_share {
            // Most loaded live donor with a movable copy.
            let Some((donor, partition)) = Self::pick_donation(udr, &counts, new_se, &taken) else {
                break;
            };
            plans.push(MigrationPlan {
                partition,
                from: donor,
                to: new_se,
                reason: MoveReason::ScaleOut,
            });
            counts[donor.index()] -= 1;
            counts[new_se.index()] += 1;
            taken.push(partition);
        }
        plans
    }

    /// The best `(donor, partition)` donation given current slot counts:
    /// donors ordered by load, partitions on a donor ordered slaves-first.
    fn pick_donation(
        udr: &Udr,
        counts: &[usize],
        to: SeId,
        taken: &[PartitionId],
    ) -> Option<(SeId, PartitionId)> {
        let mut donors: Vec<SeId> = (0..udr.se_count() as u32).map(SeId).collect();
        donors.retain(|se| *se != to && udr.se(*se).is_up() && counts[se.index()] > 0);
        // Heaviest first; ties break on lowest id for determinism.
        donors.sort_by_key(|se| (std::cmp::Reverse(counts[se.index()]), *se));
        for donor in donors {
            let mut candidates = udr.shard_map().partitions_on(donor);
            candidates.retain(|p| !taken.contains(p));
            // Slave copies first: no freeze window.
            candidates.sort_by_key(|p| (udr.shard_map().master_of(*p) == Some(donor), *p));
            if let Some(p) = candidates.first() {
                return Some((donor, *p));
            }
        }
        None
    }

    /// Plan the drain of `se`: every copy it hosts moves to the least
    /// loaded live SE that is not already in the partition's replica set.
    /// When the plans complete, `se` hosts nothing and can be retired.
    pub fn plan_drain(udr: &Udr, se: SeId) -> Vec<MigrationPlan> {
        let n = udr.se_count();
        let mut counts = udr.shard_map().replicas_per_se(n);
        let mut plans = Vec::new();
        for partition in udr.shard_map().partitions_on(se) {
            let members = udr
                .shard_map()
                .members_of(partition)
                .unwrap_or(&[])
                .to_vec();
            let target = (0..n as u32)
                .map(SeId)
                .filter(|t| *t != se && udr.se(*t).is_up() && !members.contains(t))
                .min_by_key(|t| (counts[t.index()], *t));
            if let Some(to) = target {
                plans.push(MigrationPlan {
                    partition,
                    from: se,
                    to,
                    reason: MoveReason::Drain,
                });
                counts[to.index()] += 1;
                counts[se.index()] -= 1;
            }
        }
        plans
    }

    /// Plan a hotspot relocation: take the partition with the highest
    /// observed operation load and move its *master* copy to the least
    /// loaded live SE outside its replica set, dedicating fresher capacity
    /// to the hot key range. Returns `None` when no load has been observed
    /// or no eligible target exists. A completed hotspot cutover resets
    /// the moved partition's load counter, so periodic re-planning chases
    /// current heat rather than relocating the same partition forever.
    pub fn plan_hotspot_split(udr: &Udr) -> Option<MigrationPlan> {
        let hot = udr
            .shard_map()
            .partitions()
            .max_by_key(|p| (udr.partition_ops(*p), std::cmp::Reverse(*p)))?;
        if udr.partition_ops(hot) == 0 {
            return None;
        }
        let from = udr.shard_map().master_of(hot)?;
        let members = udr.shard_map().members_of(hot)?.to_vec();
        let n = udr.se_count();
        let counts = udr.shard_map().replicas_per_se(n);
        let to = (0..n as u32)
            .map(SeId)
            .filter(|t| udr.se(*t).is_up() && !members.contains(t))
            .min_by_key(|t| (counts[t.index()], *t))?;
        Some(MigrationPlan {
            partition: hot,
            from,
            to,
            reason: MoveReason::HotspotSplit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UdrConfig;
    use udr_model::ids::SiteId;
    use udr_model::time::SimTime;

    fn system() -> Udr {
        // 3 sites × 1 cluster × 2 SEs = 6 SEs, 6 partitions, RF 2.
        let mut cfg = UdrConfig::figure2();
        cfg.ses_per_cluster = 2;
        cfg.partitions = 6;
        cfg.frash.replication_factor = 2;
        Udr::build(cfg).unwrap()
    }

    #[test]
    fn scale_out_plans_fill_the_newcomer() {
        let mut udr = system();
        let new_se = udr.add_se(SiteId(0), SimTime::ZERO);
        let plans = Rebalancer::plan_scale_out(&udr, new_se);
        // 12 slots over 7 SEs → fair share 2.
        assert_eq!(plans.len(), 2);
        let mut seen = Vec::new();
        for p in &plans {
            assert_eq!(p.to, new_se);
            assert_ne!(p.from, new_se);
            assert_eq!(p.reason, MoveReason::ScaleOut);
            assert!(!seen.contains(&p.partition), "duplicate partition move");
            seen.push(p.partition);
        }
    }

    #[test]
    fn drain_plans_empty_the_donor() {
        let udr = system();
        let victim = SeId(3);
        let hosted = udr.shard_map().partitions_on(victim);
        let plans = Rebalancer::plan_drain(&udr, victim);
        assert_eq!(plans.len(), hosted.len());
        for p in &plans {
            assert_eq!(p.from, victim);
            assert_ne!(p.to, victim);
            // Target is not already a member of the replica set.
            assert!(!udr
                .shard_map()
                .members_of(p.partition)
                .unwrap()
                .contains(&p.to));
        }
    }

    #[test]
    fn hotspot_split_targets_the_loaded_partition() {
        let mut udr = system();
        assert!(Rebalancer::plan_hotspot_split(&udr).is_none());
        udr.note_partition_ops_for_test(PartitionId(2), 1000);
        let plan = Rebalancer::plan_hotspot_split(&udr).unwrap();
        assert_eq!(plan.partition, PartitionId(2));
        assert_eq!(plan.reason, MoveReason::HotspotSplit);
        assert_eq!(Some(plan.from), udr.shard_map().master_of(PartitionId(2)));
    }
}
