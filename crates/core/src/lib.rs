//! # udr-core
//!
//! The assembled UDR network function of the paper: blade clusters with
//! PoAs, LDAP servers and data-location stages; geo-replicated Storage
//! Elements; the FE and PS client paths with their §3.3 routing policies;
//! fault handling (partitions, crashes, failover); multi-master
//! restoration; and the §3.5 capacity model.
//!
//! Every client operation runs through the explicit four-stage
//! [`pipeline`] (`AccessStage → LocationStage → ReplicationStage →
//! StorageStage`), with data location behind the
//! [`Locator`](udr_dls::Locator) trait and storage behind the
//! [`StorageBackend`](udr_storage::StorageBackend) trait. [`Udr`] itself
//! is the deployment container and event pump. The access stage fronts
//! everything with per-cluster QoS admission control
//! ([`udr_qos::AdmissionController`], disabled by default): priority-
//! class-aware load shedding before an operation costs server CPU, and
//! adaptive consistency degradation under sustained overload.
//!
//! Entry points:
//! * [`Udr::build`] a deployment from [`UdrConfig`];
//! * [`Udr::execute`] with an [`OpRequest`] — FE operations and network
//!   procedures (session, priority, tenant and framing as builder
//!   options); [`Udr::provision_subscriber`] — PS lifecycle flows;
//! * [`Udr::schedule_faults`] + [`Udr::advance_to`] — fault injection and
//!   virtual time;
//! * [`Udr::metrics`] — everything measured.

#![warn(missing_docs)]

pub mod capacity;
pub mod config;
pub mod consensus_mode;
pub mod metrics_agg;
pub mod ops;
pub mod pipeline;
pub mod procedures;
pub mod provisioning;
pub mod rebalance;
pub mod udr;

pub use capacity::CapacityModel;
pub use config::UdrConfig;
pub use metrics_agg::{StageLatencyMetrics, UdrMetrics};
pub use ops::{ExecOutcome, OpOutcome, OpPayload, OpRequest};
pub use pipeline::{
    AccessStage, LatencyBreakdown, LocationStage, PipelineCtx, ReplicationStage, StorageStage,
};
pub use procedures::{procedure_ops, ProcedureOutcome};
pub use provisioning::{BatchItem, BatchOptions, BatchReport, ProvisionOutcome, RetryPolicy};
pub use rebalance::{MigrationPlan, MoveReason, Rebalancer};
pub use udr::{Cluster, Udr, UdrEvent};
