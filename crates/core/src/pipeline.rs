//! The end-to-end operation pipeline: the paper's stack of separable
//! decisions (§3.2–§3.4) made explicit.
//!
//! Every client operation traverses four stages, each owning one of the
//! paper's design decisions:
//!
//! ```text
//! AccessStage ──▶ LocationStage ──▶ ReplicationStage ──▶ StorageStage
//!  (PoA + LDAP     (DLS resolution    (copy routing,       (single-SE
//!   server, §3.4)    via Locator,       quorum/multi-        transaction
//!                     §3.3.1/§3.5)      master, §3.3/§5)     via Storage-
//!                                                            Backend, §3.2)
//!                                      ◀── finish: post-commit
//!                                          replication + staleness
//! ```
//!
//! The location stage runs behind the [`Locator`] trait (provisioned maps,
//! cached maps, and the consistent-hash ring all implement it) and the
//! storage stage behind the [`StorageBackend`] trait (implemented by the
//! in-RAM [`udr_storage::StorageElement`]). A [`PipelineCtx`] carries the
//! operation plus the accumulated [`LatencyBreakdown`], so experiments
//! can attribute end-to-end latency to the stage that caused it.
//!
//! [`Udr`] itself no longer routes anything per-operation: it is the
//! deployment container and event pump, and `ops.rs` is a thin entry
//! point that builds a context and runs this chain.

use udr_dls::{Location, Locator, Resolution};
use udr_ldap::{FrameCursor, LdapOp};
use udr_model::attrs::Entry;
use udr_model::config::{ReadPolicy, ReplicationMode, TxnClass};
use udr_model::error::{UdrError, UdrResult};
use udr_model::identity::Identity;
use udr_model::ids::{PartitionId, ReplicaRole, SeId, SiteId, SubscriberUid};
use udr_model::qos::{PriorityClass, ShedReason};
use udr_model::session::{RawLsn, SessionToken};
use udr_model::tenant::{Capability, TenantId};
use udr_model::time::{SimDuration, SimTime};
use udr_replication::quorum::quorum_write;
use udr_replication::Enqueue;
use udr_storage::{CommitRecord, StorageBackend};
use udr_trace::SpanCtx;

use crate::ops::OpOutcome;
use crate::udr::{Udr, UdrEvent};

/// Per-stage latency attribution for one operation.
///
/// Components always sum to [`OpOutcome::latency`] except when the
/// operation was failed by the timeout clamp in
/// [`Udr::execute`](crate::Udr::execute), where the breakdown keeps
/// the attempt's decomposition while the reported latency is the timeout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Client ↔ PoA round trip plus LDAP server queueing and processing.
    pub access: SimDuration,
    /// Data-location resolution, including any SE probe broadcasts.
    pub location: SimDuration,
    /// Replica routing and replication waits: commit acknowledgements in
    /// the synchronous modes, ensemble consults on quorum reads.
    pub replication: SimDuration,
    /// Storage-element round trip plus engine execution and commit cost.
    pub storage: SimDuration,
}

impl LatencyBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> SimDuration {
        self.access + self.location + self.replication + self.storage
    }
}

/// Mutable state threaded through the stages for one operation.
pub struct PipelineCtx<'a> {
    /// The operation being executed.
    pub op: &'a LdapOp,
    /// Issuing transaction class (FE or PS).
    pub class: TxnClass,
    /// QoS priority class of the operation (derived from the issuing
    /// procedure kind, or the transaction-class default for bare ops);
    /// the access stage's admission controller sheds on it.
    pub priority: PriorityClass,
    /// Site the client is attached to.
    pub client_site: SiteId,
    /// Arrival instant at the PoA.
    pub now: SimTime,
    /// Operator the issuing front-end belongs to. Defaults to
    /// [`TenantId::DEFAULT`] — the single-operator deployment.
    pub tenant: TenantId,
    /// The capability this operation exercises; what the access stage's
    /// mask AND authorizes. Defaults to the bare direct-read/direct-write
    /// capability of the op itself; procedure drivers override it with
    /// the procedure's capability.
    pub capability: Capability,
    /// The issuing client session's consistency token, when the client
    /// maintains one. Consulted by session-consistent replica selection
    /// and updated with what the operation wrote/observed.
    pub session: Option<&'a mut SessionToken>,
    /// Accumulated latency attribution.
    pub breakdown: LatencyBreakdown,
    /// Trace context of the operation ([`SpanCtx::NONE`] when tracing is
    /// off): `trace` identifies the op's causal tree, `span` the enclosing
    /// span new records should parent to. Stage wrappers rewrite `span`
    /// around each stage so nested instants attach to the stage's span.
    pub span: SpanCtx,
    /// Open framed-batch cursor, when the op is part of a batch: ops
    /// landing on a station the frame already covers skip the
    /// per-message framing share of their service time (§3.3.3 bulk
    /// provisioning). `None` (the default) is the per-op wire path.
    frame: Option<&'a mut FrameCursor>,
    /// Serving cluster (set by the access stage).
    cluster_idx: usize,
    /// Site of the serving LDAP server (set by the access stage).
    server_site: SiteId,
    /// Resolved data location (set by the location stage).
    location: Option<Location>,
    /// The SE chosen to serve the data portion (set by replication
    /// routing).
    target: Option<SeId>,
    /// Whether the replication stage consulted a read quorum (the storage
    /// stage then serves a committed read instead of a transaction).
    quorum_served: bool,
    /// Whether the replication stage routed this read through a consensus
    /// serving leader (committed-prefix read; same storage path as
    /// quorum-served, but audited as a master read — staleness is
    /// structurally impossible).
    consensus_served: bool,
    /// Commit record of a committed write, for post-commit replication.
    record: Option<CommitRecord>,
    /// Reference LSN bounded-staleness routing measured lag against,
    /// reused by the post-read audit (deployment state cannot change
    /// between the two within one operation).
    bounded_reference: Option<RawLsn>,
    /// Whether a guarded read policy was downgraded to nearest-copy by
    /// the overload-degradation policy (skips the freshness audit — the
    /// downgrade itself is what gets recorded).
    policy_downgraded: bool,
    /// Whether reaching the SE crossed the inter-site backbone.
    crossed_backbone: bool,
}

impl<'a> PipelineCtx<'a> {
    /// A fresh context for one operation.
    pub fn new(op: &'a LdapOp, class: TxnClass, client_site: SiteId, now: SimTime) -> Self {
        PipelineCtx {
            op,
            class,
            priority: PriorityClass::default_for_txn(class),
            client_site,
            now,
            tenant: TenantId::DEFAULT,
            capability: if op.is_write() {
                Capability::DirectWrite
            } else {
                Capability::DirectRead
            },
            session: None,
            breakdown: LatencyBreakdown::default(),
            span: SpanCtx::NONE,
            frame: None,
            cluster_idx: 0,
            server_site: client_site,
            location: None,
            target: None,
            quorum_served: false,
            consensus_served: false,
            record: None,
            bounded_reference: None,
            policy_downgraded: false,
            crossed_backbone: false,
        }
    }

    /// Attach the issuing session's consistency token.
    pub fn with_session(mut self, session: Option<&'a mut SessionToken>) -> Self {
        self.session = session;
        self
    }

    /// Set the operation's QoS priority class (procedures derive it from
    /// their kind; the default is the transaction-class fallback).
    pub fn with_priority(mut self, priority: PriorityClass) -> Self {
        self.priority = priority;
        self
    }

    /// Attach an open framed-batch cursor (see
    /// [`OpRequest::framed`](crate::OpRequest::framed)).
    pub fn with_frame(mut self, frame: Option<&'a mut FrameCursor>) -> Self {
        self.frame = frame;
        self
    }

    /// Set the issuing tenant and the capability the operation exercises
    /// (procedure drivers pass the procedure's capability; the default is
    /// the op's own direct-read/direct-write).
    pub fn with_tenant(mut self, tenant: TenantId, capability: Capability) -> Self {
        self.tenant = tenant;
        self.capability = capability;
        self
    }

    /// Attach the operation's trace context (from
    /// [`udr_trace::Tracer::begin_op`]; [`SpanCtx::NONE`] disables span
    /// emission for this op).
    pub fn with_trace(mut self, span: SpanCtx) -> Self {
        self.span = span;
        self
    }

    /// Fail with the latency accumulated so far.
    fn fail(&self, err: UdrError) -> OpOutcome {
        OpOutcome {
            result: Err(err),
            latency: self.breakdown.total(),
            served_by: None,
            crossed_backbone: false,
            breakdown: self.breakdown,
        }
    }

    /// The location resolved by the location stage.
    fn loc(&self) -> Location {
        self.location.expect("location stage ran")
    }
}

/// Run the full chain against a deployment.
///
/// [`Udr::execute`](crate::Udr::execute) is the normal entry point
/// (it drains events, applies the operation timeout and records metrics);
/// drive this directly when you need the raw stage outcome — e.g. to run
/// stages against a partially-built context in tests or future
/// partition-parallel executors.
pub fn run(udr: &mut Udr, ctx: &mut PipelineCtx) -> OpOutcome {
    if let Err(out) = traced_stage(udr, ctx, "stage.access", AccessStage::run) {
        return out;
    }
    if let Err(out) = traced_stage(udr, ctx, "stage.location", LocationStage::run) {
        return out;
    }
    if let Err(out) = traced_stage(udr, ctx, "stage.replication", ReplicationStage::route) {
        return out;
    }
    let value = match traced_stage(udr, ctx, "stage.storage", StorageStage::run) {
        Ok(value) => value,
        Err(out) => return out,
    };
    traced_stage(udr, ctx, "stage.replication", |udr, ctx| {
        ReplicationStage::finish(udr, ctx, value)
    })
}

/// Run one pipeline stage, attributing what it added to the
/// [`LatencyBreakdown`] as trace spans.
///
/// When the op is traced, the stage runs under a freshly allocated span id
/// (so instants it emits parent to the stage), and afterwards one span per
/// breakdown field the stage advanced is recorded — named after the
/// *field*, not the stage, so the per-name sums in a trace reproduce the
/// breakdown exactly even when a stage charges several components (a
/// consensus write accrues both `replication` and `storage` inside
/// routing). A stage that added no simulated time leaves one zero-duration
/// span named `hint` so the causal tree still shows it ran.
fn traced_stage<'b, T>(
    udr: &mut Udr,
    ctx: &mut PipelineCtx<'b>,
    hint: &'static str,
    stage: impl FnOnce(&mut Udr, &mut PipelineCtx<'b>) -> T,
) -> T {
    if !ctx.span.is_active() || !udr.tracer.enabled() {
        return stage(udr, ctx);
    }
    let before = ctx.breakdown;
    let start = ctx.now + before.total();
    let parent = ctx.span.span;
    let stage_span = udr.tracer.alloc_span();
    ctx.span.span = stage_span;
    let out = stage(udr, ctx);
    ctx.span.span = parent;
    let after = ctx.breakdown;
    let deltas = [
        ("stage.access", after.access.saturating_sub(before.access)),
        (
            "stage.location",
            after.location.saturating_sub(before.location),
        ),
        (
            "stage.replication",
            after.replication.saturating_sub(before.replication),
        ),
        (
            "stage.storage",
            after.storage.saturating_sub(before.storage),
        ),
    ];
    let mut cursor = start;
    let mut primary_used = false;
    for (name, delta) in deltas {
        if delta.is_zero() {
            continue;
        }
        let id = if primary_used {
            udr.tracer.alloc_span()
        } else {
            primary_used = true;
            stage_span
        };
        udr.tracer
            .span(ctx.span.trace, id, parent, name, cursor, delta, None);
        cursor += delta;
    }
    if !primary_used {
        udr.tracer.span(
            ctx.span.trace,
            stage_span,
            parent,
            hint,
            start,
            SimDuration::ZERO,
            None,
        );
    }
    out
}

fn sample_rtt(udr: &mut Udr, a: SiteId, b: SiteId) -> Option<SimDuration> {
    udr.net.round_trip(a, b, &mut udr.rng)
}

/// Stage 1 — §3.4.1 access: the client reaches a PoA over the local
/// network, the PoA balances over the cluster's LDAP servers, the QoS
/// admission controller decides admit-or-shed on the measured queueing
/// delay, and the chosen server pays protocol queueing + processing.
pub struct AccessStage;

impl AccessStage {
    /// Run the stage: PoA round trip, balancer pick, QoS admission,
    /// server admission.
    pub fn run(udr: &mut Udr, ctx: &mut PipelineCtx) -> Result<(), OpOutcome> {
        // Client ↔ PoA: the FE is always close to a PoA (§3.3.2), so this
        // is a LAN round trip.
        let Some(poa_rtt) = sample_rtt(udr, ctx.client_site, ctx.client_site) else {
            ctx.breakdown = LatencyBreakdown {
                access: udr.cfg.frash.op_timeout,
                ..LatencyBreakdown::default()
            };
            return Err(ctx.fail(UdrError::Timeout));
        };
        ctx.breakdown.access += poa_rtt;

        // PoA balances over the cluster's LDAP servers.
        ctx.cluster_idx = udr.pick_cluster(ctx.client_site);
        let Some(server_id) = udr.clusters[ctx.cluster_idx].poa.pick() else {
            return Err(ctx.fail(UdrError::Overload));
        };
        ctx.server_site = udr.clusters[ctx.cluster_idx].site;

        // Admission-time authorization: one dense-table index plus one
        // branch-free mask AND against the tenant's capability bitmask,
        // *before* any QoS accounting. A denial is a policy verdict, not
        // a load condition: it is typed [`UdrError::Forbidden`], never
        // counted as shed, and never retried.
        if !udr.cfg.tenants.allows(ctx.tenant, ctx.capability) {
            if ctx.span.is_active() && udr.tracer.enabled() {
                udr.tracer.instant(
                    ctx.span.trace,
                    ctx.span.span,
                    "auth.forbidden",
                    ctx.now + ctx.breakdown.total(),
                    Some(format!(
                        "tenant={} capability={}",
                        ctx.tenant, ctx.capability
                    )),
                );
            }
            return Err(ctx.fail(UdrError::Forbidden {
                tenant: ctx.tenant,
                capability: ctx.capability,
            }));
        }

        // Per-tenant rate budget: the authorized tenant spends from its
        // own per-class buckets, isolated — no downward borrowing and no
        // lending across tenants — so one tenant's storm exhausts only
        // its own budget. Cluster-level CoDel shedding below stays
        // shared: it protects the deployment, this protects the
        // neighbours.
        udr.sync_tenant_buckets();
        if let Some(buckets) = udr.tenant_bucket_mut(ctx.tenant) {
            if !buckets.admit_isolated(ctx.priority, ctx.now) {
                if ctx.span.is_active() && udr.tracer.enabled() {
                    udr.tracer.instant(
                        ctx.span.trace,
                        ctx.span.span,
                        "qos.tenant_shed",
                        ctx.now + ctx.breakdown.total(),
                        Some(format!("tenant={} class={}", ctx.tenant, ctx.priority)),
                    );
                }
                return Err(ctx.fail(UdrError::Shed {
                    class: ctx.priority,
                    reason: ShedReason::RateLimit,
                }));
            }
        }

        // QoS admission: the controller sees the queueing delay the
        // picked server would impose and sheds the lowest classes first
        // when it stays above target. Shedding here — before the op
        // consumes server CPU — is the whole point: rejected work must
        // cost nothing, or the rejection itself melts down. (The whole
        // block is skipped — including the delay measurement — when
        // admission control is disabled, the default.)
        if udr.cfg.qos.enabled {
            let queue_delay = udr.servers[server_id.index()].queue_delay(ctx.now);
            if let Err(reason) = udr.qos[ctx.cluster_idx].admit(ctx.priority, queue_delay, ctx.now)
            {
                // Audit for priority inversion: no class this one
                // outranks may be admittable at the same instant.
                // Structurally impossible by controller design; counted
                // to prove it live.
                let controller = &udr.qos[ctx.cluster_idx];
                let inverted = PriorityClass::ALL[ctx.priority.rank() + 1..]
                    .iter()
                    .any(|lower| controller.would_admit(*lower, queue_delay, ctx.now));
                if inverted {
                    udr.metrics.qos.record_inversion();
                }
                if ctx.span.is_active() && udr.tracer.enabled() {
                    let state = udr.qos[ctx.cluster_idx].pressure_label(ctx.now);
                    udr.tracer.instant(
                        ctx.span.trace,
                        ctx.span.span,
                        "qos.shed",
                        ctx.now + ctx.breakdown.total(),
                        Some(format!(
                            "class={} reason={reason} state={state}",
                            ctx.priority
                        )),
                    );
                }
                return Err(ctx.fail(UdrError::Shed {
                    class: ctx.priority,
                    reason,
                }));
            }
        }

        // Protocol processing (queueing + service) at the server. An op
        // whose batch frame already covers this station continues the
        // frame and skips the per-message framing share; admission (the
        // queue bound) and the arrival instant are identical either way,
        // so batching never changes whether an op is served.
        let continues = ctx
            .frame
            .as_ref()
            .is_some_and(|frame| frame.contains(server_id));
        let Some(done) = udr.servers[server_id.index()].admit_framed(ctx.op, ctx.now, continues)
        else {
            return Err(ctx.fail(UdrError::Overload));
        };
        if let Some(frame) = ctx.frame.as_deref_mut() {
            frame.record(server_id);
        }
        ctx.breakdown.access += done.duration_since(ctx.now);
        Ok(())
    }
}

/// Stage 2 — §3.3.1 decision 1: resolve the identity to a data location
/// through the cluster's [`Locator`]. Cached and hashed locators may
/// require an SE probe broadcast (§3.5's scalability hurdle).
///
/// The stage also version-checks the locator's routing view against the
/// deployment's epoch-versioned shard map: a lookup resolved under a
/// stale epoch whose partition moved since (live migration cutover or
/// failover) first bounces off the retired owner — one wasted round trip,
/// charged to [`LatencyBreakdown::location`] — then refreshes the view
/// and retries **once**. Partitions that did not move refresh for free.
pub struct LocationStage;

impl LocationStage {
    /// Run the stage: resolve the operation's identity via the cluster's
    /// [`Locator`], probing SEs on a miss and retrying a stale-epoch
    /// route at most once.
    pub fn run(udr: &mut Udr, ctx: &mut PipelineCtx) -> Result<(), OpOutcome> {
        let identity = *ctx.op.dn().identity();
        let current = udr.shard_map.epoch();
        let mut retried = false;
        loop {
            let (observed, resolution) = {
                let locator: &mut dyn Locator = &mut udr.clusters[ctx.cluster_idx].stage;
                (
                    locator.map_epoch(),
                    locator.resolve(&identity, ctx.now, None),
                )
            };
            return match resolution {
                Resolution::Found(loc) => {
                    if !retried
                        && observed < current
                        && udr.shard_map.routing_changed_since(loc.partition, observed)
                    {
                        // Stale route: the op reached the retired owner,
                        // which answered "moved, epoch=N". Pay the bounce,
                        // refresh the view, resolve again.
                        if let Some(old) = udr.shard_map.retired_master(loc.partition) {
                            let old_site = udr.ses[old.index()].site();
                            if let Some(rtt) = sample_rtt(udr, ctx.server_site, old_site) {
                                ctx.breakdown.location += rtt;
                            }
                        }
                        udr.metrics.stale_route_retries += 1;
                        if ctx.span.is_active() && udr.tracer.enabled() {
                            udr.tracer.instant(
                                ctx.span.trace,
                                ctx.span.span,
                                "loc.stale_retry",
                                ctx.now + ctx.breakdown.total(),
                                Some(format!("p{} epoch {observed}→{current}", loc.partition.0)),
                            );
                        }
                        let locator: &mut dyn Locator = &mut udr.clusters[ctx.cluster_idx].stage;
                        locator.install_map_epoch(current);
                        retried = true;
                        continue;
                    }
                    if observed < current {
                        // Unmoved partition: piggyback the refresh for free.
                        let locator: &mut dyn Locator = &mut udr.clusters[ctx.cluster_idx].stage;
                        locator.install_map_epoch(current);
                    }
                    ctx.location = Some(loc);
                    Ok(())
                }
                Resolution::Unknown => {
                    Err(ctx.fail(UdrError::UnknownIdentity(identity.to_string())))
                }
                Resolution::Syncing => Err(ctx.fail(UdrError::LocationStageSyncing)),
                Resolution::NeedsProbe { ses_to_probe } => {
                    Self::probe(udr, ctx, &identity, ses_to_probe)
                }
            };
        }
    }

    /// Locator miss: broadcast a location probe to the SEs. The answer
    /// comes from the owning partition's master; absence is known only
    /// after the slowest reachable SE answers.
    fn probe(
        udr: &mut Udr,
        ctx: &mut PipelineCtx,
        identity: &Identity,
        ses_to_probe: usize,
    ) -> Result<(), OpOutcome> {
        udr.metrics.dls_probes += ses_to_probe as u64;
        match udr.authority.peek(identity) {
            Some(loc) => {
                // The probe fans out in parallel; the client proceeds as
                // soon as the owning partition's master answers positively.
                let owner = udr.groups[loc.partition.index()].master();
                if !udr.ses[owner.index()].is_up() {
                    return Err(ctx.fail(UdrError::SeUnavailable(owner)));
                }
                let owner_site = udr.ses[owner.index()].site();
                let Some(owner_rtt) = sample_rtt(udr, ctx.server_site, owner_site) else {
                    ctx.breakdown.location += udr.cfg.frash.op_timeout;
                    return Err(ctx.fail(UdrError::Unreachable {
                        se: owner,
                        reason: "partition",
                    }));
                };
                ctx.breakdown.location += owner_rtt;
                let locator: &mut dyn Locator = &mut udr.clusters[ctx.cluster_idx].stage;
                locator.fill(identity, loc);
                ctx.location = Some(loc);
                Ok(())
            }
            None => {
                // Absence is known only once the slowest reachable probed
                // SE has answered "not here".
                let sites: Vec<SiteId> = udr
                    .ses
                    .iter()
                    .take(ses_to_probe)
                    .map(|se| se.site())
                    .collect();
                let mut worst = SimDuration::ZERO;
                for site in sites {
                    if let Some(rtt) = sample_rtt(udr, ctx.server_site, site) {
                        worst = worst.max(rtt);
                    }
                }
                ctx.breakdown.location += worst;
                Err(ctx.fail(UdrError::UnknownIdentity(identity.to_string())))
            }
        }
    }
}

/// Stage 3 — replica routing and replication effects: picks the SE that
/// serves the operation under the configured replication mode and read
/// policy (§3.3), consults read quorums (§5), and — after the storage
/// stage commits — propagates the record and waits for whatever the mode
/// requires.
pub struct ReplicationStage;

impl ReplicationStage {
    /// Routing half of the stage: pick the serving SE (or consult a read
    /// quorum) under the configured replication mode and read policy.
    pub fn route(udr: &mut Udr, ctx: &mut PipelineCtx) -> Result<(), OpOutcome> {
        let location = ctx.loc();
        // Per-partition load accounting (hotspot detection for the
        // rebalancer).
        if let Some(slot) = udr.ops_per_partition.get_mut(location.partition.index()) {
            *slot += 1;
        }

        // Consensus mode bypasses copy routing entirely: writes commit
        // through the partition's replica group, reads are served from
        // the serving leader's committed prefix.
        if udr.consensus_mode() {
            return if ctx.op.is_write() {
                Self::consensus_write(udr, ctx, location.partition)
            } else {
                Self::consensus_read(udr, ctx, location.partition)
            };
        }

        // Quorum mode handles reads through the ensemble, not one copy.
        if let ReplicationMode::Quorum { r, .. } = udr.cfg.frash.replication {
            if !ctx.op.is_write() {
                return Self::quorum_consult(udr, ctx, location.partition, r);
            }
        }

        let read_policy = match ctx.class {
            TxnClass::FrontEnd => udr.cfg.frash.fe_read_policy,
            TxnClass::Provisioning => udr.cfg.frash.ps_read_policy,
        };
        let target = if ctx.op.is_write() {
            Self::write_target(udr, location.partition, ctx.server_site, ctx.now)
        } else {
            Self::read_target(udr, ctx, location.partition, read_policy)
        };
        match target {
            Some(se) => {
                ctx.target = Some(se);
                Ok(())
            }
            None => {
                let master = udr.groups[location.partition.index()].master();
                ctx.breakdown.replication += udr.cfg.frash.op_timeout;
                Err(ctx.fail(UdrError::Unreachable {
                    se: master,
                    reason: "partition",
                }))
            }
        }
    }

    /// Pick the SE serving a read under a policy.
    fn read_target(
        udr: &mut Udr,
        ctx: &mut PipelineCtx,
        partition: PartitionId,
        policy: ReadPolicy,
    ) -> Option<SeId> {
        let from_site = ctx.server_site;
        match policy {
            ReadPolicy::MasterOnly => {
                let master = udr.groups[partition.index()].master();
                Self::copy_usable(udr, from_site, master).then_some(master)
            }
            // Nearest-copy is the guarded selection with a zero floor:
            // every copy qualifies, so the preference chain (same-site →
            // master → any reachable copy) decides alone and no redirect
            // ever fires.
            ReadPolicy::NearestCopy => Self::guarded_target(udr, ctx, partition, 0),
            // The middle of the consistency spectrum: both intermediate
            // policies reduce to "nearest copy whose applied LSN has
            // reached a freshness floor". Under sustained overload the
            // QoS controller may downgrade them to nearest-copy — lag
            // lookups and master redirects are latency the deployment can
            // no longer afford; the trade is recorded as an explicit
            // policy downgrade, never taken silently.
            ReadPolicy::BoundedStaleness { max_lag } => {
                if Self::degrade_guarded_read(udr, ctx) {
                    return Self::guarded_target(udr, ctx, partition, 0);
                }
                let reference = Self::reference_lsn(udr, partition, from_site);
                ctx.bounded_reference = Some(reference);
                Self::guarded_target(udr, ctx, partition, reference.saturating_sub(max_lag))
            }
            ReadPolicy::SessionConsistent => {
                if Self::degrade_guarded_read(udr, ctx) {
                    return Self::guarded_target(udr, ctx, partition, 0);
                }
                let required = ctx
                    .session
                    .as_ref()
                    .map(|token| token.required_lsn(partition))
                    .unwrap_or(0);
                Self::guarded_target(udr, ctx, partition, required)
            }
        }
    }

    /// Whether the serving cluster's sustained-overload state downgrades
    /// this guarded read to nearest-copy. Records the downgrade (the
    /// explicit consistency-for-latency trade) when it does.
    fn degrade_guarded_read(udr: &mut Udr, ctx: &mut PipelineCtx) -> bool {
        if !udr.qos[ctx.cluster_idx].degraded(ctx.now) {
            return false;
        }
        udr.metrics.guarantees.record_policy_downgrade();
        ctx.policy_downgraded = true;
        if ctx.span.is_active() && udr.tracer.enabled() {
            let state = udr.qos[ctx.cluster_idx].pressure_label(ctx.now);
            udr.tracer.instant(
                ctx.span.trace,
                ctx.span.span,
                "qos.degrade",
                ctx.now + ctx.breakdown.total(),
                Some(format!("guarded read → nearest-copy ({state})")),
            );
        }
        true
    }

    /// Whether `se` can serve a request issued from `from_site` at all.
    fn copy_usable(udr: &Udr, from_site: SiteId, se: SeId) -> bool {
        udr.ses[se.index()].is_up() && udr.net.reachable(from_site, udr.ses[se.index()].site())
    }

    /// The applied LSN of `se`'s copy of `partition` as the router may
    /// assume it: the engine's own position for the master, the shipping
    /// ledger's *confirmed* position for slaves — never ahead of the
    /// slave's true state, so a routing decision based on it is safe.
    fn routed_applied_lsn(udr: &Udr, partition: PartitionId, se: SeId) -> RawLsn {
        let p = partition.index();
        let engine_lsn = || {
            udr.ses[se.index()]
                .last_lsn(partition)
                .map(|l| l.raw())
                .unwrap_or(0)
        };
        if udr.groups[p].master() == se {
            return engine_lsn();
        }
        match udr.shippers[p].applied(se) {
            Some(lsn) => lsn.raw(),
            // No shipping channel (e.g. mid-rebuild): the engine is the
            // only source of truth left.
            None => engine_lsn(),
        }
    }

    /// The log position staleness is measured against: the master's
    /// position while it is up, else the freshest position any reachable
    /// copy advertises (best-known state during a master outage).
    fn reference_lsn(udr: &Udr, partition: PartitionId, from_site: SiteId) -> RawLsn {
        let group = &udr.groups[partition.index()];
        let master = group.master();
        if udr.ses[master.index()].is_up() {
            return Self::routed_applied_lsn(udr, partition, master);
        }
        group
            .members()
            .iter()
            .copied()
            .filter(|se| Self::copy_usable(udr, from_site, *se))
            .map(|se| Self::routed_applied_lsn(udr, partition, se))
            .max()
            .unwrap_or(0)
    }

    /// Lag-aware replica selection shared by every slave-read policy:
    /// the nearest usable copy whose applied LSN has reached `required`,
    /// preferring same-site, then the master, then any reachable copy.
    /// `required = 0` is plain nearest-copy routing (every copy
    /// qualifies, no lag lookups). When the copy nearest-copy routing
    /// would have used fails the floor, the read bounces off it and is
    /// redirected: the wasted hop is charged to
    /// [`LatencyBreakdown::replication`] and counted in
    /// [`udr_metrics::GuaranteeTracker::master_redirects`]. Returns
    /// `None` when no reachable copy qualifies (the consistency side of
    /// the trade: the read fails rather than violate its floor).
    fn guarded_target(
        udr: &mut Udr,
        ctx: &mut PipelineCtx,
        partition: PartitionId,
        required: RawLsn,
    ) -> Option<SeId> {
        let from_site = ctx.server_site;
        // Selection is pure inspection; mutation (RTT sampling, metrics)
        // happens after the borrows end.
        let (nearest, pick) = {
            let group = &udr.groups[partition.index()];
            let master = group.master();
            let members = group.members();
            let qualifies = |se: SeId| {
                required == 0 || Self::routed_applied_lsn(udr, partition, se) >= required
            };

            // The copy plain nearest-copy routing would have used (full
            // preference chain, no freshness filter), so redirects are
            // charged whenever the floor changes the routing decision.
            let nearest = members
                .iter()
                .copied()
                .filter(|se| {
                    udr.ses[se.index()].site() == from_site
                        && Self::copy_usable(udr, from_site, *se)
                })
                .min()
                .or_else(|| Self::copy_usable(udr, from_site, master).then_some(master))
                .or_else(|| {
                    members
                        .iter()
                        .copied()
                        .filter(|se| Self::copy_usable(udr, from_site, *se))
                        .min()
                });
            let pick = members
                .iter()
                .copied()
                .filter(|se| {
                    udr.ses[se.index()].site() == from_site
                        && Self::copy_usable(udr, from_site, *se)
                        && qualifies(*se)
                })
                .min()
                .or_else(|| {
                    (Self::copy_usable(udr, from_site, master) && qualifies(master))
                        .then_some(master)
                })
                .or_else(|| {
                    members
                        .iter()
                        .copied()
                        .filter(|se| Self::copy_usable(udr, from_site, *se) && qualifies(*se))
                        .min()
                });
            (nearest, pick)
        };
        let pick = pick?;
        if let Some(near) = nearest {
            if near != pick {
                // The nearest copy answered "too stale, redirect": one
                // wasted round trip before the fresher copy serves.
                let near_site = udr.ses[near.index()].site();
                if let Some(rtt) = sample_rtt(udr, from_site, near_site) {
                    ctx.breakdown.replication += rtt;
                }
                udr.metrics.guarantees.record_master_redirect();
                if ctx.span.is_active() && udr.tracer.enabled() {
                    udr.tracer.instant(
                        ctx.span.trace,
                        ctx.span.span,
                        "repl.redirect",
                        ctx.now + ctx.breakdown.total(),
                        Some(format!(
                            "se{} too stale, redirected to se{}",
                            near.0, pick.0
                        )),
                    );
                }
            }
        }
        Some(pick)
    }

    /// Pick the SE taking a write; under multi-master an acting master is
    /// elected on the client's side of a partition (§5).
    fn write_target(
        udr: &mut Udr,
        partition: PartitionId,
        from_site: SiteId,
        now: SimTime,
    ) -> Option<SeId> {
        let group = &udr.groups[partition.index()];
        let master = group.master();
        let master_ok = udr.ses[master.index()].is_up()
            && udr.net.reachable(from_site, udr.ses[master.index()].site());
        if master_ok {
            return Some(master);
        }
        if udr.cfg.frash.replication != ReplicationMode::MultiMaster {
            return None;
        }
        // Acting master: same-site preferred, then lowest SeId — a
        // deterministic choice, so every client on this side of the cut
        // elects the same copy.
        let candidate = group
            .members()
            .iter()
            .copied()
            .filter(|se| {
                udr.ses[se.index()].is_up()
                    && udr.net.reachable(from_site, udr.ses[se.index()].site())
            })
            .min_by_key(|se| (udr.ses[se.index()].site() != from_site, *se))?;
        if udr.ses[candidate.index()].role(partition) != Some(ReplicaRole::Master) {
            let _ = udr.ses[candidate.index()].set_role(partition, ReplicaRole::Master);
        }
        let diverged_at = udr.earliest_active_cut().unwrap_or(now);
        udr.diverged.entry(partition).or_insert(diverged_at);
        Some(candidate)
    }

    /// Consensus write: replicate the post-image through the partition's
    /// Multi-Paxos group and acknowledge only once the command is chosen.
    ///
    /// The leader computes the post-image against its committed store (the
    /// ensemble's serialization point), submits it as a log command, and
    /// the pipeline waits — in virtual time, driving the event pump — for
    /// the choice. No serving leader, an unreachable leader or an election
    /// gap all yield *typed* refusals ([`UdrError::is_partition_induced`]),
    /// never a silent downgrade: the CP contract of the mode.
    ///
    /// Returns `Err` in both directions: a refusal carries the error, a
    /// chosen command carries the completed [`OpOutcome`] directly (the
    /// storage work already happened inside the replica group, so the
    /// storage stage must not run again).
    fn consensus_write(
        udr: &mut Udr,
        ctx: &mut PipelineCtx,
        partition: PartitionId,
    ) -> Result<(), OpOutcome> {
        let p = partition.index();
        let majority = udr.consensus[p].majority();
        let Some(leader) = udr.consensus_serving_leader(p) else {
            // Election gap or minority-side leader: typed refusal.
            ctx.breakdown.replication += udr.cfg.frash.op_timeout;
            return Err(ctx.fail(UdrError::ReplicationFailed {
                acked: udr.consensus_reachable_from(p, ctx.server_site),
                required: majority,
            }));
        };
        let leader_se = udr.consensus[p].members[leader];
        let leader_site = udr.ses[leader_se.index()].site();
        if !udr.net.reachable(ctx.server_site, leader_site) {
            ctx.breakdown.replication += udr.cfg.frash.op_timeout;
            return Err(ctx.fail(UdrError::Unreachable {
                se: leader_se,
                reason: "partition",
            }));
        }
        let Some(rtt) = sample_rtt(udr, ctx.server_site, leader_site) else {
            ctx.breakdown.replication += udr.cfg.frash.op_timeout;
            return Err(ctx.fail(UdrError::Timeout));
        };
        ctx.breakdown.replication += rtt;
        ctx.crossed_backbone = leader_site != ctx.server_site;

        // The leader serializes the write against its committed state and
        // replicates the *post-image*, so every replica applies the
        // identical record regardless of local history.
        let uid = ctx.loc().uid;
        let current = match udr.ses[leader_se.index()].read_committed(partition, uid) {
            Ok(cur) => cur,
            Err(e) => return Err(ctx.fail(e)),
        };
        let costs = udr.ses[leader_se.index()].cost_model().clone();
        let entry = match ctx.op {
            LdapOp::Add { entry, .. } => {
                if current.is_some() {
                    return Err(ctx.fail(UdrError::AlreadyExists(uid)));
                }
                ctx.breakdown.storage += costs.write;
                Some(entry.clone())
            }
            LdapOp::Modify { mods, .. } => {
                let Some(mut entry) = current else {
                    return Err(ctx.fail(UdrError::NotFound(uid)));
                };
                ctx.breakdown.storage += costs.read + costs.write;
                entry.apply(mods);
                Some(entry)
            }
            LdapOp::Delete { .. } => {
                if current.is_none() {
                    return Err(ctx.fail(UdrError::NotFound(uid)));
                }
                ctx.breakdown.storage += costs.write;
                None
            }
            _ => unreachable!("consensus_write only runs for write ops"),
        };

        let cmd_id = udr.consensus_alloc_cmd_id();
        let t0 = udr.now().max(ctx.now);
        udr.consensus_submit_via(
            t0,
            partition,
            leader,
            udr_consensus::Command::write(cmd_id, uid, entry),
            ctx.span.trace,
        );

        // Drive the pump until the command is chosen or the operation
        // budget runs out (margin below the timeout so a success is not
        // re-classified by the ok-over-deadline clamp).
        let allowed_wait = udr
            .cfg
            .frash
            .op_timeout
            .saturating_sub(ctx.breakdown.total() + SimDuration::from_millis(2));
        let deadline = t0 + allowed_wait;
        let mut t = t0;
        let chosen_at = loop {
            if udr.consensus_chosen(p, cmd_id) {
                break Some(t);
            }
            if t >= deadline {
                break None;
            }
            t = (t + SimDuration::from_millis(1)).min(deadline);
            udr.advance_to(t);
        };
        match chosen_at {
            Some(at) => {
                if ctx.span.is_active() && udr.tracer.enabled() {
                    let commit_span = udr.tracer.alloc_span();
                    udr.tracer.span(
                        ctx.span.trace,
                        commit_span,
                        ctx.span.span,
                        "consensus.commit",
                        t0,
                        at.duration_since(t0),
                        Some(format!("p{} cmd={}", partition.0, cmd_id.0)),
                    );
                    udr.tracer.instant(
                        ctx.span.trace,
                        commit_span,
                        "consensus.chosen",
                        at,
                        Some(format!("p{} cmd={}", partition.0, cmd_id.0)),
                    );
                }
                ctx.breakdown.replication += at.duration_since(t0);
                udr.metrics.consensus_commits += 1;
                let written_lsn = udr.ses[leader_se.index()]
                    .last_lsn(partition)
                    .map(|l| l.raw())
                    .unwrap_or(0);
                if let Some(token) = ctx.session.as_deref_mut() {
                    token.observe_write(partition, written_lsn);
                }
                Err(OpOutcome {
                    result: Ok(None),
                    latency: ctx.breakdown.total(),
                    served_by: Some(leader_se),
                    crossed_backbone: ctx.crossed_backbone,
                    breakdown: ctx.breakdown,
                })
            }
            None => {
                // Not chosen in time. The submission may still commit
                // later (a requeued proposal surviving a leader change) —
                // campaign oracles treat unacknowledged writes as
                // possibly-effective, exactly like a real client.
                if ctx.span.is_active() && udr.tracer.enabled() {
                    udr.tracer.instant(
                        ctx.span.trace,
                        ctx.span.span,
                        "consensus.timeout",
                        deadline,
                        Some(format!("p{} cmd={} not chosen", partition.0, cmd_id.0)),
                    );
                }
                ctx.breakdown.replication += allowed_wait;
                Err(ctx.fail(UdrError::ReplicationFailed {
                    acked: udr.consensus_reachable_from(p, leader_site),
                    required: majority,
                }))
            }
        }
    }

    /// Consensus read: serve from the serving leader's committed prefix
    /// after a read-index confirmation round.
    ///
    /// The leader's lease is confirmed by a majority round trip (itself
    /// included), which rules out a deposed leader serving a stale prefix
    /// — the structural no-stale-reads property the e25 campaign asserts.
    /// The storage stage then reads the leader's committed store via the
    /// same path quorum-served reads use.
    fn consensus_read(
        udr: &mut Udr,
        ctx: &mut PipelineCtx,
        partition: PartitionId,
    ) -> Result<(), OpOutcome> {
        let p = partition.index();
        let majority = udr.consensus[p].majority();
        let Some(leader) = udr.consensus_serving_leader(p) else {
            ctx.breakdown.replication += udr.cfg.frash.op_timeout;
            return Err(ctx.fail(UdrError::ReplicationFailed {
                acked: udr.consensus_reachable_from(p, ctx.server_site),
                required: majority,
            }));
        };
        let leader_se = udr.consensus[p].members[leader];
        let leader_site = udr.ses[leader_se.index()].site();
        if !udr.net.reachable(ctx.server_site, leader_site) {
            ctx.breakdown.replication += udr.cfg.frash.op_timeout;
            return Err(ctx.fail(UdrError::Unreachable {
                se: leader_se,
                reason: "partition",
            }));
        }
        let Some(rtt) = sample_rtt(udr, ctx.server_site, leader_site) else {
            ctx.breakdown.replication += udr.cfg.frash.op_timeout;
            return Err(ctx.fail(UdrError::Timeout));
        };
        ctx.breakdown.replication += rtt;

        // Read-index confirmation: a majority echo (leader included)
        // proves the leader has not been silently deposed.
        let mut confirms: Vec<SimDuration> = Vec::new();
        for j in 0..udr.consensus[p].members.len() {
            if j == leader || !udr.consensus_node_up(p, j) {
                continue;
            }
            let peer_se = udr.consensus[p].members[j];
            let peer_site = udr.ses[peer_se.index()].site();
            if let Some(echo) = udr.net.round_trip(leader_site, peer_site, &mut udr.rng) {
                confirms.push(echo);
            }
        }
        confirms.sort_unstable();
        if confirms.len() + 1 < majority {
            ctx.breakdown.replication += udr.cfg.frash.op_timeout;
            return Err(ctx.fail(UdrError::ReplicationFailed {
                acked: confirms.len() + 1,
                required: majority,
            }));
        }
        // The (majority-1)-th fastest echo completes the confirmation.
        ctx.breakdown.replication += confirms[majority - 2];
        ctx.target = Some(leader_se);
        ctx.consensus_served = true;
        Ok(())
    }

    /// Quorum read consult (§5 Cassandra comparison): wait for the `r`
    /// nearest reachable replicas, then serve from the freshest of them.
    fn quorum_consult(
        udr: &mut Udr,
        ctx: &mut PipelineCtx,
        partition: PartitionId,
        r: u8,
    ) -> Result<(), OpOutcome> {
        let members: Vec<SeId> = udr.groups[partition.index()].members().to_vec();
        let mut responders: Vec<(SeId, SimDuration)> = Vec::new();
        for se in members {
            if !udr.ses[se.index()].is_up() {
                continue;
            }
            let site = udr.ses[se.index()].site();
            if let Some(rtt) = sample_rtt(udr, ctx.server_site, site) {
                responders.push((se, rtt));
            }
        }
        responders.sort_by_key(|(_, rtt)| *rtt);
        if responders.len() < r as usize {
            ctx.breakdown.replication += udr.cfg.frash.op_timeout;
            return Err(ctx.fail(UdrError::ReplicationFailed {
                acked: responders.len(),
                required: r as usize,
            }));
        }
        let consulted = &responders[..r as usize];
        ctx.breakdown.replication += consulted
            .last()
            .map(|(_, rtt)| *rtt)
            .unwrap_or(SimDuration::ZERO);
        // Freshest copy among the consulted wins.
        let (serving, _) = consulted
            .iter()
            .max_by_key(|(se, _)| {
                udr.ses[se.index()]
                    .last_lsn(partition)
                    .unwrap_or(udr_storage::Lsn::ZERO)
            })
            .copied()
            .expect("r >= 1 consulted");
        ctx.target = Some(serving);
        ctx.quorum_served = true;
        if ctx.span.is_active() && udr.tracer.enabled() {
            udr.tracer.instant(
                ctx.span.trace,
                ctx.span.span,
                "repl.quorum_consult",
                ctx.now + ctx.breakdown.total(),
                Some(format!("r={r} serving=se{}", serving.0)),
            );
        }
        Ok(())
    }

    /// Post-commit half of the stage: propagate the committed record per
    /// the replication mode, account read staleness, and assemble the
    /// final outcome.
    pub fn finish(udr: &mut Udr, ctx: &mut PipelineCtx, mut value: Option<Entry>) -> OpOutcome {
        let se_id = ctx.target.expect("storage stage ran");
        let location = ctx.loc();

        if let Some(record) = ctx.record.take() {
            let commit_done = ctx.now + ctx.breakdown.total();
            let write_lsn = record.lsn.raw();
            match Self::replicate_after_commit(udr, location.partition, se_id, &record, commit_done)
            {
                Ok(extra) => {
                    ctx.breakdown.replication += extra;
                    // Raise the session's read-your-writes floor to the
                    // committed position.
                    if let Some(token) = ctx.session.as_deref_mut() {
                        token.observe_write(location.partition, write_lsn);
                    }
                }
                Err(e) => {
                    udr.metrics.partial_commits += 1;
                    return ctx.fail(e);
                }
            }
        }

        if !ctx.op.is_write() {
            if ctx.consensus_served {
                // Leader committed-prefix read: fresh by construction.
                udr.metrics.staleness.record_master_read();
            } else {
                Self::record_read_staleness(
                    udr,
                    location.partition,
                    location.uid,
                    se_id,
                    ctx.quorum_served,
                );
            }
            Self::account_guarantees(udr, ctx, location.partition, se_id);
            // Attribute projection. (Filter matching and Bind/Compare
            // shaping already happened in the storage stage, on both the
            // transactional and the quorum-served path.)
            if let LdapOp::Search { attrs, .. } | LdapOp::SearchFilter { attrs, .. } = ctx.op {
                if !attrs.is_empty() {
                    if let Some(entry) = value.take() {
                        let projected: Entry = entry
                            .iter()
                            .filter(|(id, _)| attrs.contains(id))
                            .map(|(id, v)| (*id, v.clone()))
                            .collect();
                        value = Some(projected);
                    }
                }
            }
        }

        OpOutcome {
            result: Ok(value),
            latency: ctx.breakdown.total(),
            served_by: Some(se_id),
            crossed_backbone: ctx.crossed_backbone,
            breakdown: ctx.breakdown,
        }
    }

    /// Propagate a committed record per the replication mode; returns the
    /// extra commit latency the client observes.
    fn replicate_after_commit(
        udr: &mut Udr,
        partition: PartitionId,
        master: SeId,
        record: &CommitRecord,
        now: SimTime,
    ) -> UdrResult<SimDuration> {
        let p = partition.index();
        let master_site = udr.ses[master.index()].site();
        let slaves: Vec<SeId> = udr.groups[p]
            .members()
            .iter()
            .copied()
            .filter(|se| *se != master)
            .collect();

        // Asynchronous shipping happens in every mode (it is the stream
        // the slaves replay); the mode decides what the commit *waits* for.
        let batching = !udr.cfg.ship_batch.is_per_record();
        let mut slave_rtts: Vec<(SeId, Option<SimDuration>)> = Vec::with_capacity(slaves.len());
        for slave in &slaves {
            let slave_site = udr.ses[slave.index()].site();
            let up = udr.ses[slave.index()].is_up();
            let delay = if up {
                udr.net.send(master_site, slave_site, &mut udr.rng).delay()
            } else {
                None
            };
            if batching {
                // Coalesce: the record joins the channel's open batch; the
                // batch ships as one message at its cap or linger deadline.
                let cfg = udr.cfg.ship_batch;
                match udr.shippers[p].enqueue(*slave, record, &cfg) {
                    Enqueue::Opened { seq } => {
                        // The opener's trace rides the batch: stamp it so
                        // the eventual flush and delivery attribute to the
                        // op that started the linger window.
                        let trace = udr.tracer.active_trace();
                        if trace != 0 {
                            udr.shippers[p].stamp_open_trace(*slave, trace);
                        }
                        udr.schedule_event(
                            now + cfg.linger,
                            UdrEvent::ShipFlush {
                                partition,
                                slave: *slave,
                                seq,
                            },
                        );
                    }
                    Enqueue::Full => {
                        if let Some(b) = udr.shippers[p].flush_open(*slave, now, delay) {
                            if udr.tracer.enabled() && b.trace != 0 {
                                udr.tracer.instant(
                                    b.trace,
                                    0,
                                    "ship.flush",
                                    now,
                                    Some(format!(
                                        "p{} se{} n={} cap",
                                        partition.0,
                                        b.slave.0,
                                        b.records.len()
                                    )),
                                );
                            }
                            udr.schedule_event(
                                b.arrives,
                                UdrEvent::ReplDeliverBatch {
                                    partition,
                                    slave: b.slave,
                                    records: b.records,
                                    trace: b.trace,
                                },
                            );
                        }
                    }
                    Enqueue::Joined | Enqueue::Refused => {}
                }
            } else if let Some(d) = udr.shippers[p].ship(*slave, record, now, delay) {
                udr.schedule_event(
                    d.arrives,
                    UdrEvent::ReplDeliver {
                        partition,
                        slave: d.slave,
                        record: d.record,
                    },
                );
            }
            // The ack round trip is twice the one-way delay.
            slave_rtts.push((*slave, delay.map(|d| d * 2)));
        }

        match udr.cfg.frash.replication {
            ReplicationMode::Consensus { .. } => {
                unreachable!(
                    "consensus writes commit through the replica group, not the storage pipeline"
                )
            }
            ReplicationMode::AsyncMasterSlave | ReplicationMode::MultiMaster => {
                Ok(SimDuration::ZERO)
            }
            ReplicationMode::DualInSequence => {
                // §5: apply in sequence to two replicas, commit when both
                // succeed. The wait is the designated second copy's ack.
                match slave_rtts.iter().find(|(_, rtt)| rtt.is_some()) {
                    Some((_, Some(rtt))) => Ok(*rtt),
                    _ => Err(UdrError::ReplicationFailed {
                        acked: 1,
                        required: 2,
                    }),
                }
            }
            ReplicationMode::Quorum { w, .. } => {
                // Master counts as the first ack at its local commit cost.
                let mut responses = vec![(master, Some(SimDuration::ZERO))];
                responses.extend(slave_rtts);
                let out = quorum_write(&responses, w as usize);
                // §5 ack carry-over: a replica whose ack the commit wait
                // counted has applied the record by the time the client
                // sees the commit — the ack IS the apply confirmation.
                // Carrying the responders forward synchronously (failed
                // rounds included: a replica that received the write keeps
                // it even when the coordinator never reaches `w`) is what
                // lets a r+w>n read quorum guarantee freshness at consult
                // time rather than eventually.
                Self::carry_over_quorum_acks(udr, partition, master, &out.applied);
                if out.committed {
                    // Advance the acknowledged tail: freshness promises
                    // (and the staleness audit) reach exactly this far.
                    let acked = &mut udr.quorum_acked[p];
                    *acked = (*acked).max(record.lsn);
                    Ok(out.latency)
                } else {
                    Err(UdrError::ReplicationFailed {
                        acked: out.applied.len(),
                        required: w as usize,
                    })
                }
            }
        }
    }

    /// Apply the master-log suffix each quorum responder is missing, at
    /// ack time. W-sets vary per write, so an acked slave may be missing
    /// earlier records too — prefix completeness requires replaying the
    /// whole gap, not just the current record. The asynchronous
    /// deliveries already in flight for the same LSNs arrive later as
    /// duplicates and are dropped by the engine's gap check.
    fn carry_over_quorum_acks(udr: &mut Udr, partition: PartitionId, master: SeId, acked: &[SeId]) {
        let p = partition.index();
        for &slave in acked {
            if slave == master {
                continue;
            }
            let Ok(applied) = udr.ses[slave.index()].last_lsn(partition) else {
                continue;
            };
            let suffix: Vec<CommitRecord> = match udr.ses[master.index()].engine(partition) {
                Ok(engine) => engine.log().since(applied).to_vec(),
                Err(_) => continue,
            };
            // A truncated log cannot serve the gap; the periodic catch-up
            // pass reseeds the slave from a snapshot instead.
            if suffix.first().map(|r| r.lsn) != Some(applied.next()) {
                continue;
            }
            for record in &suffix {
                if udr.ses[slave.index()]
                    .apply_replicated(partition, record)
                    .is_err()
                {
                    break;
                }
                udr.shippers[p].on_applied(slave, record.lsn);
            }
        }
    }

    /// Audit a served read against its policy's promise and update the
    /// session token: record kept/broken guarantees for the intermediate
    /// policies, then raise the session's monotonic-reads floor to the
    /// applied position the serving engine exposed.
    fn account_guarantees(udr: &mut Udr, ctx: &mut PipelineCtx, partition: PartitionId, se: SeId) {
        if ctx.quorum_served || ctx.consensus_served {
            // Quorum consults pick their own copy outside the read-policy
            // routing; auditing them against a policy that never ran would
            // report phantom violations. (`FrashConfig::validate` rejects
            // guarded policies under quorum replication anyway.)
            return;
        }
        if ctx.policy_downgraded {
            // The read was explicitly downgraded to nearest-copy under
            // overload: no freshness promise was made, so there is
            // nothing to audit — the downgrade was recorded when routing
            // took the trade. The session token still advances below.
            if let Some(token) = ctx.session.as_deref_mut() {
                let served_lsn = udr.ses[se.index()]
                    .last_lsn(partition)
                    .map(|l| l.raw())
                    .unwrap_or(0);
                token.observe_read(partition, served_lsn);
            }
            return;
        }
        let policy = match ctx.class {
            TxnClass::FrontEnd => udr.cfg.frash.fe_read_policy,
            TxnClass::Provisioning => udr.cfg.frash.ps_read_policy,
        };
        // What the read actually saw: the serving engine's applied LSN
        // (at least the ledger-confirmed position routing relied on).
        let served_lsn = udr.ses[se.index()]
            .last_lsn(partition)
            .map(|l| l.raw())
            .unwrap_or(0);
        match policy {
            ReadPolicy::BoundedStaleness { max_lag } => {
                let reference = ctx
                    .bounded_reference
                    .unwrap_or_else(|| Self::reference_lsn(udr, partition, ctx.server_site));
                udr.metrics
                    .guarantees
                    .record_bounded_read(reference.saturating_sub(served_lsn), max_lag);
            }
            ReadPolicy::SessionConsistent => {
                let required = ctx
                    .session
                    .as_ref()
                    .map(|token| token.required_lsn(partition))
                    .unwrap_or(0);
                udr.metrics
                    .guarantees
                    .record_session_read(served_lsn, required);
            }
            ReadPolicy::NearestCopy | ReadPolicy::MasterOnly => {}
        }
        if let Some(token) = ctx.session.as_deref_mut() {
            token.observe_read(partition, served_lsn);
        }
    }

    /// Record whether a read served by `se` returned stale data relative
    /// to the partition master.
    ///
    /// Quorum-served reads are audited against the *acknowledged* tail
    /// instead of the master's raw engine state: under quorum replication
    /// the master's log also holds partially-committed records whose
    /// write round never reached `w` — nobody was promised those, so
    /// serving behind them is not staleness. Up to the acked watermark
    /// the §5 ack carry-over plus the r+w>n overlap guarantee the
    /// consulted set contains a fresh copy, which is what makes the
    /// audit assertable outright.
    fn record_read_staleness(
        udr: &mut Udr,
        partition: PartitionId,
        uid: SubscriberUid,
        se: SeId,
        quorum_served: bool,
    ) {
        let master = udr.groups[partition.index()].master();
        if se == master {
            udr.metrics.staleness.record_master_read();
            return;
        }
        if !udr.ses[master.index()].is_up() {
            // No ground truth to compare against; count as a fresh slave
            // read (conservative).
            udr.metrics
                .staleness
                .record_slave_read(0, SimDuration::ZERO);
            return;
        }
        // Metadata-only comparison: borrow views, never clone payloads.
        let master_ver = udr.ses[master.index()]
            .engine(partition)
            .ok()
            .and_then(|e| e.committed_view(uid).map(|v| (v.lsn, v.committed_at)));
        if quorum_served {
            if let Some((m_lsn, _)) = master_ver {
                if m_lsn > udr.quorum_acked[partition.index()] {
                    // The master's version was never acknowledged: the
                    // read is as fresh as any promise made.
                    udr.metrics
                        .staleness
                        .record_slave_read(0, SimDuration::ZERO);
                    return;
                }
            }
        }
        let slave_ver = udr.ses[se.index()]
            .engine(partition)
            .ok()
            .and_then(|e| e.committed_view(uid).map(|v| (v.lsn, v.committed_at)));
        match (master_ver, slave_ver) {
            (Some((m_lsn, m_at)), Some((s_lsn, s_at))) if m_lsn > s_lsn => {
                let lag = m_lsn.raw() - s_lsn.raw();
                let age = m_at.duration_since(s_at);
                udr.metrics.staleness.record_slave_read(lag, age);
            }
            (Some((m_lsn, _)), None) => {
                udr.metrics
                    .staleness
                    .record_slave_read(m_lsn.raw().max(1), SimDuration::ZERO);
            }
            _ => udr
                .metrics
                .staleness
                .record_slave_read(0, SimDuration::ZERO),
        }
    }
}

/// Stage 4 — §3.2 decision 1: execute the operation inside a single-SE
/// transaction through the [`StorageBackend`] trait (SEs are
/// transactional; nothing spans elements).
pub struct StorageStage;

impl StorageStage {
    /// Run the stage: reach the routed SE and execute the operation in a
    /// single-element transaction through [`StorageBackend`].
    pub fn run(udr: &mut Udr, ctx: &mut PipelineCtx) -> Result<Option<Entry>, OpOutcome> {
        let se_id = ctx.target.expect("replication stage routed");
        let location = ctx.loc();

        if ctx.quorum_served || ctx.consensus_served {
            // The consult already paid the ensemble wait; serve a
            // committed read off the freshest consulted copy, with the
            // same per-operation semantics as the transactional path.
            let backend: &dyn StorageBackend = &udr.ses[se_id.index()];
            let costs = backend.cost_model();
            ctx.breakdown.storage += match ctx.op {
                LdapOp::SearchFilter { filter, .. } => {
                    costs.read + costs.read * filter.assertion_count() as u64
                }
                _ => costs.read,
            };
            ctx.crossed_backbone = backend.site() != ctx.server_site;
            return match backend.read_committed(location.partition, location.uid) {
                Ok(Some(entry)) => Ok(Self::shape_read(ctx.op, entry)),
                Ok(None) => Err(ctx.fail(UdrError::NotFound(location.uid))),
                Err(e) => Err(ctx.fail(e)),
            };
        }

        let se_site = udr.ses[se_id.index()].site();
        ctx.crossed_backbone = se_site != ctx.server_site;
        let Some(se_rtt) = sample_rtt(udr, ctx.server_site, se_site) else {
            ctx.breakdown = LatencyBreakdown {
                storage: udr.cfg.frash.op_timeout,
                ..LatencyBreakdown::default()
            };
            ctx.crossed_backbone = false;
            // A cut on the path is a *partition* failure and must say so
            // — fault campaigns distinguish "unavailable by design" from
            // bugs by the error type. Only genuine message loss (the pair
            // is connected, the datagram vanished) reads as a timeout.
            let err = if udr.net.reachable(ctx.server_site, se_site) {
                UdrError::Timeout
            } else {
                UdrError::Unreachable {
                    se: se_id,
                    reason: "partition",
                }
            };
            return Err(ctx.fail(err));
        };
        ctx.breakdown.storage += se_rtt;

        let isolation = udr.cfg.frash.intra_se_isolation;
        let commit_at = ctx.now + ctx.breakdown.total();
        let backend: &mut dyn StorageBackend = &mut udr.ses[se_id.index()];
        let (result, engine_cost, record) = Self::run_txn(
            backend,
            ctx.op,
            location.partition,
            location.uid,
            isolation,
            commit_at,
        );
        ctx.breakdown.storage += engine_cost;
        ctx.record = record;
        match result {
            Ok(value) => Ok(value),
            Err(e) => Err(ctx.fail(e)),
        }
    }

    /// Shape a committed entry per read-operation semantics — the quorum
    /// path's counterpart of the per-op dispatch in [`Self::run_txn`]:
    /// filters decide between the entry and an empty result, binds return
    /// no payload, compares return the asserted attribute or nothing.
    fn shape_read(op: &LdapOp, entry: Entry) -> Option<Entry> {
        match op {
            LdapOp::SearchFilter { filter, .. } => filter.matches(&entry).then_some(entry),
            LdapOp::Bind { .. } => None,
            LdapOp::Compare { attr, value, .. } => entry
                .get(*attr)
                .filter(|v| *v == value)
                .map(|v| [(*attr, v.clone())].into_iter().collect()),
            _ => Some(entry),
        }
    }

    /// One single-backend transaction covering the operation.
    #[allow(clippy::type_complexity)]
    fn run_txn(
        backend: &mut dyn StorageBackend,
        op: &LdapOp,
        partition: PartitionId,
        uid: SubscriberUid,
        isolation: udr_model::config::IsolationLevel,
        commit_at: SimTime,
    ) -> (UdrResult<Option<Entry>>, SimDuration, Option<CommitRecord>) {
        let costs = backend.cost_model().clone();
        let mut cost = SimDuration::ZERO;

        let txn = match backend.begin(partition, isolation) {
            Ok(t) => t,
            Err(e) => return (Err(e), cost, None),
        };
        let staged: UdrResult<Option<Entry>> = match op {
            LdapOp::Search { .. } => {
                cost += costs.read;
                match backend.read(partition, txn, uid) {
                    Ok(Some(entry)) => Ok(Some(entry)),
                    Ok(None) => Err(UdrError::NotFound(uid)),
                    Err(e) => Err(e),
                }
            }
            // Filtered search (§1/§2.2 BI clients): the located entry is
            // returned only when it satisfies the filter; a non-match is an
            // empty result set, not an error.
            LdapOp::SearchFilter { filter, .. } => {
                cost += costs.read + costs.read * filter.assertion_count() as u64;
                match backend.read(partition, txn, uid) {
                    Ok(Some(entry)) => Ok(if filter.matches(&entry) {
                        Some(entry)
                    } else {
                        None
                    }),
                    Ok(None) => Err(UdrError::NotFound(uid)),
                    Err(e) => Err(e),
                }
            }
            // Binds authenticate against the directory front-end; the
            // engine only verifies the entry exists (credential checking is
            // out of the paper's scope).
            LdapOp::Bind { .. } => {
                cost += costs.read;
                match backend.read(partition, txn, uid) {
                    Ok(Some(_)) => Ok(None),
                    Ok(None) => Err(UdrError::NotFound(uid)),
                    Err(e) => Err(e),
                }
            }
            // Compare: `Some(asserted attr)` = compareTrue, `None` =
            // compareFalse (RFC 2251 §4.10 mapped onto the payload).
            LdapOp::Compare { attr, value, .. } => {
                cost += costs.read;
                match backend.read(partition, txn, uid) {
                    Ok(Some(entry)) => Ok(entry
                        .get(*attr)
                        .filter(|v| *v == value)
                        .map(|v| [(*attr, v.clone())].into_iter().collect())),
                    Ok(None) => Err(UdrError::NotFound(uid)),
                    Err(e) => Err(e),
                }
            }
            LdapOp::Add { entry, .. } => {
                cost += costs.write;
                backend
                    .insert(partition, txn, uid, entry.clone())
                    .map(|_| None)
            }
            LdapOp::Modify { mods, .. } => {
                cost += costs.read + costs.write;
                backend.modify(partition, txn, uid, mods).map(|_| None)
            }
            LdapOp::Delete { .. } => {
                cost += costs.write;
                backend.delete(partition, txn, uid).map(|_| None)
            }
        };
        match staged {
            Ok(value) => match backend.commit(partition, txn, commit_at) {
                Ok((record, commit_cost)) => {
                    cost += commit_cost;
                    (Ok(value), cost, record)
                }
                Err(e) => (Err(e), cost, None),
            },
            Err(e) => {
                backend.abort(partition, txn);
                (Err(e), cost, None)
            }
        }
    }
}
