//! The §3.5 capacity arithmetic ("Huge"), reproduced as an explicit model
//! so experiment E6 can print the paper's numbers next to measured ones.
//!
//! Paper figures on "state-of-the-art HW" (2014):
//! * a 2-blade SE holds 2·10⁶ subscribers (≈ 200 GB partition, §2.3);
//! * ≤ 16 SEs per blade cluster ⇒ 32·10⁶ subscribers per cluster;
//! * ≤ 256 SEs per UDR NF ⇒ 512·10⁶ subscribers per NF;
//! * one LDAP server does 10⁶ indexed ops/s; ≤ 32 servers per cluster;
//! * 256 clusters ⇒ 9 216·10⁶ ops/s per NF (the paper's own arithmetic,
//!   which implies 36·10⁶ ops/s per cluster as printed);
//! * ≈ 18 ops/subscriber/s headroom; procedures cost 1–3 ops (IMS 5–6).

/// The capacity parameters of §3.5.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityModel {
    /// Subscribers one SE holds (paper: 2·10⁶ on 2 blades).
    pub subscribers_per_se: u64,
    /// Partition size in bytes (paper: ~200 GB, RAM-bound).
    pub partition_bytes: u64,
    /// Max SEs per blade cluster (paper: 16).
    pub max_ses_per_cluster: u32,
    /// Max SEs per UDR NF (paper: 256).
    pub max_ses_per_nf: u32,
    /// Indexed ops/s of one LDAP server (paper: 10⁶).
    pub ops_per_ldap_server: u64,
    /// Max LDAP servers per cluster (paper: 32).
    pub max_ldap_per_cluster: u32,
    /// Cluster ops/s *as printed in the paper* (36·10⁶; 32 × 10⁶ would be
    /// 32·10⁶ — we reproduce the printed figure and note the discrepancy).
    pub printed_cluster_ops: u64,
    /// Max blade clusters per NF (paper: 256).
    pub max_clusters_per_nf: u32,
}

impl Default for CapacityModel {
    fn default() -> Self {
        CapacityModel {
            subscribers_per_se: 2_000_000,
            partition_bytes: 200 * 1024 * 1024 * 1024,
            max_ses_per_cluster: 16,
            max_ses_per_nf: 256,
            ops_per_ldap_server: 1_000_000,
            max_ldap_per_cluster: 32,
            printed_cluster_ops: 36_000_000,
            max_clusters_per_nf: 256,
        }
    }
}

impl CapacityModel {
    /// Subscribers per blade cluster (paper: 32·10⁶, "enough for a small
    /// country").
    pub fn subscribers_per_cluster(&self) -> u64 {
        self.subscribers_per_se * u64::from(self.max_ses_per_cluster)
    }

    /// Subscribers per UDR NF (paper: 512·10⁶, "more than the population of
    /// the USA and roughly half the population in mainland China").
    pub fn subscribers_per_nf(&self) -> u64 {
        self.subscribers_per_se * u64::from(self.max_ses_per_nf)
    }

    /// LDAP ops/s per cluster from first principles (32 servers × 1M).
    pub fn derived_cluster_ops(&self) -> u64 {
        self.ops_per_ldap_server * u64::from(self.max_ldap_per_cluster)
    }

    /// LDAP ops/s per NF using the paper's printed per-cluster figure
    /// (paper: 9 216·10⁶ = 256 × 36·10⁶).
    pub fn nf_ops(&self) -> u64 {
        self.printed_cluster_ops * u64::from(self.max_clusters_per_nf)
    }

    /// Ops per subscriber per second the NF can absorb (paper: "around 18").
    pub fn ops_per_subscriber(&self) -> f64 {
        self.nf_ops() as f64 / self.subscribers_per_nf() as f64
    }

    /// Bytes of RAM per subscriber implied by the partition sizing.
    pub fn bytes_per_subscriber(&self) -> u64 {
        self.partition_bytes / self.subscribers_per_se
    }

    /// How many typical procedures per subscriber per second fit, given
    /// `ops_per_procedure` (1–3 typical, 5–6 IMS).
    pub fn procedures_per_subscriber(&self, ops_per_procedure: f64) -> f64 {
        self.ops_per_subscriber() / ops_per_procedure
    }

    /// Scale a measured single-threaded engine+codec op cost (ops/s) to the
    /// paper's server count, for the "measured" column of E6.
    pub fn scaled_nf_ops(&self, measured_ops_per_server: f64) -> f64 {
        measured_ops_per_server
            * f64::from(self.max_ldap_per_cluster)
            * f64::from(self.max_clusters_per_nf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_subscriber_arithmetic() {
        let m = CapacityModel::default();
        assert_eq!(m.subscribers_per_cluster(), 32_000_000);
        assert_eq!(m.subscribers_per_nf(), 512_000_000);
    }

    #[test]
    fn paper_ops_arithmetic() {
        let m = CapacityModel::default();
        // The paper prints 36M/cluster and 9,216M/NF; first principles give
        // 32M/cluster. Both are represented.
        assert_eq!(m.derived_cluster_ops(), 32_000_000);
        assert_eq!(m.nf_ops(), 9_216_000_000);
    }

    #[test]
    fn ops_per_subscriber_is_about_18() {
        let m = CapacityModel::default();
        let ops = m.ops_per_subscriber();
        assert!((ops - 18.0).abs() < 0.01, "ops/sub/s = {ops}");
    }

    #[test]
    fn bytes_per_subscriber_is_about_100kb() {
        let m = CapacityModel::default();
        let b = m.bytes_per_subscriber();
        assert!((100_000..=110_000).contains(&b), "bytes/sub = {b}");
    }

    #[test]
    fn procedure_headroom() {
        let m = CapacityModel::default();
        // With 3-op procedures, ≈ 6 procedures/sub/s; with 6-op IMS, ≈ 3.
        assert!((m.procedures_per_subscriber(3.0) - 6.0).abs() < 0.01);
        assert!((m.procedures_per_subscriber(6.0) - 3.0).abs() < 0.01);
    }

    #[test]
    fn scaling_measured_rates() {
        let m = CapacityModel::default();
        // A laptop core measuring 0.5M ops/s scales to 4,096M ops/s NF-wide.
        let scaled = m.scaled_nf_ops(500_000.0);
        assert!((scaled - 4.096e9).abs() < 1.0);
    }
}
