//! Client entry points for single LDAP operations.
//!
//! The actual end-to-end path — PoA access, data-location resolution,
//! replica routing, storage transaction, post-commit replication — lives
//! in [`pipeline`] as an explicit four-stage chain. This
//! module only builds a [`PipelineCtx`], runs the chain, enforces the
//! operation timeout and records metrics.

use udr_model::attrs::Entry;
use udr_model::config::TxnClass;
use udr_model::error::{UdrError, UdrResult};
use udr_model::ids::{SeId, SiteId};
use udr_model::qos::PriorityClass;
use udr_model::session::SessionToken;
use udr_model::time::SimDuration;
use udr_model::time::SimTime;

use udr_ldap::{FrameCursor, LdapOp};

use crate::pipeline::{self, LatencyBreakdown, PipelineCtx};
use crate::udr::Udr;

/// Result of one end-to-end operation.
#[derive(Debug, Clone)]
pub struct OpOutcome {
    /// The payload (entry for searches, `None` for writes) or the failure.
    pub result: UdrResult<Option<Entry>>,
    /// End-to-end latency as perceived by the client (excludes the client's
    /// own access network, matching §2.3's "excluding network delays"
    /// framing for the 10 ms target measured at the PoA boundary).
    pub latency: SimDuration,
    /// The SE that served the data portion, when one was reached.
    pub served_by: Option<SeId>,
    /// Whether reaching the SE crossed the inter-site backbone.
    pub crossed_backbone: bool,
    /// Per-stage attribution of `latency` (see [`LatencyBreakdown`] for
    /// the timeout-clamp caveat).
    pub breakdown: LatencyBreakdown,
}

impl OpOutcome {
    pub(crate) fn fail(err: UdrError, latency: SimDuration) -> Self {
        OpOutcome {
            result: Err(err),
            latency,
            served_by: None,
            crossed_backbone: false,
            breakdown: LatencyBreakdown::default(),
        }
    }

    /// Whether the operation succeeded.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

impl Udr {
    /// Execute one LDAP operation issued by a client of `class` attached at
    /// `client_site`, arriving at the local PoA at `now`.
    ///
    /// The operation traverses the
    /// [`AccessStage → LocationStage → ReplicationStage → StorageStage`](crate::pipeline)
    /// chain; this wrapper drains internal events up to `now` first, then
    /// applies the §2.3 operation timeout and records run metrics.
    pub fn execute_op(
        &mut self,
        op: &LdapOp,
        class: TxnClass,
        client_site: SiteId,
        now: SimTime,
    ) -> OpOutcome {
        self.execute_op_with_session(op, class, client_site, now, None)
    }

    /// [`Udr::execute_op`] for a client that maintains a
    /// [`SessionToken`]: the token gates session-consistent replica
    /// selection and is updated with what the operation wrote/observed.
    /// Pass `None` for tokenless (per-operation) clients.
    pub fn execute_op_with_session(
        &mut self,
        op: &LdapOp,
        class: TxnClass,
        client_site: SiteId,
        now: SimTime,
        session: Option<&mut SessionToken>,
    ) -> OpOutcome {
        let priority = PriorityClass::default_for_txn(class);
        self.execute_op_prioritized(op, class, priority, client_site, now, session)
    }

    /// [`Udr::execute_op_with_session`] with an explicit QoS priority
    /// class (network procedures derive it from their
    /// [`ProcedureKind`](udr_model::procedures::ProcedureKind) through
    /// the deployment's `QosConfig`; bare ops default to the
    /// transaction-class fallback).
    pub fn execute_op_prioritized(
        &mut self,
        op: &LdapOp,
        class: TxnClass,
        priority: PriorityClass,
        client_site: SiteId,
        now: SimTime,
        session: Option<&mut SessionToken>,
    ) -> OpOutcome {
        self.execute_op_internal(op, class, priority, client_site, now, session, None)
    }

    /// [`Udr::execute_op_prioritized`] for an operation that is part of a
    /// framed batch (§3.3.3 bulk provisioning): `frame` tracks which
    /// stations the batch already has an open frame on, and an op landing
    /// on one of them skips the per-message framing share of its service
    /// time. Admission, routing and results are per-op and identical to
    /// the unframed path — the frame changes cost, never semantics.
    #[allow(clippy::too_many_arguments)] // mirrors execute_op_prioritized + the frame
    pub fn execute_op_framed(
        &mut self,
        op: &LdapOp,
        class: TxnClass,
        priority: PriorityClass,
        client_site: SiteId,
        now: SimTime,
        session: Option<&mut SessionToken>,
        frame: &mut FrameCursor,
    ) -> OpOutcome {
        self.execute_op_internal(op, class, priority, client_site, now, session, Some(frame))
    }

    /// Execute `ops` as one framed batch arriving together at `now`: the
    /// batch travels as a single wire message
    /// ([`udr_ldap::FramedBatch`]) and comes back as per-op results, in
    /// order. Each op is admitted, routed and accounted individually;
    /// ops after the first on a station amortise the framing share.
    pub fn execute_op_batch(
        &mut self,
        ops: &[LdapOp],
        class: TxnClass,
        client_site: SiteId,
        now: SimTime,
    ) -> Vec<OpOutcome> {
        let priority = PriorityClass::default_for_txn(class);
        let mut frame = FrameCursor::new();
        ops.iter()
            .map(|op| {
                self.execute_op_internal(
                    op,
                    class,
                    priority,
                    client_site,
                    now,
                    None,
                    Some(&mut frame),
                )
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_op_internal(
        &mut self,
        op: &LdapOp,
        class: TxnClass,
        priority: PriorityClass,
        client_site: SiteId,
        now: SimTime,
        session: Option<&mut SessionToken>,
        frame: Option<&mut FrameCursor>,
    ) -> OpOutcome {
        self.advance_to(now);
        let timeout = self.cfg.frash.op_timeout;

        let span = self.tracer.begin_op(op_trace_name(op), now);
        let mut ctx = PipelineCtx::new(op, class, client_site, now)
            .with_session(session)
            .with_priority(priority)
            .with_frame(frame)
            .with_trace(span);
        let mut outcome = pipeline::run(self, &mut ctx);
        if outcome.is_ok() && outcome.latency > timeout {
            let breakdown = outcome.breakdown;
            outcome = OpOutcome::fail(UdrError::Timeout, timeout);
            outcome.breakdown = breakdown;
        }
        self.record_op_metrics(class, priority, &outcome);
        if span.is_active() {
            self.tracer
                .end_op(outcome.latency, outcome_trace_status(&outcome));
        }
        outcome
    }

    /// Record run metrics for one finished operation — shared by the
    /// per-op and framed entry points so both paths account identically.
    fn record_op_metrics(&mut self, class: TxnClass, priority: PriorityClass, outcome: &OpOutcome) {
        self.metrics.qos.record_offered(priority);
        match &outcome.result {
            Ok(_) => {
                self.metrics.ops_mut(class).success();
                self.metrics.latency_mut(class).record(outcome.latency);
                self.metrics.qos.record_completed(priority, outcome.latency);
                if outcome.served_by.is_some() {
                    if outcome.crossed_backbone {
                        self.metrics.backbone_ops += 1;
                    } else {
                        self.metrics.local_ops += 1;
                    }
                }
            }
            Err(e) if e.is_availability_failure() => {
                if matches!(e, UdrError::PartitionFrozen(_)) {
                    self.metrics.migration_blocked_ops += 1;
                }
                if let UdrError::Shed { class, reason } = e {
                    self.metrics.qos.record_shed(*class, *reason);
                } else {
                    self.metrics.qos.record_failed(priority);
                }
                self.metrics.ops_mut(class).availability_failure();
            }
            Err(_) => {
                self.metrics.qos.record_failed(priority);
                self.metrics.ops_mut(class).other_failure();
            }
        }
        if outcome.is_ok() {
            self.metrics.stage_latency.record(&outcome.breakdown);
        }
    }
}

/// Root-span name of an operation's trace.
fn op_trace_name(op: &LdapOp) -> &'static str {
    match op {
        LdapOp::Bind { .. } => "op.bind",
        LdapOp::Search { .. } => "op.search",
        LdapOp::SearchFilter { .. } => "op.search_filter",
        LdapOp::Compare { .. } => "op.compare",
        LdapOp::Add { .. } => "op.add",
        LdapOp::Modify { .. } => "op.modify",
        LdapOp::Delete { .. } => "op.delete",
    }
}

/// Compact status label recorded on an operation's root span (and in its
/// slow-op exemplar, when retained).
fn outcome_trace_status(outcome: &OpOutcome) -> &'static str {
    match &outcome.result {
        Ok(_) => "ok",
        Err(e) => match e {
            UdrError::InvalidIdentity { .. } => "invalid-identity",
            UdrError::UnknownIdentity(_) => "unknown-identity",
            UdrError::NotFound(_) => "not-found",
            UdrError::AlreadyExists(_) => "already-exists",
            UdrError::Unreachable { .. } => "unreachable",
            UdrError::NotMaster { .. } => "not-master",
            UdrError::WriteConflict(_) => "write-conflict",
            UdrError::TxnAborted { .. } => "txn-aborted",
            UdrError::TxnInvalid => "txn-invalid",
            UdrError::SeUnavailable(_) => "se-unavailable",
            UdrError::LocationStageSyncing => "dls-syncing",
            UdrError::PartitionFrozen(_) => "partition-frozen",
            UdrError::ReplicationFailed { .. } => "replication-failed",
            UdrError::Codec(_) => "codec",
            UdrError::Timeout => "timeout",
            UdrError::Overload => "overload",
            UdrError::Shed { .. } => "shed",
            UdrError::Config(_) => "config",
        },
    }
}
