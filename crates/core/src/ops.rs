//! The client entry point for operations and procedures: one request
//! builder, one `execute`.
//!
//! The actual end-to-end path — PoA access, data-location resolution,
//! replica routing, storage transaction, post-commit replication — lives
//! in [`pipeline`] as an explicit four-stage chain. This module builds a
//! [`PipelineCtx`] from an [`OpRequest`], runs the chain (once for a bare
//! op, per-op with fail-fast for a procedure), enforces the operation
//! timeout and records metrics.
//!
//! Historically every optional concern (session token, priority class,
//! batch framing) grew its own `execute_op_*` variant; tenancy would have
//! doubled that surface again. [`OpRequest`] replaces the whole family:
//!
//! ```text
//! udr.execute(OpRequest::new(&op).session(&mut tok).tenant(id))
//! udr.execute(OpRequest::procedure(kind, &ids).site(fe).at(now))
//! ```
//!
//! The old entry points survive as `#[deprecated]` shims delegating here.

use udr_model::attrs::Entry;
use udr_model::config::TxnClass;
use udr_model::error::{UdrError, UdrResult};
use udr_model::identity::IdentitySet;
use udr_model::ids::{SeId, SiteId};
use udr_model::procedures::ProcedureKind;
use udr_model::qos::PriorityClass;
use udr_model::session::SessionToken;
use udr_model::tenant::{Capability, TenantId};
use udr_model::time::SimDuration;
use udr_model::time::SimTime;

use udr_ldap::{FrameCursor, LdapOp};

use crate::pipeline::{self, LatencyBreakdown, PipelineCtx};
use crate::procedures::{procedure_ops, ProcedureOutcome};
use crate::udr::Udr;

/// Result of one end-to-end operation.
#[derive(Debug, Clone)]
pub struct OpOutcome {
    /// The payload (entry for searches, `None` for writes) or the failure.
    pub result: UdrResult<Option<Entry>>,
    /// End-to-end latency as perceived by the client (excludes the client's
    /// own access network, matching §2.3's "excluding network delays"
    /// framing for the 10 ms target measured at the PoA boundary).
    pub latency: SimDuration,
    /// The SE that served the data portion, when one was reached.
    pub served_by: Option<SeId>,
    /// Whether reaching the SE crossed the inter-site backbone.
    pub crossed_backbone: bool,
    /// Per-stage attribution of `latency` (see [`LatencyBreakdown`] for
    /// the timeout-clamp caveat).
    pub breakdown: LatencyBreakdown,
}

impl OpOutcome {
    pub(crate) fn fail(err: UdrError, latency: SimDuration) -> Self {
        OpOutcome {
            result: Err(err),
            latency,
            served_by: None,
            crossed_backbone: false,
            breakdown: LatencyBreakdown::default(),
        }
    }

    /// Whether the operation succeeded.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// What an [`OpRequest`] executes: a single LDAP operation or a whole
/// network procedure (its LDAP sequence, run fail-fast).
#[derive(Debug)]
pub enum OpPayload<'a> {
    /// One LDAP operation.
    Op(&'a LdapOp),
    /// One 3GPP network procedure for a subscriber.
    Procedure {
        /// The procedure to run.
        kind: ProcedureKind,
        /// The subscriber's identities.
        ids: &'a IdentitySet,
    },
}

/// One request against the UDR, with every optional concern as a builder
/// method instead of a positional parameter. Consumed by
/// [`Udr::execute`] — the single non-deprecated entry point.
///
/// Defaults: [`TxnClass::FrontEnd`], site 0, `t = 0`, no session, no
/// frame, [`TenantId::DEFAULT`], priority derived from the payload (the
/// deployment's procedure→class mapping, or the transaction-class
/// fallback for bare ops), capability derived from the payload (the
/// procedure's own capability, or direct-read/direct-write for bare ops).
#[derive(Debug)]
pub struct OpRequest<'a> {
    payload: OpPayload<'a>,
    class: TxnClass,
    priority: Option<PriorityClass>,
    site: SiteId,
    at: SimTime,
    session: Option<&'a mut SessionToken>,
    frame: Option<&'a mut FrameCursor>,
    tenant: TenantId,
    capability: Option<Capability>,
}

impl<'a> OpRequest<'a> {
    /// A request executing one LDAP operation.
    pub fn new(op: &'a LdapOp) -> Self {
        OpRequest {
            payload: OpPayload::Op(op),
            class: TxnClass::FrontEnd,
            priority: None,
            site: SiteId(0),
            at: SimTime::ZERO,
            session: None,
            frame: None,
            tenant: TenantId::DEFAULT,
            capability: None,
        }
    }

    /// A request running one network procedure for a subscriber.
    pub fn procedure(kind: ProcedureKind, ids: &'a IdentitySet) -> Self {
        OpRequest {
            payload: OpPayload::Procedure { kind, ids },
            class: TxnClass::FrontEnd,
            priority: None,
            site: SiteId(0),
            at: SimTime::ZERO,
            session: None,
            frame: None,
            tenant: TenantId::DEFAULT,
            capability: None,
        }
    }

    /// Set the issuing transaction class (FE or PS).
    #[must_use]
    pub fn class(mut self, class: TxnClass) -> Self {
        self.class = class;
        self
    }

    /// Override the QoS priority class (the default derives it from the
    /// payload).
    #[must_use]
    pub fn priority(mut self, priority: PriorityClass) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Set the site the issuing client is attached to.
    #[must_use]
    pub fn site(mut self, site: SiteId) -> Self {
        self.site = site;
        self
    }

    /// Set the arrival instant at the PoA.
    #[must_use]
    pub fn at(mut self, at: SimTime) -> Self {
        self.at = at;
        self
    }

    /// Attach the client's session-consistency token (session-consistent
    /// reads honour it; writes and reads raise its floors).
    #[must_use]
    pub fn session(mut self, session: &'a mut SessionToken) -> Self {
        self.session = Some(session);
        self
    }

    /// Attach an open framed-batch cursor (§3.3.3 bulk provisioning):
    /// ops landing on a station the frame already covers skip the
    /// per-message framing share of their service time. Admission,
    /// routing and results stay per-op — the frame changes cost, never
    /// semantics.
    #[must_use]
    pub fn framed(mut self, frame: &'a mut FrameCursor) -> Self {
        self.frame = Some(frame);
        self
    }

    /// Set the issuing tenant (default: [`TenantId::DEFAULT`], the
    /// single-operator deployment).
    #[must_use]
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Override the capability the request exercises (the default derives
    /// it from the payload; provisioning flows pass their
    /// [`Capability::Provisioning`] here).
    #[must_use]
    pub fn capability(mut self, capability: Capability) -> Self {
        self.capability = Some(capability);
        self
    }
}

/// Result of [`Udr::execute`]: an [`OpOutcome`] for a bare-op request, a
/// [`ProcedureOutcome`] for a procedure request.
#[derive(Debug, Clone)]
pub enum ExecOutcome {
    /// The request executed one LDAP operation.
    Op(OpOutcome),
    /// The request ran one network procedure.
    Procedure(ProcedureOutcome),
}

impl ExecOutcome {
    /// The bare-op outcome.
    ///
    /// # Panics
    ///
    /// Panics when the request ran a procedure.
    pub fn into_op(self) -> OpOutcome {
        match self {
            ExecOutcome::Op(out) => out,
            ExecOutcome::Procedure(_) => panic!("request ran a procedure, not a bare op"),
        }
    }

    /// The procedure outcome.
    ///
    /// # Panics
    ///
    /// Panics when the request executed a bare op.
    pub fn into_procedure(self) -> ProcedureOutcome {
        match self {
            ExecOutcome::Procedure(out) => out,
            ExecOutcome::Op(_) => panic!("request executed a bare op, not a procedure"),
        }
    }

    /// Whether the request succeeded end-to-end.
    pub fn is_ok(&self) -> bool {
        match self {
            ExecOutcome::Op(out) => out.is_ok(),
            ExecOutcome::Procedure(out) => out.success,
        }
    }

    /// End-to-end latency (sum of operation latencies for a procedure).
    pub fn latency(&self) -> SimDuration {
        match self {
            ExecOutcome::Op(out) => out.latency,
            ExecOutcome::Procedure(out) => out.latency,
        }
    }
}

impl Udr {
    /// Execute one request — the single entry point for client work.
    ///
    /// A bare-op request traverses the
    /// [`AccessStage → LocationStage → ReplicationStage → StorageStage`](crate::pipeline)
    /// chain once; a procedure request runs its LDAP sequence through the
    /// same chain sequentially, failing fast on the first failed
    /// operation (the network procedure would be aborted). Either way the
    /// wrapper drains internal events up to the arrival instant first,
    /// applies the §2.3 operation timeout per op, and records run
    /// metrics (including the per-tenant view).
    pub fn execute(&mut self, req: OpRequest<'_>) -> ExecOutcome {
        match req.payload {
            OpPayload::Op(op) => {
                let priority = req
                    .priority
                    .unwrap_or_else(|| PriorityClass::default_for_txn(req.class));
                let capability = req.capability.unwrap_or(if op.is_write() {
                    Capability::DirectWrite
                } else {
                    Capability::DirectRead
                });
                ExecOutcome::Op(self.execute_one(
                    op,
                    req.class,
                    priority,
                    req.site,
                    req.at,
                    req.tenant,
                    capability,
                    req.session,
                    req.frame,
                ))
            }
            OpPayload::Procedure { kind, ids } => {
                // Every operation of the procedure carries the procedure's
                // QoS priority class (deployment overrides first, then the
                // built-in telecom mapping) so admission control sheds
                // whole procedures coherently — and the procedure's
                // capability, so authorization does too.
                let priority = req.priority.unwrap_or_else(|| self.cfg.qos.class_for(kind));
                let capability = req.capability.unwrap_or(Capability::Procedure(kind));
                let ops = procedure_ops(kind, ids, req.site);
                let mut session = req.session;
                let mut frame = req.frame;
                let mut latency = SimDuration::ZERO;
                let mut ops_ok = 0u32;
                for op in &ops {
                    let outcome = self.execute_one(
                        op,
                        req.class,
                        priority,
                        req.site,
                        req.at + latency,
                        req.tenant,
                        capability,
                        session.as_deref_mut(),
                        frame.as_deref_mut(),
                    );
                    latency += outcome.latency;
                    match outcome.result {
                        Ok(_) => ops_ok += 1,
                        Err(e) => {
                            return ExecOutcome::Procedure(ProcedureOutcome {
                                kind,
                                success: false,
                                latency,
                                ops_ok,
                                ops_failed: 1,
                                failure: Some(e),
                            })
                        }
                    }
                }
                ExecOutcome::Procedure(ProcedureOutcome {
                    kind,
                    success: true,
                    latency,
                    ops_ok,
                    ops_failed: 0,
                    failure: None,
                })
            }
        }
    }

    /// Execute one LDAP operation issued by a client of `class` attached at
    /// `client_site`, arriving at the local PoA at `now`.
    #[deprecated(note = "build an OpRequest and call Udr::execute")]
    pub fn execute_op(
        &mut self,
        op: &LdapOp,
        class: TxnClass,
        client_site: SiteId,
        now: SimTime,
    ) -> OpOutcome {
        self.execute(OpRequest::new(op).class(class).site(client_site).at(now))
            .into_op()
    }

    /// `execute_op` for a client that maintains a [`SessionToken`].
    #[deprecated(note = "build an OpRequest and call Udr::execute")]
    pub fn execute_op_with_session(
        &mut self,
        op: &LdapOp,
        class: TxnClass,
        client_site: SiteId,
        now: SimTime,
        session: Option<&mut SessionToken>,
    ) -> OpOutcome {
        let mut req = OpRequest::new(op).class(class).site(client_site).at(now);
        if let Some(session) = session {
            req = req.session(session);
        }
        self.execute(req).into_op()
    }

    /// `execute_op_with_session` with an explicit QoS priority class.
    #[deprecated(note = "build an OpRequest and call Udr::execute")]
    pub fn execute_op_prioritized(
        &mut self,
        op: &LdapOp,
        class: TxnClass,
        priority: PriorityClass,
        client_site: SiteId,
        now: SimTime,
        session: Option<&mut SessionToken>,
    ) -> OpOutcome {
        let mut req = OpRequest::new(op)
            .class(class)
            .priority(priority)
            .site(client_site)
            .at(now);
        if let Some(session) = session {
            req = req.session(session);
        }
        self.execute(req).into_op()
    }

    /// `execute_op_prioritized` for an operation that is part of a framed
    /// batch.
    #[deprecated(note = "build an OpRequest and call Udr::execute")]
    #[allow(clippy::too_many_arguments)] // mirrors the legacy signature
    pub fn execute_op_framed(
        &mut self,
        op: &LdapOp,
        class: TxnClass,
        priority: PriorityClass,
        client_site: SiteId,
        now: SimTime,
        session: Option<&mut SessionToken>,
        frame: &mut FrameCursor,
    ) -> OpOutcome {
        let mut req = OpRequest::new(op)
            .class(class)
            .priority(priority)
            .site(client_site)
            .at(now)
            .framed(frame);
        if let Some(session) = session {
            req = req.session(session);
        }
        self.execute(req).into_op()
    }

    /// Execute `ops` as one framed batch arriving together at `now`: the
    /// batch travels as a single wire message
    /// ([`udr_ldap::FramedBatch`]) and comes back as per-op results, in
    /// order. Each op is admitted, routed and accounted individually;
    /// ops after the first on a station amortise the framing share.
    #[deprecated(note = "share one FrameCursor across OpRequest::framed calls to Udr::execute")]
    pub fn execute_op_batch(
        &mut self,
        ops: &[LdapOp],
        class: TxnClass,
        client_site: SiteId,
        now: SimTime,
    ) -> Vec<OpOutcome> {
        let mut frame = FrameCursor::new();
        ops.iter()
            .map(|op| {
                self.execute(
                    OpRequest::new(op)
                        .class(class)
                        .site(client_site)
                        .at(now)
                        .framed(&mut frame),
                )
                .into_op()
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_one(
        &mut self,
        op: &LdapOp,
        class: TxnClass,
        priority: PriorityClass,
        client_site: SiteId,
        now: SimTime,
        tenant: TenantId,
        capability: Capability,
        session: Option<&mut SessionToken>,
        frame: Option<&mut FrameCursor>,
    ) -> OpOutcome {
        self.advance_to(now);
        let timeout = self.cfg.frash.op_timeout;

        let span =
            self.tracer
                .begin_op_with(op_trace_name(op), now, Some(format!("tenant={tenant}")));
        let mut ctx = PipelineCtx::new(op, class, client_site, now)
            .with_session(session)
            .with_priority(priority)
            .with_tenant(tenant, capability)
            .with_frame(frame)
            .with_trace(span);
        let mut outcome = pipeline::run(self, &mut ctx);
        if outcome.is_ok() && outcome.latency > timeout {
            let breakdown = outcome.breakdown;
            outcome = OpOutcome::fail(UdrError::Timeout, timeout);
            outcome.breakdown = breakdown;
        }
        self.record_op_metrics(class, priority, tenant, &outcome);
        if span.is_active() {
            self.tracer
                .end_op(outcome.latency, outcome_trace_status(&outcome));
        }
        outcome
    }

    /// Record run metrics for one finished operation — shared by the
    /// per-op and framed paths so both account identically. The tenant ×
    /// class matrix mirrors the class counters, except that a
    /// [`UdrError::Forbidden`] denial is counted *only* as forbidden:
    /// it never entered the QoS domain, so it must not read as offered
    /// load or shed traffic anywhere.
    fn record_op_metrics(
        &mut self,
        class: TxnClass,
        priority: PriorityClass,
        tenant: TenantId,
        outcome: &OpOutcome,
    ) {
        if let Err(UdrError::Forbidden { .. }) = &outcome.result {
            self.metrics.qos.record_tenant_forbidden(tenant);
            self.metrics.ops_mut(class).other_failure();
            return;
        }
        self.metrics.qos.record_offered(priority);
        self.metrics.qos.record_tenant_offered(tenant, priority);
        match &outcome.result {
            Ok(_) => {
                self.metrics.ops_mut(class).success();
                self.metrics.latency_mut(class).record(outcome.latency);
                self.metrics.qos.record_completed(priority, outcome.latency);
                self.metrics
                    .qos
                    .record_tenant_completed(tenant, priority, outcome.latency);
                if outcome.served_by.is_some() {
                    if outcome.crossed_backbone {
                        self.metrics.backbone_ops += 1;
                    } else {
                        self.metrics.local_ops += 1;
                    }
                }
            }
            Err(e) if e.is_availability_failure() => {
                if matches!(e, UdrError::PartitionFrozen(_)) {
                    self.metrics.migration_blocked_ops += 1;
                }
                if let UdrError::Shed { class, reason } = e {
                    self.metrics.qos.record_shed(*class, *reason);
                    self.metrics.qos.record_tenant_shed(tenant, *class, *reason);
                } else {
                    self.metrics.qos.record_failed(priority);
                    self.metrics.qos.record_tenant_failed(tenant, priority);
                }
                self.metrics.ops_mut(class).availability_failure();
            }
            Err(_) => {
                self.metrics.qos.record_failed(priority);
                self.metrics.qos.record_tenant_failed(tenant, priority);
                self.metrics.ops_mut(class).other_failure();
            }
        }
        if outcome.is_ok() {
            self.metrics.stage_latency.record(&outcome.breakdown);
        }
    }
}

/// Root-span name of an operation's trace.
fn op_trace_name(op: &LdapOp) -> &'static str {
    match op {
        LdapOp::Bind { .. } => "op.bind",
        LdapOp::Search { .. } => "op.search",
        LdapOp::SearchFilter { .. } => "op.search_filter",
        LdapOp::Compare { .. } => "op.compare",
        LdapOp::Add { .. } => "op.add",
        LdapOp::Modify { .. } => "op.modify",
        LdapOp::Delete { .. } => "op.delete",
    }
}

/// Compact status label recorded on an operation's root span (and in its
/// slow-op exemplar, when retained).
fn outcome_trace_status(outcome: &OpOutcome) -> &'static str {
    match &outcome.result {
        Ok(_) => "ok",
        Err(e) => match e {
            UdrError::InvalidIdentity { .. } => "invalid-identity",
            UdrError::UnknownIdentity(_) => "unknown-identity",
            UdrError::NotFound(_) => "not-found",
            UdrError::AlreadyExists(_) => "already-exists",
            UdrError::Unreachable { .. } => "unreachable",
            UdrError::NotMaster { .. } => "not-master",
            UdrError::WriteConflict(_) => "write-conflict",
            UdrError::TxnAborted { .. } => "txn-aborted",
            UdrError::TxnInvalid => "txn-invalid",
            UdrError::SeUnavailable(_) => "se-unavailable",
            UdrError::LocationStageSyncing => "dls-syncing",
            UdrError::PartitionFrozen(_) => "partition-frozen",
            UdrError::ReplicationFailed { .. } => "replication-failed",
            UdrError::Codec(_) => "codec",
            UdrError::Timeout => "timeout",
            UdrError::Overload => "overload",
            UdrError::Shed { .. } => "shed",
            UdrError::Forbidden { .. } => "forbidden",
            UdrError::Config(_) => "config",
        },
    }
}
