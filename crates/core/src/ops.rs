//! The end-to-end operation path: FE/PS client → PoA → LDAP server →
//! data-location stage → Storage Element → back, with every §3.3 routing
//! decision and every latency contribution modelled.

use udr_dls::Resolution;
use udr_ldap::LdapOp;
use udr_model::attrs::Entry;
use udr_model::config::{ReadPolicy, ReplicationMode, TxnClass};
use udr_model::error::{UdrError, UdrResult};
use udr_model::identity::Identity;
use udr_model::ids::{PartitionId, ReplicaRole, SeId, SiteId, SubscriberUid};
use udr_model::time::{SimDuration, SimTime};
use udr_replication::quorum::quorum_write;
use udr_storage::CommitRecord;

use crate::udr::{Udr, UdrEvent};

/// Result of one end-to-end operation.
#[derive(Debug, Clone)]
pub struct OpOutcome {
    /// The payload (entry for searches, `None` for writes) or the failure.
    pub result: UdrResult<Option<Entry>>,
    /// End-to-end latency as perceived by the client (excludes the client's
    /// own access network, matching §2.3's "excluding network delays"
    /// framing for the 10 ms target measured at the PoA boundary).
    pub latency: SimDuration,
    /// The SE that served the data portion, when one was reached.
    pub served_by: Option<SeId>,
    /// Whether reaching the SE crossed the inter-site backbone.
    pub crossed_backbone: bool,
}

impl OpOutcome {
    fn fail(err: UdrError, latency: SimDuration) -> Self {
        OpOutcome { result: Err(err), latency, served_by: None, crossed_backbone: false }
    }

    /// Whether the operation succeeded.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

impl Udr {
    fn sample_rtt(&mut self, a: SiteId, b: SiteId) -> Option<SimDuration> {
        self.net.round_trip(a, b, &mut self.rng)
    }

    /// Execute one LDAP operation issued by a client of `class` attached at
    /// `client_site`, arriving at the local PoA at `now`.
    pub fn execute_op(
        &mut self,
        op: &LdapOp,
        class: TxnClass,
        client_site: SiteId,
        now: SimTime,
    ) -> OpOutcome {
        self.advance_to(now);
        let timeout = self.cfg.frash.op_timeout;

        let mut outcome = self.try_execute(op, class, client_site, now);
        if outcome.is_ok() && outcome.latency > timeout {
            outcome = OpOutcome::fail(UdrError::Timeout, timeout);
        }
        // Metrics.
        match &outcome.result {
            Ok(_) => {
                self.metrics.ops_mut(class).success();
                self.metrics.latency_mut(class).record(outcome.latency);
                if outcome.served_by.is_some() {
                    if outcome.crossed_backbone {
                        self.metrics.backbone_ops += 1;
                    } else {
                        self.metrics.local_ops += 1;
                    }
                }
            }
            Err(e) if e.is_availability_failure() => {
                self.metrics.ops_mut(class).availability_failure();
            }
            Err(_) => self.metrics.ops_mut(class).other_failure(),
        }
        outcome
    }

    fn try_execute(
        &mut self,
        op: &LdapOp,
        class: TxnClass,
        client_site: SiteId,
        now: SimTime,
    ) -> OpOutcome {
        let timeout = self.cfg.frash.op_timeout;
        let mut latency = SimDuration::ZERO;

        // Client ↔ PoA: the FE is always close to a PoA (§3.3.2), so this
        // is a LAN round trip.
        let Some(poa_rtt) = self.sample_rtt(client_site, client_site) else {
            return OpOutcome::fail(UdrError::Timeout, timeout);
        };
        latency += poa_rtt;

        // PoA balances over the cluster's LDAP servers.
        let cluster_idx = self.pick_cluster(client_site);
        let Some(server_id) = self.clusters[cluster_idx].poa.pick() else {
            return OpOutcome::fail(UdrError::Overload, latency);
        };
        let server_site = self.clusters[cluster_idx].site;

        // Protocol processing (queueing + service) at the server.
        let Some(done) = self.servers[server_id.index()].admit(op, now) else {
            return OpOutcome::fail(UdrError::Overload, latency);
        };
        latency += done.duration_since(now);

        // Local data-location resolution (§3.3.1 decision 1).
        let identity = op.dn().identity().clone();
        let location = match self.clusters[cluster_idx].stage.resolve(&identity, now, None) {
            Resolution::Found(loc) => loc,
            Resolution::Unknown => {
                return OpOutcome::fail(UdrError::UnknownIdentity(identity.to_string()), latency)
            }
            Resolution::Syncing => {
                return OpOutcome::fail(UdrError::LocationStageSyncing, latency)
            }
            Resolution::NeedsProbe { ses_to_probe } => {
                match self.probe_location(cluster_idx, &identity, ses_to_probe, server_site) {
                    Ok((loc, probe_latency)) => {
                        latency += probe_latency;
                        loc
                    }
                    Err((e, probe_latency)) => {
                        return OpOutcome::fail(e, latency + probe_latency)
                    }
                }
            }
        };

        // Quorum mode handles reads through the ensemble, not one copy.
        if let ReplicationMode::Quorum { r, .. } = self.cfg.frash.replication {
            if !op.is_write() {
                return self.quorum_read(op, location.partition, location.uid, server_site, latency, r);
            }
        }

        // Route to a storage element per the class read policy / mastership.
        let read_policy = match class {
            TxnClass::FrontEnd => self.cfg.frash.fe_read_policy,
            TxnClass::Provisioning => self.cfg.frash.ps_read_policy,
        };
        let target = if op.is_write() {
            self.write_target(location.partition, server_site, now)
        } else {
            self.read_target(location.partition, server_site, read_policy)
        };
        let Some(se_id) = target else {
            let master = self.groups[location.partition.index()].master();
            return OpOutcome::fail(
                UdrError::Unreachable { se: master, reason: "partition" },
                latency + timeout,
            );
        };
        let se_site = self.ses[se_id.index()].site();
        let crossed = se_site != server_site;
        let Some(se_rtt) = self.sample_rtt(server_site, se_site) else {
            return OpOutcome::fail(UdrError::Timeout, timeout);
        };
        latency += se_rtt;

        // Execute against the engine.
        let (result, engine_cost, record) =
            self.run_on_se(op, se_id, location.partition, location.uid, now + latency);
        latency += engine_cost;
        let mut result = match result {
            Ok(v) => v,
            Err(e) => return OpOutcome::fail(e, latency),
        };

        // Replication effects for committed writes.
        if let Some(record) = record {
            match self.replicate_after_commit(location.partition, se_id, &record, now + latency) {
                Ok(extra) => latency += extra,
                Err(e) => {
                    self.metrics.partial_commits += 1;
                    return OpOutcome::fail(e, latency);
                }
            }
        }

        // Staleness accounting for reads.
        if !op.is_write() {
            self.record_read_staleness(location.partition, location.uid, se_id);
            // Attribute projection.
            if let LdapOp::Search { attrs, .. } | LdapOp::SearchFilter { attrs, .. } = op {
                if !attrs.is_empty() {
                    if let Some(entry) = result.take() {
                        let projected: Entry = entry
                            .iter()
                            .filter(|(id, _)| attrs.contains(id))
                            .map(|(id, v)| (*id, v.clone()))
                            .collect();
                        result = Some(projected);
                    }
                }
            }
        }

        OpOutcome { result: Ok(result), latency, served_by: Some(se_id), crossed_backbone: crossed }
    }

    /// Cached-stage miss: broadcast a location probe to the SEs (§3.5's
    /// scalability hurdle). The answer comes from the owning partition's
    /// master; absence is known only after the slowest reachable SE answers.
    fn probe_location(
        &mut self,
        cluster_idx: usize,
        identity: &Identity,
        ses_to_probe: usize,
        from_site: SiteId,
    ) -> Result<(udr_dls::Location, SimDuration), (UdrError, SimDuration)> {
        self.metrics.dls_probes += ses_to_probe as u64;
        match self.authority.peek(identity) {
            Some(loc) => {
                // The probe fans out in parallel; the client proceeds as
                // soon as the owning partition's master answers positively.
                let owner = self.groups[loc.partition.index()].master();
                if !self.ses[owner.index()].is_up() {
                    return Err((UdrError::SeUnavailable(owner), SimDuration::ZERO));
                }
                let owner_site = self.ses[owner.index()].site();
                let owner_rtt = self.sample_rtt(from_site, owner_site).ok_or((
                    UdrError::Unreachable { se: owner, reason: "partition" },
                    self.cfg.frash.op_timeout,
                ))?;
                self.clusters[cluster_idx].stage.fill_cache(identity, loc);
                Ok((loc, owner_rtt))
            }
            None => {
                // Absence is known only once the slowest reachable probed SE
                // has answered "not here".
                let sites: Vec<SiteId> =
                    self.ses.iter().take(ses_to_probe).map(|se| se.site()).collect();
                let mut worst = SimDuration::ZERO;
                for site in sites {
                    if let Some(rtt) = self.sample_rtt(from_site, site) {
                        worst = worst.max(rtt);
                    }
                }
                Err((UdrError::UnknownIdentity(identity.to_string()), worst))
            }
        }
    }

    /// Pick the SE serving a read under a policy.
    fn read_target(
        &self,
        partition: PartitionId,
        from_site: SiteId,
        policy: ReadPolicy,
    ) -> Option<SeId> {
        let group = &self.groups[partition.index()];
        let master = group.master();
        let usable = |se: SeId| {
            self.ses[se.index()].is_up()
                && self.net.reachable(from_site, self.ses[se.index()].site())
        };
        match policy {
            ReadPolicy::MasterOnly => usable(master).then_some(master),
            ReadPolicy::NearestCopy => {
                // Same-site copy first (§3.3.2: "all IP packet exchanges
                // take place over a fast local network"), then the master,
                // then any reachable copy.
                let same_site = group
                    .members()
                    .iter()
                    .copied()
                    .filter(|se| self.ses[se.index()].site() == from_site && usable(*se))
                    .min();
                same_site
                    .or_else(|| usable(master).then_some(master))
                    .or_else(|| group.members().iter().copied().filter(|se| usable(*se)).min())
            }
        }
    }

    /// Pick the SE taking a write; under multi-master an acting master is
    /// elected on the client's side of a partition (§5).
    fn write_target(
        &mut self,
        partition: PartitionId,
        from_site: SiteId,
        now: SimTime,
    ) -> Option<SeId> {
        let group = &self.groups[partition.index()];
        let master = group.master();
        let master_ok = self.ses[master.index()].is_up()
            && self.net.reachable(from_site, self.ses[master.index()].site());
        if master_ok {
            return Some(master);
        }
        if self.cfg.frash.replication != ReplicationMode::MultiMaster {
            return None;
        }
        // Acting master: same-site preferred, then lowest SeId — a
        // deterministic choice, so every client on this side of the cut
        // elects the same copy.
        let candidate = group
            .members()
            .iter()
            .copied()
            .filter(|se| {
                self.ses[se.index()].is_up()
                    && self.net.reachable(from_site, self.ses[se.index()].site())
            })
            .min_by_key(|se| {
                (self.ses[se.index()].site() != from_site, *se)
            })?;
        if self.ses[candidate.index()].role(partition) != Some(ReplicaRole::Master) {
            let _ = self.ses[candidate.index()].set_role(partition, ReplicaRole::Master);
        }
        let diverged_at = self.earliest_active_cut().unwrap_or(now);
        self.diverged.entry(partition).or_insert(diverged_at);
        Some(candidate)
    }

    /// Run the op inside a single-SE transaction (§3.2 decision 1: SEs are
    /// transactional; nothing spans elements here).
    #[allow(clippy::type_complexity)]
    fn run_on_se(
        &mut self,
        op: &LdapOp,
        se_id: SeId,
        partition: PartitionId,
        uid: SubscriberUid,
        commit_at: SimTime,
    ) -> (UdrResult<Option<Entry>>, SimDuration, Option<CommitRecord>) {
        let isolation = self.cfg.frash.intra_se_isolation;
        let se = &mut self.ses[se_id.index()];
        let costs = se.cost_model().clone();
        let mut cost = SimDuration::ZERO;

        let txn = match se.begin(partition, isolation) {
            Ok(t) => t,
            Err(e) => return (Err(e), cost, None),
        };
        let staged: UdrResult<Option<Entry>> = match op {
            LdapOp::Search { .. } => {
                cost += costs.read;
                match se.read(partition, txn, uid) {
                    Ok(Some(entry)) => Ok(Some(entry)),
                    Ok(None) => Err(UdrError::NotFound(uid)),
                    Err(e) => Err(e),
                }
            }
            // Filtered search (§1/§2.2 BI clients): the located entry is
            // returned only when it satisfies the filter; a non-match is an
            // empty result set, not an error.
            LdapOp::SearchFilter { filter, .. } => {
                cost += costs.read + costs.read * filter.assertion_count() as u64;
                match se.read(partition, txn, uid) {
                    Ok(Some(entry)) => {
                        Ok(if filter.matches(&entry) { Some(entry) } else { None })
                    }
                    Ok(None) => Err(UdrError::NotFound(uid)),
                    Err(e) => Err(e),
                }
            }
            // Binds authenticate against the directory front-end; the
            // engine only verifies the entry exists (credential checking is
            // out of the paper's scope).
            LdapOp::Bind { .. } => {
                cost += costs.read;
                match se.read(partition, txn, uid) {
                    Ok(Some(_)) => Ok(None),
                    Ok(None) => Err(UdrError::NotFound(uid)),
                    Err(e) => Err(e),
                }
            }
            // Compare: `Some(asserted attr)` = compareTrue, `None` =
            // compareFalse (RFC 2251 §4.10 mapped onto the payload).
            LdapOp::Compare { attr, value, .. } => {
                cost += costs.read;
                match se.read(partition, txn, uid) {
                    Ok(Some(entry)) => Ok(entry
                        .get(*attr)
                        .filter(|v| *v == value)
                        .map(|v| [(*attr, v.clone())].into_iter().collect())),
                    Ok(None) => Err(UdrError::NotFound(uid)),
                    Err(e) => Err(e),
                }
            }
            LdapOp::Add { entry, .. } => {
                cost += costs.write;
                se.insert(partition, txn, uid, entry.clone()).map(|_| None)
            }
            LdapOp::Modify { mods, .. } => {
                cost += costs.read + costs.write;
                se.modify(partition, txn, uid, mods).map(|_| None)
            }
            LdapOp::Delete { .. } => {
                cost += costs.write;
                se.delete(partition, txn, uid).map(|_| None)
            }
        };
        match staged {
            Ok(value) => match se.commit(partition, txn, commit_at) {
                Ok((record, commit_cost)) => {
                    cost += commit_cost;
                    (Ok(value), cost, record)
                }
                Err(e) => (Err(e), cost, None),
            },
            Err(e) => {
                se.abort(partition, txn);
                (Err(e), cost, None)
            }
        }
    }

    /// Propagate a committed record per the replication mode; returns the
    /// extra commit latency the client observes.
    fn replicate_after_commit(
        &mut self,
        partition: PartitionId,
        master: SeId,
        record: &CommitRecord,
        now: SimTime,
    ) -> UdrResult<SimDuration> {
        let p = partition.index();
        let master_site = self.ses[master.index()].site();
        let slaves: Vec<SeId> = self.groups[p]
            .members()
            .iter()
            .copied()
            .filter(|se| *se != master)
            .collect();

        // Asynchronous shipping happens in every mode (it is the stream the
        // slaves replay); the mode decides what the commit *waits* for.
        let mut slave_rtts: Vec<(SeId, Option<SimDuration>)> = Vec::with_capacity(slaves.len());
        for slave in &slaves {
            let slave_site = self.ses[slave.index()].site();
            let up = self.ses[slave.index()].is_up();
            let delay = if up { self.net.send(master_site, slave_site, &mut self.rng).delay() } else { None };
            if let Some(d) = self.shippers[p].ship(*slave, record, now, delay) {
                self.events.schedule_at(
                    d.arrives,
                    UdrEvent::ReplDeliver { partition, slave: d.slave, record: d.record },
                );
            }
            // The ack round trip is twice the one-way delay.
            slave_rtts.push((*slave, delay.map(|d| d * 2)));
        }

        match self.cfg.frash.replication {
            ReplicationMode::AsyncMasterSlave | ReplicationMode::MultiMaster => {
                Ok(SimDuration::ZERO)
            }
            ReplicationMode::DualInSequence => {
                // §5: apply in sequence to two replicas, commit when both
                // succeed. The wait is the designated second copy's ack.
                match slave_rtts.iter().find(|(_, rtt)| rtt.is_some()) {
                    Some((_, Some(rtt))) => Ok(*rtt),
                    _ => Err(UdrError::ReplicationFailed { acked: 1, required: 2 }),
                }
            }
            ReplicationMode::Quorum { w, .. } => {
                // Master counts as the first ack at its local commit cost.
                let mut responses = vec![(master, Some(SimDuration::ZERO))];
                responses.extend(slave_rtts);
                let out = quorum_write(&responses, w as usize);
                if out.committed {
                    Ok(out.latency)
                } else {
                    Err(UdrError::ReplicationFailed {
                        acked: out.applied.len(),
                        required: w as usize,
                    })
                }
            }
        }
    }

    /// Quorum read: consult `r` replicas, serve the freshest (§5 Cassandra
    /// comparison).
    fn quorum_read(
        &mut self,
        op: &LdapOp,
        partition: PartitionId,
        uid: SubscriberUid,
        from_site: SiteId,
        mut latency: SimDuration,
        r: u8,
    ) -> OpOutcome {
        let members: Vec<SeId> = self.groups[partition.index()].members().to_vec();
        let mut responders: Vec<(SeId, SimDuration)> = Vec::new();
        for se in members {
            if !self.ses[se.index()].is_up() {
                continue;
            }
            let site = self.ses[se.index()].site();
            if let Some(rtt) = self.sample_rtt(from_site, site) {
                responders.push((se, rtt));
            }
        }
        responders.sort_by_key(|(_, rtt)| *rtt);
        if responders.len() < r as usize {
            return OpOutcome::fail(
                UdrError::ReplicationFailed { acked: responders.len(), required: r as usize },
                latency + self.cfg.frash.op_timeout,
            );
        }
        let consulted = &responders[..r as usize];
        latency += consulted.last().map(|(_, rtt)| *rtt).unwrap_or(SimDuration::ZERO);
        // Freshest copy among the consulted wins.
        let (serving, _) = consulted
            .iter()
            .max_by_key(|(se, _)| {
                self.ses[se.index()].last_lsn(partition).unwrap_or(udr_storage::Lsn::ZERO)
            })
            .copied()
            .expect("r >= 1 consulted");
        let cost = self.ses[serving.index()].cost_model().read;
        latency += cost;
        let entry = match self.ses[serving.index()].read_committed(partition, uid) {
            Ok(Some(e)) => e,
            Ok(None) => return OpOutcome::fail(UdrError::NotFound(uid), latency),
            Err(e) => return OpOutcome::fail(e, latency),
        };
        self.record_read_staleness(partition, uid, serving);
        let crossed = self.ses[serving.index()].site() != from_site;
        let result = if let LdapOp::Search { attrs, .. } | LdapOp::SearchFilter { attrs, .. } = op {
            if attrs.is_empty() {
                Some(entry)
            } else {
                Some(entry.iter().filter(|(id, _)| attrs.contains(id)).map(|(id, v)| (*id, v.clone())).collect())
            }
        } else {
            Some(entry)
        };
        OpOutcome { result: Ok(result), latency, served_by: Some(serving), crossed_backbone: crossed }
    }

    /// Record whether a read served by `se` returned stale data relative to
    /// the partition master.
    fn record_read_staleness(&mut self, partition: PartitionId, uid: SubscriberUid, se: SeId) {
        let master = self.groups[partition.index()].master();
        if se == master {
            self.metrics.staleness.record_master_read();
            return;
        }
        if !self.ses[master.index()].is_up() {
            // No ground truth to compare against; count as a fresh slave
            // read (conservative).
            self.metrics.staleness.record_slave_read(0, SimDuration::ZERO);
            return;
        }
        let master_ver = self.ses[master.index()]
            .engine(partition)
            .ok()
            .and_then(|e| e.committed_version(uid).cloned());
        let slave_ver = self.ses[se.index()]
            .engine(partition)
            .ok()
            .and_then(|e| e.committed_version(uid).cloned());
        match (master_ver, slave_ver) {
            (Some(m), Some(s)) if m.lsn > s.lsn => {
                let lag = m.lsn.raw() - s.lsn.raw();
                let age = m.committed_at.duration_since(s.committed_at);
                self.metrics.staleness.record_slave_read(lag, age);
            }
            (Some(m), None) => {
                self.metrics.staleness.record_slave_read(m.lsn.raw().max(1), SimDuration::ZERO);
            }
            _ => self.metrics.staleness.record_slave_read(0, SimDuration::ZERO),
        }
    }
}
