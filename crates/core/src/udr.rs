//! The UDR network function: the assembled system of Figure 2.
//!
//! A [`Udr`] owns the simulated network, every blade cluster (PoA + LDAP
//! servers + data-location stage), every Storage Element, the replication
//! groups and shipping channels, and an event queue carrying replication
//! deliveries, durability snapshots, fault injections and failovers.
//!
//! Drivers (examples, tests, experiments) interleave client calls with
//! virtual time: every client entry point first drains internal events up
//! to the call instant, so replication lag, partitions and crashes unfold
//! deterministically relative to traffic.

use std::collections::{BTreeMap, HashMap};

use udr_dls::{DataLocationStage, IdentityLocationMap, PlacementContext, ShardMap};
use udr_ldap::{LdapServer, PointOfAccess};
use udr_model::config::{DurabilityMode, LocatorKind, Pacelc, ReplicationMode, TxnClass};
use udr_model::error::UdrResult;
use udr_model::ids::{ClusterId, LdapServerId, PartitionId, PoaId, ReplicaRole, SeId, SiteId};
use udr_model::qos::PriorityClass;
use udr_model::tenant::{TenantDirectory, TenantGrant, TenantId};
use udr_model::time::{SimDuration, SimTime};
use udr_qos::{AdmissionController, ClassBuckets, TokenBucket};
use udr_replication::multimaster::{merge_branches, restoration_duration};
use udr_replication::{AsyncShipper, MigrationChannel, MigrationState, ReplicationGroup};
use udr_sim::faults::{Fault, FaultSchedule, FaultScript};
use udr_sim::net::{Cut, CutHandle, Degrade, DegradeHandle, Network, Topology};
use udr_sim::{LaneClass, ShardedPump, SimRng};
use udr_storage::{CommitRecord, Lsn, StorageElement};
use udr_trace::{TraceExport, Tracer};

use crate::config::UdrConfig;
use crate::consensus_mode::{ConsensusGroup, CONSENSUS_TICK_INTERVAL};
use crate::metrics_agg::UdrMetrics;
use crate::rebalance::MigrationPlan;

/// How often stalled replication channels retry catch-up.
pub(crate) const CATCHUP_INTERVAL: SimDuration = SimDuration::from_millis(200);
/// Per-record cost of the consistency-restoration scan (§5 merge).
const MERGE_COST_PER_RECORD: SimDuration = SimDuration::from_micros(5);
/// Catch-up lag (records) at which a master move freezes writes for the
/// final hand-off window.
const MIGRATION_FREEZE_LAG: u64 = 64;
/// Lag at which a slave-copy move may cut over: the remainder flows over
/// the group's ordinary replica channel after the swap, no freeze needed.
const MIGRATION_SLAVE_CUTOVER_LAG: u64 = 32;
/// Fixed setup cost of a migration snapshot transfer.
const MIGRATION_SEED_BASE: SimDuration = SimDuration::from_millis(50);
/// Snapshot transfer throughput (bytes per microsecond ≙ 100 MB/s).
const MIGRATION_SEED_BYTES_PER_US: u64 = 100;

/// One blade cluster: PoA, LDAP servers and a data-location stage (§3.4.1).
pub struct Cluster {
    /// Cluster identity.
    pub id: ClusterId,
    /// Hosting site.
    pub site: SiteId,
    /// The L4 balancer.
    pub poa: PointOfAccess,
    /// LDAP servers (indices into the deployment's server table).
    pub servers: Vec<LdapServerId>,
    /// The local data-location stage instance.
    pub stage: DataLocationStage,
}

/// Internal events driving the deployment between client calls.
#[derive(Debug, Clone)]
pub enum UdrEvent {
    /// A replicated commit record arrives at a slave.
    ReplDeliver {
        /// Partition replicated.
        partition: PartitionId,
        /// Destination slave.
        slave: SeId,
        /// The record.
        record: CommitRecord,
    },
    /// A coalesced batch of commit records arrives at a slave as one
    /// message (batched shipping).
    ReplDeliverBatch {
        /// Partition replicated.
        partition: PartitionId,
        /// Destination slave.
        slave: SeId,
        /// The records, in LSN order.
        records: Vec<CommitRecord>,
        /// Trace of the operation that opened the batch (0 = untraced),
        /// so a shipped batch's arrival shows up on the opener's track.
        trace: u64,
    },
    /// A shipping batch's linger timer fires: flush the channel's open
    /// batch if it is still the same generation.
    ShipFlush {
        /// Partition whose channel lingered.
        partition: PartitionId,
        /// Destination slave.
        slave: SeId,
        /// Open-batch generation the timer was armed for.
        seq: u64,
    },
    /// Periodic durability snapshot on one SE.
    SnapshotTick {
        /// The SE to snapshot.
        se: SeId,
    },
    /// Periodic catch-up pass over all stalled replication channels.
    CatchupTick,
    /// A network partition starts.
    PartitionStart {
        /// The cuts to apply.
        cuts: Vec<Cut>,
        /// How long until heal.
        duration: SimDuration,
    },
    /// A network partition heals.
    PartitionHeal {
        /// Handles returned when the cuts were applied.
        handles: Vec<CutHandle>,
    },
    /// A link degradation (one-way loss, WAN brown-out) starts.
    DegradeStart {
        /// The degradation to apply.
        degrade: Degrade,
        /// How long until it clears.
        duration: SimDuration,
    },
    /// A link degradation clears.
    DegradeHeal {
        /// Handle returned when the degradation was applied.
        handle: DegradeHandle,
    },
    /// A storage element crashes.
    SeCrash {
        /// The failing SE.
        se: SeId,
    },
    /// A storage element restores from local disk.
    SeRestore {
        /// The recovering SE.
        se: SeId,
    },
    /// Failover detection fires for a partition whose master crashed.
    FailoverCheck {
        /// The partition to check.
        partition: PartitionId,
    },
    /// A live partition migration begins: snapshot-seed the target and
    /// open its migration channel.
    MigrationStart {
        /// Index into the deployment's migration ledger.
        id: u64,
    },
    /// A migration's atomic cutover: swap group membership, release the
    /// retired copy, bump the shard-map epoch.
    MigrationCutover {
        /// Index into the deployment's migration ledger.
        id: u64,
    },
    /// A migration is abandoned (fault on an endpoint or the path): the
    /// target's partial copy is dropped and the epoch does not advance.
    MigrationAbort {
        /// Index into the deployment's migration ledger.
        id: u64,
    },
    /// A record shipped over a migration channel arrives at the target.
    MigrationDeliver {
        /// Index into the deployment's migration ledger.
        id: u64,
        /// The record.
        record: CommitRecord,
    },
    /// Consensus mode: one partition ensemble's protocol timer fires
    /// (election timeouts, heartbeats, retries).
    ConsensusTick {
        /// The partition whose ensemble ticks.
        partition: PartitionId,
    },
    /// Consensus mode: a protocol message arrives at an ensemble member.
    ConsensusDeliver {
        /// The partition whose ensemble the message belongs to.
        partition: PartitionId,
        /// Destination node index within the ensemble.
        to: usize,
        /// Sending node index within the ensemble.
        from: usize,
        /// The protocol message (boxed: large relative to other events).
        msg: Box<udr_consensus::Message>,
        /// Trace of the operation this message works for (0 = protocol
        /// background), propagated from the submit through every response
        /// so a commit round reads as one causal chain.
        trace: u64,
    },
}

impl UdrEvent {
    /// Schedule-time lane classification for the sharded pump
    /// ([`udr_sim::ShardedPump`]): partition-scoped events (replication
    /// deliveries, batch flushes, failover checks) are local to lane
    /// `partition % lanes`; everything that touches shared deployment
    /// state — the network fabric, whole SEs, the periodic sweeps,
    /// migrations spanning two partitions — serializes through the
    /// cross-lane queue. The merged `(time, seq)` order is identical
    /// either way; classification shrinks per-heap sizes and marks
    /// which events a lane-isolated drain may run concurrently.
    pub fn lane_class(&self) -> LaneClass {
        match self {
            UdrEvent::ReplDeliver { partition, .. }
            | UdrEvent::ReplDeliverBatch { partition, .. }
            | UdrEvent::ShipFlush { partition, .. }
            | UdrEvent::FailoverCheck { partition }
            | UdrEvent::ConsensusTick { partition }
            | UdrEvent::ConsensusDeliver { partition, .. } => LaneClass::Local(partition.index()),
            UdrEvent::SnapshotTick { .. }
            | UdrEvent::CatchupTick
            | UdrEvent::PartitionStart { .. }
            | UdrEvent::PartitionHeal { .. }
            | UdrEvent::DegradeStart { .. }
            | UdrEvent::DegradeHeal { .. }
            | UdrEvent::SeCrash { .. }
            | UdrEvent::SeRestore { .. }
            | UdrEvent::MigrationStart { .. }
            | UdrEvent::MigrationCutover { .. }
            | UdrEvent::MigrationAbort { .. }
            | UdrEvent::MigrationDeliver { .. } => LaneClass::Cross,
        }
    }
}

/// One tracked live migration (see [`MigrationPlan`] for the intent and
/// [`MigrationState`] for the lifecycle).
pub(crate) struct MigrationTask {
    pub(crate) plan: MigrationPlan,
    pub(crate) state: MigrationState,
    /// The shipping ledger; `None` until [`UdrEvent::MigrationStart`]
    /// fires (and again after a terminal state).
    pub(crate) channel: Option<MigrationChannel>,
}

/// The assembled UDR network function.
pub struct Udr {
    pub(crate) cfg: UdrConfig,
    /// The simulated IP network (public so experiments can inspect stats).
    pub net: Network,
    pub(crate) rng: SimRng,
    pub(crate) events: ShardedPump<UdrEvent>,
    pub(crate) ses: Vec<StorageElement>,
    pub(crate) clusters: Vec<Cluster>,
    /// Per-cluster QoS admission controllers (parallel to `clusters`).
    pub(crate) qos: Vec<AdmissionController>,
    /// Per-tenant rate-budget buckets (parallel to the tenant directory;
    /// deployment-wide, not per-cluster — the budget is the tenant's
    /// contractual spend on the whole UDR). Rebuilt lazily whenever the
    /// directory's epoch moves, so mid-run grant/revoke/budget changes
    /// take effect on the next operation.
    pub(crate) tenant_buckets: Vec<ClassBuckets>,
    /// Directory epoch `tenant_buckets` was derived from.
    pub(crate) tenant_buckets_epoch: u64,
    pub(crate) servers: Vec<LdapServer>,
    pub(crate) groups: Vec<ReplicationGroup>,
    pub(crate) shippers: Vec<AsyncShipper>,
    /// The authoritative epoch-versioned partition → SE assignment table.
    /// `groups` is the runtime view of the same assignments; every
    /// reassignment flows through [`ShardMap::reassign`] so route caches
    /// can version-check their views.
    pub(crate) shard_map: ShardMap,
    /// Live migrations, by id (completed/aborted entries stay for audit).
    pub(crate) migrations: Vec<MigrationTask>,
    /// Operations routed per partition (hotspot detection).
    pub(crate) ops_per_partition: Vec<u64>,
    pub(crate) placement: PlacementContext,
    /// Ground-truth identity→location bindings (what the PS provisioned).
    pub(crate) authority: IdentityLocationMap,
    /// Clusters hosted at each site.
    pub(crate) clusters_at_site: Vec<Vec<usize>>,
    /// Round-robin cursor per site for PoA selection.
    pub(crate) next_cluster_rr: Vec<usize>,
    /// Live subscriber count per partition (availability weighting).
    pub(crate) subs_per_partition: Vec<u64>,
    /// Multi-master divergence start per partition (§5).
    pub(crate) diverged: BTreeMap<PartitionId, SimTime>,
    /// Currently active partition windows.
    pub(crate) active_cuts: Vec<(CutHandle, SimTime)>,
    /// Master LSN captured at crash time, for lost-commit accounting.
    pub(crate) master_lsn_at_crash: HashMap<PartitionId, Lsn>,
    /// Highest LSN per partition whose quorum write round reached `w`
    /// acks — the acknowledged tail quorum-served reads are audited
    /// against. Records above it were never promised to anybody.
    pub(crate) quorum_acked: Vec<Lsn>,
    /// Per-partition Multi-Paxos ensembles; empty unless the deployment
    /// runs [`ReplicationMode::Consensus`].
    pub(crate) consensus: Vec<ConsensusGroup>,
    /// Next consensus command id (0 is the protocol's reserved no-op).
    pub(crate) next_cmd_id: u64,
    /// Paxos safety violations observed (always empty in a correct run).
    pub(crate) consensus_violations: Vec<String>,
    pub(crate) next_uid: u64,
    /// Run metrics.
    pub metrics: UdrMetrics,
    /// The structured-tracing flight recorder (inert unless
    /// [`UdrConfig::trace`] enables it).
    pub tracer: Tracer,
}

impl Udr {
    /// Build a deployment from configuration.
    pub fn build(cfg: UdrConfig) -> UdrResult<Self> {
        cfg.validate()?;
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let net = Network::new(Topology::multinational(cfg.sites as usize));

        // ---- storage elements, clusters, servers -------------------------
        let mut ses = Vec::new();
        let mut clusters = Vec::new();
        let mut servers = Vec::new();
        let mut clusters_at_site = vec![Vec::new(); cfg.sites as usize];
        let total_ses = cfg.total_ses() as usize;
        for site in 0..cfg.sites {
            for c in 0..cfg.clusters_per_site {
                let cluster_idx = clusters.len();
                let cluster_id = ClusterId(cluster_idx as u32);
                let mut poa = PointOfAccess::new(PoaId(cluster_idx as u32), SiteId(site));
                let mut server_ids = Vec::new();
                for _ in 0..cfg.ldap_servers_per_cluster {
                    let id = LdapServerId(servers.len() as u32);
                    servers.push(LdapServer::with_rate(
                        id,
                        SiteId(site),
                        cluster_id,
                        cfg.ldap_ops_per_sec,
                    ));
                    poa.register(id);
                    server_ids.push(id);
                }
                for _ in 0..cfg.ses_per_cluster {
                    let se_id = SeId(ses.len() as u32);
                    ses.push(StorageElement::new(
                        se_id,
                        SiteId(site),
                        cfg.frash.durability,
                    ));
                }
                let stage = match cfg.frash.locator {
                    LocatorKind::ProvisionedMaps => DataLocationStage::provisioned(),
                    LocatorKind::CachedMaps => {
                        DataLocationStage::cached(cfg.dls_cache_capacity, total_ses)
                    }
                    LocatorKind::ConsistentHashing => DataLocationStage::hashed(
                        udr_dls::ConsistentHashRing::new((0..cfg.partitions).map(PartitionId), 64),
                    ),
                };
                clusters.push(Cluster {
                    id: cluster_id,
                    site: SiteId(site),
                    poa,
                    servers: server_ids,
                    stage,
                });
                clusters_at_site[site as usize].push(cluster_idx);
                let _ = c;
            }
        }

        // ---- partitions: masters round-robin, secondaries geo-spread ----
        let rf = cfg.frash.replication_factor as usize;
        let mut groups = Vec::with_capacity(cfg.partitions as usize);
        let mut shippers = Vec::with_capacity(cfg.partitions as usize);
        for p in 0..cfg.partitions {
            let master_idx = (p as usize) % ses.len();
            let mut members = vec![SeId(master_idx as u32)];
            let mut used_sites = vec![ses[master_idx].site()];
            // Prefer SEs at sites not yet covered (§3.1 decision 2:
            // geographically-disperse copies).
            let mut offset = 1usize;
            while members.len() < rf && offset < ses.len() {
                let idx = (master_idx + offset) % ses.len();
                let site = ses[idx].site();
                let id = SeId(idx as u32);
                if !members.contains(&id) && !used_sites.contains(&site) {
                    members.push(id);
                    used_sites.push(site);
                }
                offset += 1;
            }
            // Fallback: fill with any distinct SEs.
            let mut offset = 1usize;
            while members.len() < rf && offset < ses.len() {
                let id = SeId(((master_idx + offset) % ses.len()) as u32);
                if !members.contains(&id) {
                    members.push(id);
                }
                offset += 1;
            }
            let pid = PartitionId(p);
            for (i, se) in members.iter().enumerate() {
                let role = if i == 0 {
                    ReplicaRole::Master
                } else {
                    ReplicaRole::Slave
                };
                ses[se.index()].add_replica(pid, role);
            }
            let mut shipper = AsyncShipper::new();
            for se in members.iter().skip(1) {
                shipper.register_slave(*se, Lsn::ZERO);
            }
            groups.push(ReplicationGroup::new(pid, members)?);
            shippers.push(shipper);
        }

        // ---- placement context -------------------------------------------
        let mut by_region: Vec<Vec<PartitionId>> = vec![Vec::new(); cfg.sites as usize];
        for g in &groups {
            let site = ses[g.master().index()].site();
            by_region[site.index()].push(g.partition());
        }
        let placement = PlacementContext::new(by_region);

        // ---- initial events -----------------------------------------------
        let mut events = ShardedPump::new(cfg.pump);
        let tick = UdrEvent::CatchupTick;
        events.schedule_at(tick.lane_class(), SimTime::ZERO + CATCHUP_INTERVAL, tick);
        if let DurabilityMode::PeriodicSnapshot { interval } = cfg.frash.durability {
            for se in &ses {
                let snap = UdrEvent::SnapshotTick { se: se.id() };
                events.schedule_at(snap.lane_class(), SimTime::ZERO + interval, snap);
            }
        }

        // Consensus mode: one ensemble per partition over the group's
        // members, with staggered protocol timers so lanes do not beat in
        // lockstep.
        let mut consensus = Vec::new();
        if let ReplicationMode::Consensus { n } = cfg.frash.replication {
            for (p, g) in groups.iter().enumerate() {
                consensus.push(ConsensusGroup::new(
                    g.members().to_vec(),
                    n as usize,
                    cfg.seed,
                    p as u32,
                ));
                let tick = UdrEvent::ConsensusTick {
                    partition: PartitionId(p as u32),
                };
                events.schedule_at(
                    tick.lane_class(),
                    SimTime::ZERO
                        + CONSENSUS_TICK_INTERVAL
                        + SimDuration::from_micros(137 * p as u64),
                    tick,
                );
            }
        }

        let shard_map = ShardMap::new(groups.iter().map(|g| (g.partition(), g.members().to_vec())));

        let sites = cfg.sites as usize;
        let qos = clusters.iter().map(|_| cfg.qos.controller()).collect();
        let tenant_buckets = Self::build_tenant_buckets(&cfg.tenants);
        let tenant_buckets_epoch = cfg.tenants.epoch();
        let tracer = Tracer::new(cfg.trace);
        Ok(Udr {
            subs_per_partition: vec![0; cfg.partitions as usize],
            ops_per_partition: vec![0; cfg.partitions as usize],
            quorum_acked: vec![Lsn::ZERO; cfg.partitions as usize],
            cfg,
            net,
            rng: rng.fork(1),
            events,
            ses,
            clusters,
            qos,
            tenant_buckets,
            tenant_buckets_epoch,
            servers,
            groups,
            shippers,
            shard_map,
            migrations: Vec::new(),
            placement,
            authority: IdentityLocationMap::new(),
            clusters_at_site,
            next_cluster_rr: vec![0; sites],
            diverged: BTreeMap::new(),
            active_cuts: Vec::new(),
            master_lsn_at_crash: HashMap::new(),
            consensus,
            next_cmd_id: 1,
            consensus_violations: Vec::new(),
            next_uid: 1,
            metrics: UdrMetrics::default(),
            tracer,
        })
    }

    /// Snapshot everything the flight recorder retained (records,
    /// exemplars, deterministic digest). Empty when tracing is disabled.
    pub fn trace_export(&self) -> TraceExport {
        self.tracer.export()
    }

    /// The deployment configuration.
    pub fn config(&self) -> &UdrConfig {
        &self.cfg
    }

    /// The PACELC class this deployment yields for a transaction class
    /// (§3.6's claim, derived from the configuration).
    pub fn pacelc_for(&self, class: TxnClass) -> Pacelc {
        self.cfg.frash.pacelc_for(class)
    }

    /// Current virtual time of the internal event queue.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// The replication group of a partition.
    pub fn group(&self, partition: PartitionId) -> &ReplicationGroup {
        &self.groups[partition.index()]
    }

    /// The storage element with the given id.
    pub fn se(&self, se: SeId) -> &StorageElement {
        &self.ses[se.index()]
    }

    /// Number of storage elements.
    pub fn se_count(&self) -> usize {
        self.ses.len()
    }

    /// Live subscribers per partition.
    pub fn subscribers_in(&self, partition: PartitionId) -> u64 {
        self.subs_per_partition[partition.index()]
    }

    /// The authoritative epoch-versioned shard map.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard_map
    }

    /// Operations routed to a partition so far (hotspot detection).
    pub fn partition_ops(&self, partition: PartitionId) -> u64 {
        self.ops_per_partition
            .get(partition.index())
            .copied()
            .unwrap_or(0)
    }

    /// Seed partition load counters directly (planner tests).
    #[cfg(test)]
    pub(crate) fn note_partition_ops_for_test(&mut self, partition: PartitionId, n: u64) {
        self.ops_per_partition[partition.index()] += n;
    }

    /// Total provisioned subscribers.
    pub fn total_subscribers(&self) -> u64 {
        self.subs_per_partition.iter().sum()
    }

    // ---- event engine ------------------------------------------------------

    /// Inject a fault schedule (partitions, glitches, SE outages).
    pub fn schedule_faults(&mut self, schedule: FaultSchedule) {
        let sites = self.cfg.sites as usize;
        for (at, fault) in schedule.into_sorted() {
            match fault {
                Fault::Partition { island, duration } => self.schedule_event(
                    at,
                    UdrEvent::PartitionStart {
                        cuts: vec![Cut { island }],
                        duration,
                    },
                ),
                Fault::BackboneGlitch { duration } => self.schedule_event(
                    at,
                    UdrEvent::PartitionStart {
                        cuts: Fault::glitch_cuts(sites),
                        duration,
                    },
                ),
                Fault::OneWayLoss { from, duration } => self.schedule_event(
                    at,
                    UdrEvent::DegradeStart {
                        degrade: Degrade::one_way_loss(from),
                        duration,
                    },
                ),
                Fault::WanDegrade {
                    latency_factor,
                    loss,
                    duration,
                } => self.schedule_event(
                    at,
                    UdrEvent::DegradeStart {
                        degrade: Degrade::backbone(latency_factor, loss),
                        duration,
                    },
                ),
                Fault::SeCrash { se } => self.schedule_event(at, UdrEvent::SeCrash { se }),
                Fault::SeRestore { se } => self.schedule_event(at, UdrEvent::SeRestore { se }),
            }
        }
    }

    /// Compile and inject a [`FaultScript`] campaign. The compiled
    /// timeline is a pure function of the script, so replaying the same
    /// script against the same deployment seed reproduces the identical
    /// fault sequence.
    pub fn schedule_script(&mut self, script: &FaultScript) {
        self.schedule_faults(script.compile());
    }

    /// Schedule an internal event on its classified pump lane.
    pub(crate) fn schedule_event(&mut self, at: SimTime, event: UdrEvent) {
        let class = event.lane_class();
        self.events.schedule_at(class, at, event);
    }

    /// Drain internal events up to `now`. Every client entry point calls
    /// this first; experiments may also call it to let the system settle.
    pub fn advance_to(&mut self, now: SimTime) {
        while let Some((t, event)) = self.events.pop_until(now) {
            self.handle_event(t, event);
        }
    }

    /// Run the deployment's event pump to `until` and return how many
    /// events it processed.
    ///
    /// This is [`Udr::advance_to`] under the [`PumpConfig`] the
    /// deployment was built with (`cfg.pump`): events pop in merged
    /// `(time, seq)` order across all lanes, so any lane count replays
    /// the byte-identical timeline — handlers mutate shared deployment
    /// state (the network, the shard map, cross-partition metrics), so
    /// the full UDR always consumes the merge sequentially. Workloads
    /// whose state decomposes per lane (the e24 campaign's per-shard
    /// engines) use [`udr_sim::ShardedPump::drain_parallel`] directly to
    /// overlap lanes on worker threads.
    ///
    /// [`PumpConfig`]: udr_sim::PumpConfig
    pub fn run(&mut self, until: SimTime) -> u64 {
        let before = self.events.processed();
        self.advance_to(until);
        self.events.processed() - before
    }

    /// Pump-lane occupancy: pending events per lane plus the cross
    /// queue, for harnesses reporting lane balance.
    pub fn pump_depths(&self) -> (Vec<usize>, usize) {
        self.events.depths()
    }

    fn handle_event(&mut self, t: SimTime, event: UdrEvent) {
        if self.tracer.enabled() {
            self.trace_event(t, &event);
        }
        match event {
            UdrEvent::ReplDeliver {
                partition,
                slave,
                record,
            } => {
                self.deliver_replication(t, partition, slave, record);
            }
            UdrEvent::ReplDeliverBatch {
                partition,
                slave,
                records,
                trace: _,
            } => {
                for record in records {
                    self.deliver_replication(t, partition, slave, record);
                }
            }
            UdrEvent::ShipFlush {
                partition,
                slave,
                seq,
            } => self.ship_flush(t, partition, slave, seq),
            UdrEvent::SnapshotTick { se } => {
                let interval = match self.cfg.frash.durability {
                    DurabilityMode::PeriodicSnapshot { interval } => interval,
                    _ => return,
                };
                self.ses[se.index()].maybe_snapshot(t);
                self.schedule_event(t + interval, UdrEvent::SnapshotTick { se });
            }
            UdrEvent::CatchupTick => {
                self.run_catchup(t);
                self.schedule_event(t + CATCHUP_INTERVAL, UdrEvent::CatchupTick);
            }
            UdrEvent::PartitionStart { cuts, duration } => {
                let mut handles = Vec::with_capacity(cuts.len());
                for cut in cuts {
                    let h = self.net.start_partition(cut);
                    handles.push(h);
                    self.active_cuts.push((h, t));
                }
                self.schedule_event(t + duration, UdrEvent::PartitionHeal { handles });
            }
            UdrEvent::PartitionHeal { handles } => {
                for h in handles {
                    self.net.heal_partition(h);
                    self.active_cuts.retain(|(handle, _)| *handle != h);
                }
                if !self.net.partitioned() {
                    self.run_restorations(t);
                }
            }
            UdrEvent::DegradeStart { degrade, duration } => {
                let handle = self.net.start_degrade(degrade);
                self.schedule_event(t + duration, UdrEvent::DegradeHeal { handle });
            }
            UdrEvent::DegradeHeal { handle } => self.net.heal_degrade(handle),
            UdrEvent::SeCrash { se } => self.crash_se(t, se),
            UdrEvent::SeRestore { se } => self.restore_se(t, se),
            UdrEvent::FailoverCheck { partition } => self.failover_check(t, partition),
            UdrEvent::MigrationStart { id } => self.migration_start(t, id),
            UdrEvent::MigrationCutover { id } => self.migration_cutover(t, id),
            UdrEvent::MigrationAbort { id } => self.migration_abort(t, id),
            UdrEvent::MigrationDeliver { id, record } => self.migration_deliver(t, id, record),
            UdrEvent::ConsensusTick { partition } => self.consensus_tick(t, partition),
            UdrEvent::ConsensusDeliver {
                partition,
                to,
                from,
                msg,
                trace,
            } => self.consensus_deliver(t, partition, to, from, *msg, trace),
        }
    }

    /// Flight-recorder instants for background events worth seeing on a
    /// timeline (faults, migration phases, traced batch arrivals). Bare
    /// periodic ticks and per-record deliveries are deliberately skipped:
    /// they would drown the ring without adding causality.
    fn trace_event(&mut self, t: SimTime, event: &UdrEvent) {
        match event {
            UdrEvent::ReplDeliverBatch {
                partition,
                slave,
                records,
                trace,
            } => self.tracer.instant(
                *trace,
                0,
                "repl.deliver_batch",
                t,
                Some(format!(
                    "p{} se{} n={}",
                    partition.index(),
                    slave.index(),
                    records.len()
                )),
            ),
            UdrEvent::PartitionStart { cuts, duration } => self.tracer.instant(
                0,
                0,
                "fault.partition",
                t,
                Some(format!("cuts={} dur={duration}", cuts.len())),
            ),
            UdrEvent::PartitionHeal { .. } => self.tracer.instant(0, 0, "fault.heal", t, None),
            UdrEvent::DegradeStart { duration, .. } => {
                self.tracer
                    .instant(0, 0, "fault.degrade", t, Some(format!("dur={duration}")))
            }
            UdrEvent::DegradeHeal { .. } => {
                self.tracer.instant(0, 0, "fault.degrade_heal", t, None)
            }
            UdrEvent::SeCrash { se } => {
                self.tracer
                    .instant(0, 0, "fault.crash", t, Some(format!("se{}", se.index())))
            }
            UdrEvent::SeRestore { se } => {
                self.tracer
                    .instant(0, 0, "fault.restore", t, Some(format!("se{}", se.index())))
            }
            UdrEvent::FailoverCheck { partition } => self.tracer.instant(
                0,
                0,
                "fault.failover_check",
                t,
                Some(format!("p{}", partition.index())),
            ),
            UdrEvent::MigrationStart { id } => {
                self.tracer
                    .instant(0, 0, "migr.start", t, Some(format!("id={id}")))
            }
            UdrEvent::MigrationCutover { id } => {
                self.tracer
                    .instant(0, 0, "migr.cutover", t, Some(format!("id={id}")))
            }
            UdrEvent::MigrationAbort { id } => {
                self.tracer
                    .instant(0, 0, "migr.abort", t, Some(format!("id={id}")))
            }
            UdrEvent::ReplDeliver { .. }
            | UdrEvent::ShipFlush { .. }
            | UdrEvent::SnapshotTick { .. }
            | UdrEvent::CatchupTick
            | UdrEvent::MigrationDeliver { .. }
            | UdrEvent::ConsensusTick { .. }
            | UdrEvent::ConsensusDeliver { .. } => {}
        }
    }

    fn deliver_replication(
        &mut self,
        t: SimTime,
        partition: PartitionId,
        slave: SeId,
        record: CommitRecord,
    ) {
        // The message may arrive after a partition started or the slave
        // crashed; then it is simply lost (catch-up re-ships later).
        let master = self.groups[partition.index()].master();
        let master_site = self.ses[master.index()].site();
        let slave_site = self.ses[slave.index()].site();
        if !self.ses[slave.index()].is_up() || !self.net.reachable(master_site, slave_site) {
            return;
        }
        let lsn = record.lsn;
        if self.ses[slave.index()]
            .apply_replicated(partition, &record)
            .is_ok()
        {
            self.shippers[partition.index()].on_applied(slave, lsn);
            let _ = t;
        }
    }

    /// Linger timer for a shipping batch: sample the path once and flush
    /// the channel's open batch as a single message, if it is still the
    /// generation the timer was armed for.
    fn ship_flush(&mut self, t: SimTime, partition: PartitionId, slave: SeId, seq: u64) {
        let p = partition.index();
        let master = self.groups[p].master();
        if !self.ses[master.index()].is_up() {
            return;
        }
        let master_site = self.ses[master.index()].site();
        let slave_site = self.ses[slave.index()].site();
        let delay = if self.ses[slave.index()].is_up() {
            self.net
                .send(master_site, slave_site, &mut self.rng)
                .delay()
        } else {
            None
        };
        if let Some(batch) = self.shippers[p].flush_if_open(slave, seq, t, delay) {
            if self.tracer.enabled() {
                self.tracer.instant(
                    batch.trace,
                    0,
                    "ship.flush",
                    t,
                    Some(format!(
                        "p{} se{} n={} linger",
                        p,
                        slave.index(),
                        batch.records.len()
                    )),
                );
            }
            self.schedule_event(
                batch.arrives,
                UdrEvent::ReplDeliverBatch {
                    partition,
                    slave: batch.slave,
                    records: batch.records,
                    trace: batch.trace,
                },
            );
        }
    }

    fn run_catchup(&mut self, t: SimTime) {
        if !self.net.partitioned() {
            // Divergence can arise without any cut: under multi-master a
            // *crashed* master makes each client site elect its own
            // acting master. No heal event will ever fire for that, so
            // the periodic tick merges outstanding branches as soon as
            // connectivity is whole (a no-op otherwise).
            self.run_restorations(t);
        }
        if self.consensus_mode() {
            // No shipping channels under consensus: the ensembles'
            // catch-up protocol keeps lagging replicas current. Only the
            // migration state machines ride this tick.
            self.run_migration_catchup(t);
            return;
        }
        for p in 0..self.groups.len() {
            let pid = PartitionId(p as u32);
            let master = self.groups[p].master();
            if !self.ses[master.index()].is_up() {
                continue;
            }
            let master_site = self.ses[master.index()].site();
            let slaves: Vec<SeId> = self.groups[p].slaves().collect();
            for slave in slaves {
                if !self.ses[slave.index()].is_up() {
                    continue;
                }
                let slave_site = self.ses[slave.index()].site();
                if !self.net.reachable(master_site, slave_site) {
                    continue;
                }
                // Reseed when the master's log can no longer serve the gap.
                let needs_reseed = {
                    let master_engine = self.ses[master.index()]
                        .engine(pid)
                        .expect("master hosts partition");
                    self.shippers[p].needs_reseed(slave, master_engine)
                };
                if needs_reseed {
                    self.reseed_slave(pid, slave);
                    continue;
                }
                let lag = {
                    let master_engine = self.ses[master.index()]
                        .engine(pid)
                        .expect("master hosts partition");
                    self.shippers[p].lag(slave, master_engine).unwrap_or(0)
                };
                if lag == 0 {
                    continue;
                }
                let delay = self
                    .net
                    .send(master_site, slave_site, &mut self.rng)
                    .delay();
                let deliveries = {
                    let master_engine = self.ses[master.index()]
                        .engine(pid)
                        .expect("master hosts partition");
                    self.shippers[p].catch_up(slave, master_engine, t, delay)
                };
                for d in deliveries {
                    self.schedule_event(
                        d.arrives,
                        UdrEvent::ReplDeliver {
                            partition: pid,
                            slave: d.slave,
                            record: d.record,
                        },
                    );
                }
            }
        }
        self.run_migration_catchup(t);
    }

    /// Seed `slave` with a fresh snapshot of the master's current state.
    pub(crate) fn reseed_slave(&mut self, partition: PartitionId, slave: SeId) {
        let master = self.groups[partition.index()].master();
        let snapshot = self.ses[master.index()]
            .engine(partition)
            .expect("master hosts partition")
            .snapshot();
        let lsn = snapshot.last_lsn;
        self.ses[slave.index()].seed_replica(partition, ReplicaRole::Slave, snapshot);
        self.shippers[partition.index()].reseeded(slave, lsn);
        self.metrics.reseeds += 1;
    }

    fn crash_se(&mut self, t: SimTime, se: SeId) {
        if !self.ses[se.index()].is_up() {
            return;
        }
        if self.consensus_mode() {
            // No failover machinery: the ensemble's elections handle
            // mastership, and the chosen log is the durable acceptor
            // state the protocol requires — it survives the crash.
            self.ses[se.index()].crash();
            return;
        }
        // Capture mastered partitions and their LSNs before RAM vanishes.
        let mastered: Vec<(PartitionId, Lsn)> = self
            .groups
            .iter()
            .filter(|g| g.master() == se)
            .map(|g| {
                let lsn = self.ses[se.index()]
                    .last_lsn(g.partition())
                    .unwrap_or(Lsn::ZERO);
                (g.partition(), lsn)
            })
            .collect();
        self.ses[se.index()].crash();
        for (pid, lsn) in mastered {
            self.master_lsn_at_crash.insert(pid, lsn);
            if self.cfg.frash.auto_failover {
                self.schedule_event(
                    t + self.cfg.frash.failover_detection,
                    UdrEvent::FailoverCheck { partition: pid },
                );
            }
        }
    }

    fn failover_check(&mut self, _t: SimTime, partition: PartitionId) {
        let p = partition.index();
        let master = self.groups[p].master();
        if self.ses[master.index()].is_up() {
            return; // master came back before detection completed
        }
        let alive: Vec<(SeId, Lsn)> = self.groups[p]
            .slaves()
            .filter(|s| self.ses[s.index()].is_up())
            .map(|s| {
                (
                    s,
                    self.ses[s.index()].last_lsn(partition).unwrap_or(Lsn::ZERO),
                )
            })
            .collect();
        let Some(candidate) = self.groups[p].promotion_candidate(&alive) else {
            return; // total outage: nothing to promote
        };
        let candidate_lsn = alive
            .iter()
            .find(|(s, _)| *s == candidate)
            .map(|(_, l)| *l)
            .unwrap_or(Lsn::ZERO);
        if let Some(crash_lsn) = self.master_lsn_at_crash.get(&partition) {
            // §4.2: transactions committed at the master but not yet
            // replicated are lost by the promotion.
            self.metrics.lost_commits += crash_lsn.raw().saturating_sub(candidate_lsn.raw());
        }
        self.groups[p]
            .promote(candidate)
            .expect("candidate is a member");
        let _ = self.ses[candidate.index()].set_role(partition, ReplicaRole::Master);
        // Mastership moved: bump the shard-map epoch so route caches learn
        // (lazily) that the old owner is retired.
        self.sync_shard_map(partition);
        // Rebuild the shipping ledger around the new master.
        let mut shipper = AsyncShipper::new();
        for slave in self.groups[p].slaves() {
            let lsn = if self.ses[slave.index()].is_up() {
                self.ses[slave.index()]
                    .last_lsn(partition)
                    .unwrap_or(Lsn::ZERO)
                    .min(candidate_lsn)
            } else {
                Lsn::ZERO
            };
            shipper.register_slave(slave, lsn);
        }
        self.shippers[p] = shipper;
        self.metrics.failovers += 1;
    }

    fn restore_se(&mut self, _t: SimTime, se: SeId) {
        let recovered = self.ses[se.index()].restore(self.events.now());
        if self.consensus_mode() {
            // Reset the apply cursor to the recovered disk position and
            // replay the chosen log's committed prefix; no lost-commit
            // accounting — consensus never acknowledged anything the log
            // does not hold.
            self.consensus_restore(self.events.now(), se, &recovered);
            return;
        }
        let recovered_map: HashMap<PartitionId, Lsn> = recovered.into_iter().collect();
        // Rejoin every group this SE belongs to.
        let member_of: Vec<PartitionId> = self
            .groups
            .iter()
            .filter(|g| g.contains(se))
            .map(|g| g.partition())
            .collect();
        for pid in member_of {
            let p = pid.index();
            let is_master = self.groups[p].master() == se;
            let recovered_lsn = recovered_map.get(&pid).copied();
            if is_master {
                self.restore_master(pid, se, recovered_lsn);
            } else {
                self.restore_slave(pid, se, recovered_lsn);
            }
        }
    }

    /// A crashed master restores while still holding mastership (failover
    /// disabled, not yet fired, or no candidate existed).
    fn restore_master(&mut self, pid: PartitionId, se: SeId, recovered: Option<Lsn>) {
        let p = pid.index();
        let restored_lsn = recovered.unwrap_or(Lsn::ZERO);
        if recovered.is_none() {
            self.ses[se.index()].add_replica(pid, ReplicaRole::Slave);
        }
        // If a slave is ahead of the restored disk state, prefer rebuilding
        // the master from the most caught-up slave: less data loss.
        let best_slave: Option<(SeId, Lsn)> = self.groups[p]
            .slaves()
            .filter(|s| self.ses[s.index()].is_up())
            .map(|s| (s, self.ses[s.index()].last_lsn(pid).unwrap_or(Lsn::ZERO)))
            .max_by_key(|(_, l)| *l);
        let crash_lsn = self
            .master_lsn_at_crash
            .remove(&pid)
            .unwrap_or(restored_lsn);
        let base_lsn = match best_slave {
            Some((donor, donor_lsn)) if donor_lsn > restored_lsn => {
                let snapshot = self.ses[donor.index()]
                    .engine(pid)
                    .expect("donor hosts partition")
                    .snapshot();
                self.ses[se.index()].seed_replica(pid, ReplicaRole::Master, snapshot);
                self.metrics.reseeds += 1;
                donor_lsn
            }
            _ => {
                let _ = self.ses[se.index()].set_role(pid, ReplicaRole::Master);
                restored_lsn
            }
        };
        self.metrics.lost_commits += crash_lsn.raw().saturating_sub(base_lsn.raw());
        // Slaves ahead of the rebuilt master hold orphaned commits: reseed
        // them down to the master's lineage.
        let slaves: Vec<SeId> = self.groups[p].slaves().collect();
        let mut shipper = AsyncShipper::new();
        for slave in slaves {
            if self.ses[slave.index()].is_up() {
                let slave_lsn = self.ses[slave.index()].last_lsn(pid).unwrap_or(Lsn::ZERO);
                if slave_lsn > base_lsn {
                    self.reseed_from(pid, se, slave);
                }
                let lsn = self.ses[slave.index()].last_lsn(pid).unwrap_or(Lsn::ZERO);
                shipper.register_slave(slave, lsn.min(base_lsn));
            } else {
                shipper.register_slave(slave, Lsn::ZERO);
            }
        }
        self.shippers[p] = shipper;
    }

    /// A crashed SE restores as a slave (its mastership moved or it always
    /// was a slave).
    fn restore_slave(&mut self, pid: PartitionId, se: SeId, recovered: Option<Lsn>) {
        let p = pid.index();
        let master = self.groups[p].master();
        let master_lsn = if self.ses[master.index()].is_up() {
            self.ses[master.index()].last_lsn(pid).unwrap_or(Lsn::ZERO)
        } else {
            Lsn::ZERO
        };
        match recovered {
            Some(lsn) if lsn <= master_lsn => {
                self.shippers[p].register_slave(se, lsn);
            }
            _ => {
                // Nothing on disk, or disk state ahead of the current
                // master's lineage (orphaned commits): reseed.
                if self.ses[master.index()].is_up() {
                    if recovered.is_none() {
                        self.ses[se.index()].add_replica(pid, ReplicaRole::Slave);
                    }
                    self.reseed_from(pid, master, se);
                } else {
                    self.ses[se.index()].add_replica(pid, ReplicaRole::Slave);
                    self.shippers[p].register_slave(se, Lsn::ZERO);
                }
            }
        }
    }

    /// Seed `target`'s replica of `pid` from `source`'s current state.
    fn reseed_from(&mut self, pid: PartitionId, source: SeId, target: SeId) {
        let snapshot = self.ses[source.index()]
            .engine(pid)
            .expect("source hosts partition")
            .snapshot();
        let lsn = snapshot.last_lsn;
        self.ses[target.index()].seed_replica(pid, ReplicaRole::Slave, snapshot);
        self.shippers[pid.index()].reseeded(target, lsn);
        self.metrics.reseeds += 1;
    }

    // ---- multi-master restoration (§5) --------------------------------------

    /// Earliest active partition start (divergence stamp for new branches).
    pub(crate) fn earliest_active_cut(&self) -> Option<SimTime> {
        self.active_cuts.iter().map(|(_, t)| *t).min()
    }

    fn run_restorations(&mut self, t: SimTime) {
        if self.cfg.frash.replication != ReplicationMode::MultiMaster || self.diverged.is_empty() {
            return;
        }
        let diverged: Vec<(PartitionId, SimTime)> =
            self.diverged.iter().map(|(p, t)| (*p, *t)).collect();
        self.diverged.clear();
        for (pid, since) in diverged {
            let p = pid.index();
            let members: Vec<SeId> = self.groups[p]
                .members()
                .iter()
                .copied()
                .filter(|se| self.ses[se.index()].is_up())
                .collect();
            if members.is_empty() {
                continue;
            }
            let outcome = {
                let engines: Vec<&udr_storage::Engine> = members
                    .iter()
                    .map(|se| {
                        self.ses[se.index()]
                            .engine(pid)
                            .expect("member hosts partition")
                    })
                    .collect();
                merge_branches(since, &engines)
            };
            let master = self.groups[p].master();
            let mut shipper = AsyncShipper::new();
            for se in &members {
                let role = if *se == master {
                    ReplicaRole::Master
                } else {
                    ReplicaRole::Slave
                };
                self.ses[se.index()].seed_replica(pid, role, outcome.snapshot.clone());
                if *se != master {
                    shipper.register_slave(*se, outcome.snapshot.last_lsn);
                }
            }
            // Members still down re-register at zero; restore logic reseeds.
            for se in self.groups[p].slaves() {
                if !members.contains(&se) {
                    shipper.register_slave(se, Lsn::ZERO);
                }
            }
            self.shippers[p] = shipper;
            self.metrics.merges += 1;
            self.metrics.merge_conflicts += outcome.stats.conflicts as u64;
            self.metrics.merge_records += outcome.stats.records_examined as u64;
            self.metrics.merge_time +=
                restoration_duration(outcome.stats.records_examined, MERGE_COST_PER_RECORD);
            let _ = t;
        }
    }

    // ---- structural availability probes -------------------------------------

    /// Whether `partition` currently has a readable copy reachable from
    /// `from_site` (any up replica on a reachable site).
    pub fn partition_readable_from(&self, partition: PartitionId, from_site: SiteId) -> bool {
        self.groups[partition.index()].members().iter().any(|se| {
            self.ses[se.index()].is_up()
                && self.net.reachable(from_site, self.ses[se.index()].site())
        })
    }

    /// Whether `partition` currently accepts writes issued from
    /// `from_site` (the master — or, under multi-master, any up replica —
    /// reachable).
    pub fn partition_writable_from(&self, partition: PartitionId, from_site: SiteId) -> bool {
        if self.cfg.frash.replication.writes_survive_partition() {
            return self.partition_readable_from(partition, from_site);
        }
        let master = self.groups[partition.index()].master();
        self.ses[master.index()].is_up()
            && self
                .net
                .reachable(from_site, self.ses[master.index()].site())
    }

    /// Fraction of subscribers whose data is readable from `from_site`,
    /// weighted by per-partition population.
    pub fn readable_subscriber_fraction(&self, from_site: SiteId) -> f64 {
        let total: u64 = self.subs_per_partition.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ok: u64 = self
            .groups
            .iter()
            .filter(|g| self.partition_readable_from(g.partition(), from_site))
            .map(|g| self.subs_per_partition[g.partition().index()])
            .sum();
        ok as f64 / total as f64
    }

    /// The largest replication lag (log records) any up slave currently
    /// shows against its partition master. Crashed endpoints are skipped
    /// — they cannot catch up until they restore.
    pub fn max_replica_lag(&self) -> u64 {
        if self.consensus_mode() {
            return self.consensus_replica_lag();
        }
        let mut max = 0u64;
        for (p, group) in self.groups.iter().enumerate() {
            let master = group.master();
            if !self.ses[master.index()].is_up() {
                continue;
            }
            let Ok(engine) = self.ses[master.index()].engine(group.partition()) else {
                continue;
            };
            for slave in group.slaves() {
                if !self.ses[slave.index()].is_up() {
                    continue;
                }
                if let Some(lag) = self.shippers[p].lag(slave, engine) {
                    max = max.max(lag);
                }
            }
        }
        max
    }

    /// Whether replication has fully re-converged: zero lag on every
    /// live channel, no diverged multi-master branches awaiting merge,
    /// and no partition or degradation still active. The condition the
    /// heal-time measurement of a fault campaign waits for.
    pub fn replication_settled(&self) -> bool {
        if self.consensus_mode() {
            return !self.net.partitioned() && !self.net.degraded() && self.consensus_settled();
        }
        !self.net.partitioned()
            && !self.net.degraded()
            && self.diverged.is_empty()
            && self.max_replica_lag() == 0
    }

    /// Coalesced shipping batches delivered across all partitions'
    /// channels (zero under per-record shipping).
    pub fn shipping_batches(&self) -> u64 {
        self.shippers.iter().map(|s| s.batches).sum()
    }

    /// Records shipped (including catch-up re-ships) across all channels.
    pub fn shipped_records(&self) -> u64 {
        self.shippers.iter().map(|s| s.shipped).sum()
    }

    /// Allocate the next subscriber uid.
    pub(crate) fn alloc_uid(&mut self) -> u64 {
        let uid = self.next_uid;
        self.next_uid += 1;
        uid
    }

    /// Borrow cluster by index.
    pub fn cluster(&self, idx: usize) -> &Cluster {
        &self.clusters[idx]
    }

    /// Borrow a cluster's QoS admission controller (experiments inspect
    /// shedding/degradation state through this).
    pub fn qos_controller(&self, idx: usize) -> &AdmissionController {
        &self.qos[idx]
    }

    /// The tenant directory this deployment authorizes against.
    pub fn tenant_directory(&self) -> &TenantDirectory {
        &self.cfg.tenants
    }

    /// Mutate the tenant directory at runtime (grant/revoke/budget
    /// changes). Every mutation bumps the directory epoch, which makes
    /// the pipeline rebuild the derived rate-budget buckets before the
    /// next operation — a revocation takes effect immediately.
    pub fn tenant_directory_mut(&mut self) -> &mut TenantDirectory {
        &mut self.cfg.tenants
    }

    /// Materialize per-tenant [`ClassBuckets`] from the directory's
    /// budget entries (tenants without budgets get an unlimited stack).
    fn build_tenant_buckets(dir: &TenantDirectory) -> Vec<ClassBuckets> {
        dir.tenants()
            .map(|tenant| {
                let mut buckets = ClassBuckets::unlimited();
                if let Some(grant) = dir.grant_of(tenant) {
                    for class in PriorityClass::ALL {
                        if let Some(budget) = grant.budget(class) {
                            buckets.set(class, TokenBucket::new(budget.rate, budget.burst));
                        }
                    }
                }
                buckets
            })
            .collect()
    }

    /// Rebuild the derived per-tenant buckets when the directory's epoch
    /// moved (no-op — one integer compare — on the hot path otherwise).
    pub(crate) fn sync_tenant_buckets(&mut self) {
        let epoch = self.cfg.tenants.epoch();
        if epoch != self.tenant_buckets_epoch {
            self.tenant_buckets = Self::build_tenant_buckets(&self.cfg.tenants);
            self.tenant_buckets_epoch = epoch;
        }
    }

    /// The rate-budget buckets of `tenant`; `None` when the tenant has no
    /// budget on any class (the common uncapped case skips bucket work
    /// entirely).
    pub(crate) fn tenant_bucket_mut(&mut self, tenant: TenantId) -> Option<&mut ClassBuckets> {
        let has_budgets = self
            .cfg
            .tenants
            .grant_of(tenant)
            .is_some_and(TenantGrant::has_budgets);
        if has_budgets {
            self.tenant_buckets.get_mut(tenant.index())
        } else {
            None
        }
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Pick the serving cluster for a client at `site` (round-robin over
    /// the site's clusters).
    pub(crate) fn pick_cluster(&mut self, site: SiteId) -> usize {
        let list = &self.clusters_at_site[site.index()];
        debug_assert!(!list.is_empty(), "site without clusters");
        let rr = &mut self.next_cluster_rr[site.index()];
        let idx = list[*rr % list.len()];
        *rr = (*rr + 1) % list.len().max(1);
        idx
    }

    // ---- scale-out (§3.4.2) --------------------------------------------------

    /// Deploy an additional blade cluster at `site` (scale-out). The new
    /// cluster's data-location stage must first sync its identity-location
    /// maps from a peer; until the sync window elapses the new PoA answers
    /// [`UdrError::LocationStageSyncing`](udr_model::error::UdrError) —
    /// the §3.4.2 availability impact. With cached or hashed locators there
    /// is no sync window.
    ///
    /// Returns the new cluster's index.
    pub fn add_cluster(&mut self, site: SiteId, now: SimTime) -> usize {
        self.advance_to(now);
        let cluster_idx = self.clusters.len();
        let cluster_id = ClusterId(cluster_idx as u32);
        let mut poa = PointOfAccess::new(PoaId(cluster_idx as u32), site);
        let mut server_ids = Vec::new();
        for _ in 0..self.cfg.ldap_servers_per_cluster {
            let id = LdapServerId(self.servers.len() as u32);
            self.servers.push(LdapServer::with_rate(
                id,
                site,
                cluster_id,
                self.cfg.ldap_ops_per_sec,
            ));
            poa.register(id);
            server_ids.push(id);
        }
        let mut stage = match self.cfg.frash.locator {
            LocatorKind::ProvisionedMaps => {
                // Copy the maps from a peer stage; the transfer blocks the
                // new PoA for the sync window.
                let entries = self.authority.len();
                let cost = udr_dls::SyncCostModel::default();
                let mut stage = DataLocationStage::provisioned_syncing(now, entries, &cost);
                stage.import(self.authority.export());
                stage
            }
            LocatorKind::CachedMaps => {
                DataLocationStage::cached(self.cfg.dls_cache_capacity, self.ses.len())
            }
            LocatorKind::ConsistentHashing => DataLocationStage::hashed(
                udr_dls::ConsistentHashRing::new((0..self.cfg.partitions).map(PartitionId), 64),
            ),
        };
        // The sync copies a current view: the stage joins at today's epoch.
        stage.install_map_epoch(self.shard_map.epoch());
        self.clusters.push(Cluster {
            id: cluster_id,
            site,
            poa,
            servers: server_ids,
            stage,
        });
        self.qos.push(self.cfg.qos.controller());
        self.clusters_at_site[site.index()].push(cluster_idx);
        cluster_idx
    }

    /// When the cluster's location stage finishes syncing (`None` when it
    /// is already serving).
    pub fn cluster_sync_done_at(&self, cluster_idx: usize) -> Option<SimTime> {
        self.clusters[cluster_idx].stage.sync_done_at()
    }

    // ---- elastic scale-out: live partition migration -------------------------

    /// Deploy an additional (empty) Storage Element at `site`. The
    /// newcomer hosts nothing until a [`Rebalancer`](crate::Rebalancer)
    /// plan moves partitions onto it.
    ///
    /// # Panics
    ///
    /// Panics immediately when `site` is outside the deployment's
    /// topology (sites are fixed at build time; an out-of-range site
    /// would otherwise only surface as an index panic deep inside the
    /// event pump).
    pub fn add_se(&mut self, site: SiteId, now: SimTime) -> SeId {
        assert!(
            site.index() < self.cfg.sites as usize,
            "{site} is outside the {}-site topology",
            self.cfg.sites
        );
        self.advance_to(now);
        let id = SeId(self.ses.len() as u32);
        self.ses
            .push(StorageElement::new(id, site, self.cfg.frash.durability));
        if let DurabilityMode::PeriodicSnapshot { interval } = self.cfg.frash.durability {
            self.schedule_event(
                self.events.now().max(now) + interval,
                UdrEvent::SnapshotTick { se: id },
            );
        }
        id
    }

    /// Begin executing a [`MigrationPlan`] at `at`: the move runs online
    /// through the event pump (snapshot reseed → log catch-up → freeze →
    /// atomic cutover that bumps the shard-map epoch), interleaved
    /// deterministically with traffic and faults. Returns the migration
    /// id for [`Udr::migration_state`] queries. Invalid or fault-hit plans
    /// abort cleanly without advancing the epoch.
    pub fn start_migration(&mut self, plan: MigrationPlan, at: SimTime) -> u64 {
        let id = self.migrations.len() as u64;
        self.migrations.push(MigrationTask {
            plan,
            state: MigrationState::Seeding { ready_at: at },
            channel: None,
        });
        // Every accepted request counts as started, including ones that
        // abort at validation: started == completed + aborted always.
        self.metrics.migrations_started += 1;
        self.schedule_event(at, UdrEvent::MigrationStart { id });
        id
    }

    /// The lifecycle state of a migration started earlier.
    pub fn migration_state(&self, id: u64) -> Option<MigrationState> {
        self.migrations.get(id as usize).map(|m| m.state)
    }

    /// Migrations not yet in a terminal state.
    pub fn active_migrations(&self) -> usize {
        self.migrations
            .iter()
            .filter(|m| m.state.is_active())
            .count()
    }

    /// `MigrationStart`: snapshot the partition master, seed the target's
    /// copy and open the migration channel at the snapshot LSN.
    fn migration_start(&mut self, t: SimTime, id: u64) {
        let plan = self.migrations[id as usize].plan;
        let p = plan.partition.index();
        let valid = plan.from != plan.to
            && p < self.groups.len()
            && plan.to.index() < self.ses.len()
            && self.groups[p].contains(plan.from)
            && !self.groups[p].contains(plan.to)
            && self.ses[plan.from.index()].is_up()
            && self.ses[plan.to.index()].is_up();
        if !valid || !self.ses[self.groups[p].master().index()].is_up() {
            self.migration_abort(t, id);
            return;
        }
        let master = self.groups[p].master();
        let snapshot = self.ses[master.index()]
            .engine(plan.partition)
            .expect("master hosts partition")
            .snapshot();
        let lsn = snapshot.last_lsn;
        let bytes = snapshot.approx_bytes() as u64;
        self.ses[plan.to.index()].seed_replica(plan.partition, ReplicaRole::Slave, snapshot);
        let transfer =
            MIGRATION_SEED_BASE + SimDuration::from_micros(bytes / MIGRATION_SEED_BYTES_PER_US);
        let task = &mut self.migrations[id as usize];
        task.channel = Some(MigrationChannel::new(plan.to, lsn));
        task.state = MigrationState::Seeding {
            ready_at: t + transfer,
        };
    }

    /// Drive every active migration one catch-up step (runs on each
    /// `CatchupTick`, after the replica channels).
    fn run_migration_catchup(&mut self, t: SimTime) {
        if self.consensus_mode() {
            self.run_consensus_migrations(t);
            return;
        }
        for id in 0..self.migrations.len() {
            let (plan, state, started) = {
                let m = &self.migrations[id];
                (m.plan, m.state, m.channel.is_some())
            };
            if !state.is_active() || !started {
                continue;
            }
            let p = plan.partition.index();
            let master = self.groups[p].master();
            // Fault policy: a crashed endpoint or a cut on the shipping
            // path abandons the move — restarting later is cheaper than
            // reasoning about a half-seeded copy across a partition.
            let endpoints_up = self.ses[plan.from.index()].is_up()
                && self.ses[plan.to.index()].is_up()
                && self.ses[master.index()].is_up();
            let master_site = self.ses[master.index()].site();
            let to_site = self.ses[plan.to.index()].site();
            if !endpoints_up || !self.net.reachable(master_site, to_site) {
                self.migration_abort(t, id as u64);
                continue;
            }
            match state {
                MigrationState::Seeding { ready_at } if t < ready_at => continue,
                MigrationState::Seeding { .. } => {
                    self.migrations[id].state = MigrationState::CatchingUp;
                }
                _ => {}
            }
            // A truncated master log (or a failover onto a new lineage)
            // invalidates the seed: reseed from the current master.
            let needs_reseed = {
                let engine = self.ses[master.index()]
                    .engine(plan.partition)
                    .expect("master hosts partition");
                self.migrations[id]
                    .channel
                    .as_ref()
                    .expect("started migration has channel")
                    .needs_reseed(engine)
            };
            if needs_reseed {
                let snapshot = self.ses[master.index()]
                    .engine(plan.partition)
                    .expect("master hosts partition")
                    .snapshot();
                let lsn = snapshot.last_lsn;
                self.ses[plan.to.index()].seed_replica(
                    plan.partition,
                    ReplicaRole::Slave,
                    snapshot,
                );
                self.migrations[id]
                    .channel
                    .as_mut()
                    .expect("started migration has channel")
                    .reseeded(lsn);
                self.metrics.reseeds += 1;
                continue;
            }
            let lag = {
                let engine = self.ses[master.index()]
                    .engine(plan.partition)
                    .expect("master hosts partition");
                self.migrations[id]
                    .channel
                    .as_ref()
                    .expect("started migration has channel")
                    .lag(engine)
            };
            if plan.from == master {
                // Master move: converge, freeze the log, cut over at
                // exact equality.
                if lag <= MIGRATION_FREEZE_LAG
                    && !matches!(self.migrations[id].state, MigrationState::Frozen { .. })
                {
                    let _ = self.ses[master.index()].freeze_partition(plan.partition);
                    self.migrations[id].state = MigrationState::Frozen { since: t };
                }
                if matches!(self.migrations[id].state, MigrationState::Frozen { .. }) && lag == 0 {
                    // The cutover itself is a coordination round between
                    // the endpoints: the freeze window is never zero.
                    let coord = self
                        .net
                        .round_trip(master_site, to_site, &mut self.rng)
                        .unwrap_or(SimDuration::from_millis(1));
                    self.schedule_event(t + coord, UdrEvent::MigrationCutover { id: id as u64 });
                    continue;
                }
            } else if lag <= MIGRATION_SLAVE_CUTOVER_LAG {
                // Slave move: the ordinary replica channel closes the
                // remainder after the swap; no freeze needed.
                self.schedule_event(t, UdrEvent::MigrationCutover { id: id as u64 });
                continue;
            }
            if lag == 0 {
                continue;
            }
            let delay = self.net.send(master_site, to_site, &mut self.rng).delay();
            let deliveries = {
                let ses = &self.ses;
                let engine = ses[master.index()]
                    .engine(plan.partition)
                    .expect("master hosts partition");
                self.migrations[id]
                    .channel
                    .as_mut()
                    .expect("started migration has channel")
                    .catch_up(engine, t, delay)
            };
            self.metrics.migration_records_shipped += deliveries.len() as u64;
            for d in deliveries {
                self.schedule_event(
                    d.arrives,
                    UdrEvent::MigrationDeliver {
                        id: id as u64,
                        record: d.record,
                    },
                );
            }
        }
    }

    /// `MigrationDeliver`: apply one migrated record on the target copy.
    fn migration_deliver(&mut self, _t: SimTime, id: u64, record: CommitRecord) {
        let Some(m) = self.migrations.get(id as usize) else {
            return;
        };
        if !m.state.is_active() || m.channel.is_none() {
            return;
        }
        let plan = m.plan;
        let master = self.groups[plan.partition.index()].master();
        let master_site = self.ses[master.index()].site();
        let to_site = self.ses[plan.to.index()].site();
        if !self.ses[plan.to.index()].is_up() || !self.net.reachable(master_site, to_site) {
            return;
        }
        let lsn = record.lsn;
        if self.ses[plan.to.index()]
            .apply_replicated(plan.partition, &record)
            .is_ok()
        {
            if let Some(ch) = self.migrations[id as usize].channel.as_mut() {
                ch.on_applied(lsn);
            }
        }
    }

    /// `MigrationCutover`: atomically swap the copy into the replica set,
    /// release the retired copy and bump the shard-map epoch.
    fn migration_cutover(&mut self, t: SimTime, id: u64) {
        let (plan, state) = {
            let m = &self.migrations[id as usize];
            (m.plan, m.state)
        };
        if !state.is_active() {
            return;
        }
        let p = plan.partition.index();
        let master = self.groups[p].master();
        let was_master_move = plan.from == master;
        let master_site = self.ses[master.index()].site();
        let to_site = self.ses[plan.to.index()].site();
        let to_ok = self.ses[plan.to.index()].is_up() && self.net.reachable(master_site, to_site);
        let target_lsn = self.ses[plan.to.index()]
            .last_lsn(plan.partition)
            .unwrap_or(Lsn::ZERO);
        let master_lsn = self.ses[master.index()]
            .last_lsn(plan.partition)
            .unwrap_or(Lsn::ZERO);
        // A master hand-off must be exact: every committed record is on
        // the target before the old master retires (zero loss).
        if !to_ok || (was_master_move && target_lsn != master_lsn) {
            self.migration_abort(t, id);
            return;
        }
        self.groups[p]
            .replace_member(plan.from, plan.to)
            .expect("cutover swap validated");
        let new_role = if was_master_move {
            ReplicaRole::Master
        } else {
            ReplicaRole::Slave
        };
        let _ = self.ses[plan.to.index()].set_role(plan.partition, new_role);
        if was_master_move {
            // Rebuild the shipping ledger around the new master (same
            // lineage, so the slaves' applied LSNs carry over).
            let mut shipper = AsyncShipper::new();
            for slave in self.groups[p].slaves() {
                let lsn = if self.ses[slave.index()].is_up() {
                    self.ses[slave.index()]
                        .last_lsn(plan.partition)
                        .unwrap_or(Lsn::ZERO)
                        .min(master_lsn)
                } else {
                    Lsn::ZERO
                };
                shipper.register_slave(slave, lsn);
            }
            self.shippers[p] = shipper;
        } else {
            self.shippers[p].unregister_slave(plan.from);
            self.shippers[p].register_slave(plan.to, target_lsn.min(master_lsn));
        }
        // Hand-off complete: the retired copy releases its RAM and disk.
        let _ = self.ses[plan.from.index()].release_partition(plan.partition);
        self.sync_shard_map(plan.partition);
        self.rebuild_placement();
        if plan.reason == crate::rebalance::MoveReason::HotspotSplit {
            // The relocation served this load; reset the counter so the
            // planner chases *current* heat, not history (otherwise the
            // same partition stays the maximum forever and periodic
            // re-planning thrashes its master back and forth).
            self.ops_per_partition[p] = 0;
        }
        if let MigrationState::Frozen { since } = state {
            self.metrics.migration_freeze_time += t.duration_since(since);
        }
        let task = &mut self.migrations[id as usize];
        task.state = MigrationState::Done;
        task.channel = None;
        self.metrics.migrations_completed += 1;
    }

    /// `MigrationAbort`: abandon the move without touching the epoch; the
    /// old owner keeps serving unchanged.
    pub(crate) fn migration_abort(&mut self, t: SimTime, id: u64) {
        let Some(m) = self.migrations.get(id as usize) else {
            return;
        };
        let (plan, state) = (m.plan, m.state);
        if !state.is_active() {
            return;
        }
        if let MigrationState::Frozen { since } = state {
            self.ses[plan.from.index()].unfreeze_partition(plan.partition);
            self.metrics.migration_freeze_time += t.duration_since(since);
        }
        // Drop the target's partial copy — it never joined the group.
        // (The plan may be arbitrarily malformed — e.g. an out-of-range
        // partition — and must still abort cleanly, not panic.)
        let joined = self
            .groups
            .get(plan.partition.index())
            .is_some_and(|g| g.contains(plan.to));
        if plan.to.index() < self.ses.len() && !joined {
            let _ = self.ses[plan.to.index()].release_partition(plan.partition);
        }
        let task = &mut self.migrations[id as usize];
        task.state = MigrationState::Aborted;
        task.channel = None;
        self.metrics.migrations_aborted += 1;
    }

    /// Re-publish `partition`'s current replica set into the shard map
    /// (epoch bump). The one call every membership/mastership change must
    /// make — `ReplicationGroup::members()` keeps insertion order, which
    /// stops being master-first after a promotion, so the master is
    /// re-ordered to the front here ([`ShardMap::reassign`]'s contract).
    pub(crate) fn sync_shard_map(&mut self, partition: PartitionId) {
        let g = &self.groups[partition.index()];
        let master = g.master();
        let mut members = Vec::with_capacity(g.members().len());
        members.push(master);
        members.extend(g.members().iter().copied().filter(|se| *se != master));
        self.shard_map.reassign(partition, members);
    }

    /// Recompute the placement context from current partition masters
    /// (masters move sites on cutover/failover).
    pub(crate) fn rebuild_placement(&mut self) {
        let mut by_region: Vec<Vec<PartitionId>> = vec![Vec::new(); self.cfg.sites as usize];
        for g in &self.groups {
            let site = self.ses[g.master().index()].site();
            by_region[site.index()].push(g.partition());
        }
        self.placement = PlacementContext::new(by_region);
    }
}
