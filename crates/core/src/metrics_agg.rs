//! Aggregated run metrics for one UDR deployment.

use udr_metrics::{GuaranteeTracker, Histogram, OpCounter, QosTracker, StalenessTracker};
use udr_model::config::TxnClass;
use udr_model::time::SimDuration;

use crate::pipeline::LatencyBreakdown;

/// Per-stage latency histograms of successful operations: one histogram
/// per [`LatencyBreakdown`] component, recorded at op completion. Where
/// the breakdown attributes one operation's latency, these attribute the
/// whole run's — bench reports embed their
/// [snapshots](Histogram::snapshot) so offline tooling can reconstruct
/// the per-stage distributions from the JSON alone.
#[derive(Debug, Default)]
pub struct StageLatencyMetrics {
    /// Access-stage component (PoA + LDAP server).
    pub access: Histogram,
    /// Location-stage component (DLS resolution).
    pub location: Histogram,
    /// Replication-stage component (routing, commit waits, consults).
    pub replication: Histogram,
    /// Storage-stage component (SE round trip + engine).
    pub storage: Histogram,
}

impl StageLatencyMetrics {
    /// Record one finished operation's breakdown.
    pub fn record(&mut self, b: &LatencyBreakdown) {
        self.access.record(b.access);
        self.location.record(b.location);
        self.replication.record(b.replication);
        self.storage.record(b.storage);
    }
}

/// Everything an experiment reads back after driving a [`crate::Udr`].
#[derive(Debug, Default)]
pub struct UdrMetrics {
    /// Front-end operation counters.
    pub fe_ops: OpCounter,
    /// Provisioning operation counters.
    pub ps_ops: OpCounter,
    /// Latency of successful front-end operations.
    pub fe_latency: Histogram,
    /// Latency of successful provisioning operations.
    pub ps_latency: Histogram,
    /// Per-stage latency attribution across all successful operations.
    pub stage_latency: StageLatencyMetrics,
    /// Staleness of reads (slave-read consistency, §3.3.2).
    pub staleness: StalenessTracker,
    /// Kept/broken guarantees and master redirects of the intermediate
    /// read policies (bounded staleness, session guarantees).
    pub guarantees: GuaranteeTracker,
    /// Per-priority-class QoS accounting: offered/admitted/shed/goodput
    /// and latency by class, plus the priority-inversion audit counter.
    pub qos: QosTracker,
    /// Operations whose serving SE was reached across the backbone.
    pub backbone_ops: u64,
    /// Operations served within the client's site.
    pub local_ops: u64,
    /// Failovers performed (master promotions).
    pub failovers: u64,
    /// Committed transactions lost to failovers/restores (§4.2 durability
    /// gap made visible).
    pub lost_commits: u64,
    /// Slave reseeds from master snapshots (log truncation / rejoin).
    pub reseeds: u64,
    /// Multi-master consistency-restoration runs (§5).
    pub merges: u64,
    /// Conflicting records resolved by LWW across all merges.
    pub merge_conflicts: u64,
    /// Records examined across all merges.
    pub merge_records: u64,
    /// Total simulated time spent in restoration runs.
    pub merge_time: SimDuration,
    /// Writes that committed locally but failed their replication
    /// requirement (dual-in-sequence/quorum partial applications).
    pub partial_commits: u64,
    /// Location probes broadcast by cached stages on misses (§3.5: "those
    /// data location queries may become a hurdle to scalability").
    pub dls_probes: u64,
    /// Lookups resolved under a stale shard-map epoch that bounced off a
    /// retired owner and were retried (at most once each).
    pub stale_route_retries: u64,
    /// Live partition migrations begun.
    pub migrations_started: u64,
    /// Migrations that cut over (epoch bumped, zero loss).
    pub migrations_completed: u64,
    /// Migrations abandoned (fault mid-move; epoch unchanged).
    pub migrations_aborted: u64,
    /// Total simulated time partitions spent write-frozen for hand-off —
    /// the availability window of data movement.
    pub migration_freeze_time: SimDuration,
    /// Writes refused because their partition was frozen for hand-off.
    pub migration_blocked_ops: u64,
    /// Records shipped over migration channels (log-tail catch-up).
    pub migration_records_shipped: u64,
    /// Consensus protocol messages delivered between replica-group nodes.
    pub consensus_messages: u64,
    /// Client commands committed through the consensus log (writes and
    /// migration reconfigs; excludes leader no-ops).
    pub consensus_commits: u64,
}

impl UdrMetrics {
    /// The counter for a transaction class.
    pub fn ops(&self, class: TxnClass) -> &OpCounter {
        match class {
            TxnClass::FrontEnd => &self.fe_ops,
            TxnClass::Provisioning => &self.ps_ops,
        }
    }

    /// Mutable counter for a transaction class.
    pub fn ops_mut(&mut self, class: TxnClass) -> &mut OpCounter {
        match class {
            TxnClass::FrontEnd => &mut self.fe_ops,
            TxnClass::Provisioning => &mut self.ps_ops,
        }
    }

    /// The latency histogram for a transaction class.
    pub fn latency(&self, class: TxnClass) -> &Histogram {
        match class {
            TxnClass::FrontEnd => &self.fe_latency,
            TxnClass::Provisioning => &self.ps_latency,
        }
    }

    /// Mutable latency histogram for a transaction class.
    pub fn latency_mut(&mut self, class: TxnClass) -> &mut Histogram {
        match class {
            TxnClass::FrontEnd => &mut self.fe_latency,
            TxnClass::Provisioning => &mut self.ps_latency,
        }
    }

    /// Fraction of operations that crossed the backbone.
    pub fn backbone_fraction(&self) -> f64 {
        let total = self.backbone_ops + self.local_ops;
        if total == 0 {
            0.0
        } else {
            self.backbone_ops as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_routing() {
        let mut m = UdrMetrics::default();
        m.ops_mut(TxnClass::FrontEnd).success();
        m.ops_mut(TxnClass::Provisioning).availability_failure();
        assert_eq!(m.ops(TxnClass::FrontEnd).ok, 1);
        assert_eq!(m.ops(TxnClass::Provisioning).unavailable, 1);
        m.latency_mut(TxnClass::FrontEnd)
            .record(SimDuration::from_millis(1));
        assert_eq!(m.latency(TxnClass::FrontEnd).count(), 1);
        assert_eq!(m.latency(TxnClass::Provisioning).count(), 0);
    }

    #[test]
    fn backbone_fraction_math() {
        let mut m = UdrMetrics::default();
        assert_eq!(m.backbone_fraction(), 0.0);
        m.backbone_ops = 1;
        m.local_ops = 3;
        assert!((m.backbone_fraction() - 0.25).abs() < 1e-9);
    }
}
