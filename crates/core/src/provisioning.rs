//! The Provisioning System client (§2.4, §3.3.3).
//!
//! The PS is co-located with one UDR PoA, reads only master copies, and
//! issues the subscription lifecycle operations. A provisioning procedure
//! spans the profile write (one SE transaction) *and* the identity-location
//! bindings — exactly the cross-element grouping the architecture cannot
//! make atomic (§3.2), so failures leave cleanup to PS logic, which this
//! module implements and counts.

use std::collections::BinaryHeap;

use udr_ldap::{Dn, FrameCursor, LdapOp};
use udr_metrics::TimeSeries;
use udr_model::attrs::AttrMod;
use udr_model::config::TxnClass;
use udr_model::error::UdrError;
use udr_model::identity::{Identity, IdentitySet};
use udr_model::ids::{PartitionId, SiteId, SubscriberUid};
use udr_model::procedures::ProvisioningKind;
use udr_model::profile::SubscriberProfile;
use udr_model::tenant::Capability;
use udr_model::time::{SimDuration, SimTime};

use crate::ops::{OpOutcome, OpRequest};
use crate::udr::Udr;

/// Result of provisioning one subscription.
#[derive(Debug, Clone)]
pub struct ProvisionOutcome {
    /// The uid allocated (meaningful only on success).
    pub uid: SubscriberUid,
    /// Partition the subscription was placed on.
    pub partition: PartitionId,
    /// The underlying operation outcome.
    pub op: OpOutcome,
}

impl ProvisionOutcome {
    /// Whether the subscription was created.
    pub fn is_ok(&self) -> bool {
        self.op.is_ok()
    }
}

impl Udr {
    /// Create a subscription: place it, bind every identity in the
    /// location stages, and write the profile to the master copy.
    ///
    /// On write failure the PS rolls the bindings back — the §2.4 cleanup
    /// logic pre-UDC networks needed on every node, here reduced to the
    /// location stage because the profile write itself is atomic.
    pub fn provision_subscriber(
        &mut self,
        ids: &IdentitySet,
        home_region: u32,
        ps_site: SiteId,
        now: SimTime,
    ) -> ProvisionOutcome {
        self.provision_subscriber_internal(ids, home_region, ps_site, now, None)
    }

    /// [`Udr::provision_subscriber`] as part of a framed batch: the
    /// profile Add rides `frame`'s open framed request when one covers
    /// its station (§3.3.3 bulk provisioning), amortising the
    /// per-message framing share. Placement, bindings, rollback and
    /// results are identical to the per-op path.
    pub fn provision_subscriber_framed(
        &mut self,
        ids: &IdentitySet,
        home_region: u32,
        ps_site: SiteId,
        now: SimTime,
        frame: &mut FrameCursor,
    ) -> ProvisionOutcome {
        self.provision_subscriber_internal(ids, home_region, ps_site, now, Some(frame))
    }

    fn provision_subscriber_internal(
        &mut self,
        ids: &IdentitySet,
        home_region: u32,
        ps_site: SiteId,
        now: SimTime,
        frame: Option<&mut FrameCursor>,
    ) -> ProvisionOutcome {
        self.advance_to(now);
        let uid = SubscriberUid(self.alloc_uid());
        let Some(partition) = self
            .placement
            .place(self.cfg.frash.placement, uid, home_region)
        else {
            return ProvisionOutcome {
                uid,
                partition: PartitionId(0),
                op: OpOutcome {
                    result: Err(UdrError::Config("no partitions to place on".into())),
                    latency: SimDuration::ZERO,
                    served_by: None,
                    crossed_backbone: false,
                    breakdown: crate::pipeline::LatencyBreakdown::default(),
                },
            };
        };
        let location = udr_dls::Location { uid, partition };

        // Bind identities first so the Add can resolve through the stage.
        for identity in ids.iter() {
            self.authority.insert(&identity, location);
            for cluster in &mut self.clusters {
                cluster.stage.provision(&identity, location);
            }
        }

        let profile = SubscriberProfile::provision(ids, home_region, self.ki_for(uid));
        let op = LdapOp::Add {
            dn: Dn::for_identity(ids.imsi.into()),
            entry: profile.into_entry(),
        };
        let outcome = self.execute_provisioning(
            &op,
            ProvisioningKind::CreateSubscription,
            ps_site,
            now,
            frame,
        );

        if outcome.is_ok() {
            self.subs_per_partition[partition.index()] += 1;
        } else {
            // Roll back the bindings (PS cleanup logic).
            for identity in ids.iter() {
                self.authority.remove(&identity);
                for cluster in &mut self.clusters {
                    cluster.stage.deprovision(&identity);
                }
            }
        }
        ProvisionOutcome {
            uid,
            partition,
            op: outcome,
        }
    }

    /// Derive a deterministic per-subscriber authentication key.
    fn ki_for(&self, uid: SubscriberUid) -> [u8; 16] {
        let mut ki = [0u8; 16];
        let bytes = uid.raw().to_be_bytes();
        ki[..8].copy_from_slice(&bytes);
        ki[8..].copy_from_slice(&bytes);
        ki
    }

    /// Modify service data of an existing subscription.
    pub fn modify_services(
        &mut self,
        identity: &Identity,
        mods: Vec<AttrMod>,
        ps_site: SiteId,
        now: SimTime,
    ) -> OpOutcome {
        let op = LdapOp::Modify {
            dn: Dn::for_identity(*identity),
            mods,
        };
        self.execute_provisioning(&op, ProvisioningKind::ModifyServices, ps_site, now, None)
    }

    /// [`Udr::modify_services`] as part of a framed batch (see
    /// [`Udr::provision_subscriber_framed`]).
    pub fn modify_services_framed(
        &mut self,
        identity: &Identity,
        mods: Vec<AttrMod>,
        ps_site: SiteId,
        now: SimTime,
        frame: &mut FrameCursor,
    ) -> OpOutcome {
        let op = LdapOp::Modify {
            dn: Dn::for_identity(*identity),
            mods,
        };
        self.execute_provisioning(
            &op,
            ProvisioningKind::ModifyServices,
            ps_site,
            now,
            Some(frame),
        )
    }

    /// Dispatch one provisioning op, framed when a batch frame is open.
    /// The op exercises the flow's [`Capability::Provisioning`], so
    /// tenant authorization treats the whole flow as one capability.
    fn execute_provisioning(
        &mut self,
        op: &LdapOp,
        kind: ProvisioningKind,
        ps_site: SiteId,
        now: SimTime,
        frame: Option<&mut FrameCursor>,
    ) -> OpOutcome {
        let mut req = OpRequest::new(op)
            .class(TxnClass::Provisioning)
            .site(ps_site)
            .at(now)
            .capability(Capability::Provisioning(kind));
        if let Some(frame) = frame {
            req = req.framed(frame);
        }
        self.execute(req).into_op()
    }

    /// Run a filtered search (the §1/§2.2 business-intelligence query
    /// path): returns the subscriber's entry only when it satisfies the
    /// RFC 4515 filter, projected to `attrs` when non-empty. Issued on the
    /// front-end class: BI readers share the FE read path and policies.
    pub fn search_filtered(
        &mut self,
        identity: &Identity,
        filter: udr_ldap::Filter,
        attrs: Vec<udr_model::attrs::AttrId>,
        from_site: SiteId,
        now: SimTime,
    ) -> OpOutcome {
        let op = LdapOp::SearchFilter {
            base: Dn::for_identity(*identity),
            filter,
            attrs,
        };
        self.execute(OpRequest::new(&op).site(from_site).at(now))
            .into_op()
    }

    /// Delete a subscription and all its identity bindings.
    pub fn delete_subscription(
        &mut self,
        ids: &IdentitySet,
        ps_site: SiteId,
        now: SimTime,
    ) -> OpOutcome {
        let identity: Identity = ids.imsi.into();
        let partition = self.authority.peek(&identity).map(|l| l.partition);
        let op = LdapOp::Delete {
            dn: Dn::for_identity(identity),
        };
        let outcome = self.execute_provisioning(
            &op,
            ProvisioningKind::DeleteSubscription,
            ps_site,
            now,
            None,
        );
        if outcome.is_ok() {
            for identity in ids.iter() {
                self.authority.remove(&identity);
                for cluster in &mut self.clusters {
                    cluster.stage.deprovision(&identity);
                }
            }
            if let Some(p) = partition {
                let slot = &mut self.subs_per_partition[p.index()];
                *slot = slot.saturating_sub(1);
            }
        }
        outcome
    }

    /// Fetch the authoritative location of an identity (test/diagnostic
    /// helper — production clients go through the stages).
    pub fn lookup_authority(&self, identity: &Identity) -> Option<udr_dls::Location> {
        self.authority.peek(identity)
    }
}

// ---- batch provisioning (§3.3, §4.1) ----------------------------------------

/// One batch work item.
#[derive(Debug, Clone)]
pub enum BatchItem {
    /// Create a subscription.
    Create {
        /// The identities to provision.
        ids: IdentitySet,
        /// Home region for placement.
        home_region: u32,
    },
    /// Modify an existing subscription.
    Modify {
        /// The identity addressing the subscription.
        identity: Identity,
        /// The modifications.
        mods: Vec<AttrMod>,
    },
}

/// Access-path options of the PS pipeline.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Dispatches per framed access window: the PS coalesces each run of
    /// `access_chunk` dispatches into one framed request per station
    /// ([`udr_ldap::FramedBatch`]), amortising the per-message framing
    /// share for ops after the first on a station. `1` (the default) is
    /// today's per-op wire shape — every dispatch opens and closes its
    /// own window, so framing never engages. Any chunk size leaves item
    /// verdicts (success / retry / manual) unchanged: admission is
    /// per-op at the item's own due instant either way.
    pub access_chunk: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions { access_chunk: 1 }
    }
}

impl BatchOptions {
    /// Per-op wire shape (no framing).
    pub fn per_op() -> Self {
        BatchOptions::default()
    }

    /// Frame every run of `chunk` dispatches into one request per
    /// station.
    pub fn framed(chunk: usize) -> Self {
        BatchOptions {
            access_chunk: chunk.max(1),
        }
    }
}

/// Retry policy of the PS pipeline.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per item (1 = no retry).
    pub max_attempts: u32,
    /// Wait before a retry.
    pub backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: SimDuration::from_secs(5),
        }
    }
}

/// Outcome of a batch run.
#[derive(Debug)]
pub struct BatchReport {
    /// Items submitted.
    pub submitted: usize,
    /// Items that eventually succeeded.
    pub succeeded: usize,
    /// Items that failed after exhausting retries — each needs the §4.1
    /// "send someone to check and apply manually" intervention.
    pub failed: usize,
    /// Total retry attempts performed.
    pub retries: u64,
    /// When the batch drained.
    pub finished_at: SimTime,
    /// Back-log depth over time (§3.3's PS back-log).
    pub backlog: TimeSeries,
}

impl BatchReport {
    /// Fraction of items requiring manual intervention.
    pub fn manual_intervention_fraction(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.failed as f64 / self.submitted as f64
        }
    }
}

#[derive(Debug)]
struct Pending {
    due: SimTime,
    seq: usize,
    item: BatchItem,
    attempt: u32,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (due, seq).
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl Udr {
    /// Run a provisioning batch through the PS pipeline at `rate` items/s
    /// from `ps_site`, with retries per `policy`. Returns the §4.1-style
    /// report (how much of the batch survived a mid-run glitch).
    pub fn run_provisioning_batch(
        &mut self,
        items: Vec<BatchItem>,
        rate: f64,
        start: SimTime,
        ps_site: SiteId,
        policy: RetryPolicy,
    ) -> BatchReport {
        self.run_provisioning_batch_with(
            items,
            rate,
            start,
            ps_site,
            policy,
            BatchOptions::per_op(),
        )
    }

    /// [`Udr::run_provisioning_batch`] with explicit access-path options:
    /// `options.access_chunk > 1` frames each run of that many dispatches
    /// into one request per station, amortising per-message framing cost
    /// without touching item semantics (due instants, admission, retries
    /// and verdicts are identical to the per-op path — the e12 campaign
    /// asserts so).
    pub fn run_provisioning_batch_with(
        &mut self,
        items: Vec<BatchItem>,
        rate: f64,
        start: SimTime,
        ps_site: SiteId,
        policy: RetryPolicy,
        options: BatchOptions,
    ) -> BatchReport {
        assert!(rate > 0.0, "batch rate must be positive");
        let submitted = items.len();
        let gap = SimDuration::from_secs_f64(1.0 / rate);
        let mut heap: BinaryHeap<Pending> = BinaryHeap::new();
        for (seq, item) in items.into_iter().enumerate() {
            heap.push(Pending {
                due: start + gap * seq as u64,
                seq,
                item,
                attempt: 1,
            });
        }
        let mut succeeded = 0usize;
        let mut failed = 0usize;
        let mut retries = 0u64;
        let mut backlog = TimeSeries::new();
        let mut next_seq = submitted;
        let mut finished_at = start;
        let mut sample_gate = start;
        let chunk = options.access_chunk.max(1);
        let mut frame = FrameCursor::new();
        let mut dispatched = 0usize;

        while let Some(pending) = heap.pop() {
            let now = pending.due;
            // A new framed window every `chunk` dispatches; chunk 1 resets
            // the frame before every op, which is exactly per-op framing.
            if dispatched.is_multiple_of(chunk) {
                frame.reset();
            }
            dispatched += 1;
            if now >= sample_gate {
                // Back-log = items already submitted (arrival time passed)
                // but not yet resolved; future arrivals don't count.
                let arrived = (now.duration_since(start).as_secs_f64() * rate)
                    .floor()
                    .min(submitted as f64) as usize;
                let resolved = succeeded + failed;
                backlog.push(now, arrived.saturating_sub(resolved) as f64);
                sample_gate = now + SimDuration::from_secs(1);
            }
            let outcome_ok = match &pending.item {
                BatchItem::Create { ids, home_region } => {
                    let out = self.provision_subscriber_framed(
                        ids,
                        *home_region,
                        ps_site,
                        now,
                        &mut frame,
                    );
                    match out.op.result {
                        Ok(_) => Ok(()),
                        Err(e) => Err(e),
                    }
                }
                BatchItem::Modify { identity, mods } => {
                    let out = self.modify_services_framed(
                        identity,
                        mods.clone(),
                        ps_site,
                        now,
                        &mut frame,
                    );
                    match out.result {
                        Ok(_) => Ok(()),
                        Err(e) => Err(e),
                    }
                }
            };
            finished_at = self.now().max(now);
            match outcome_ok {
                Ok(()) => succeeded += 1,
                Err(e) if e.is_retryable() && pending.attempt < policy.max_attempts => {
                    retries += 1;
                    heap.push(Pending {
                        due: now + policy.backoff,
                        seq: next_seq,
                        item: pending.item,
                        attempt: pending.attempt + 1,
                    });
                    next_seq += 1;
                }
                Err(_) => failed += 1,
            }
        }
        backlog.push(finished_at, 0.0);
        BatchReport {
            submitted,
            succeeded,
            failed,
            retries,
            finished_at,
            backlog,
        }
    }
}
