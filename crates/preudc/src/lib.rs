//! # udr-preudc
//!
//! The **pre-UDC baseline**: the node-based telecom network the paper's UDC
//! architecture replaces (Figures 1 and 3, §2.1/§2.4). Subscriber data
//! lives in standalone HLR/HSS silos — one partition each, no replication,
//! no transactions — and identity routing lives in per-site SLF instances
//! that provisioning must write one by one.
//!
//! Built so experiment E14 can measure the paper's motivation directly:
//! multi-node provisioning without atomicity leaves the network
//! inconsistent on partial failures (divergent/dangling routes, subscribers
//! provisioned-but-dead), silo crashes take their whole partition down, and
//! repairs wait for the network to heal — all of which the UDR's
//! single-writer transaction (Figure 4) eliminates.

#![warn(missing_docs)]

pub mod network;
pub mod nodes;

pub use network::{PreUdcNetwork, PreUdcStats, ProvisionResult};
pub use nodes::{HlrId, HlrNode, SlfNode};
