//! The assembled pre-UDC telecom network (Figure 1) and its provisioning
//! weakness (Figure 3, §2.4).
//!
//! "All the operations associated with a single provisioning procedure need
//! to be handled as a transaction. Since NF instances do not provide
//! support for transactional operations this turns into very complex PS
//! logic … and corner cases that could not be solved … normally end up
//! requiring manual intervention on the nodes to restore the network to a
//! consistent state."
//!
//! The PS here behaves the way §4.1 describes real ones behaving: on a
//! partial failure it leaves the writes that landed in place, records the
//! incomplete subscription, and "waits until network service is restored"
//! to complete it — during which window the network is inconsistent and
//! front-ends see dangling or missing routes.

use udr_model::attrs::{AttrMod, Entry};
use udr_model::error::{UdrError, UdrResult};
use udr_model::identity::{Identity, IdentitySet};
use udr_model::ids::{SiteId, SubscriberUid};
use udr_model::profile::SubscriberProfile;
use udr_model::time::{SimDuration, SimTime};
use udr_sim::net::{Network, Topology};
use udr_sim::SimRng;

use crate::nodes::{HlrId, HlrNode, SlfNode};

/// Result of one pre-UDC provisioning procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvisionResult {
    /// Every node write landed.
    Clean,
    /// The procedure failed before any state changed (home HLR
    /// unreachable): a clean failure the PS can simply retry.
    FailedClean,
    /// Some writes landed and some did not; the partial subscription stays
    /// on the nodes until a repair pass completes it (§2.4's manual
    /// intervention).
    Incomplete {
        /// SLF sites missing their routing tuples.
        missing_sites: Vec<SiteId>,
    },
}

impl ProvisionResult {
    /// Whether the subscription was fully provisioned.
    pub fn is_ok(&self) -> bool {
        *self == ProvisionResult::Clean
    }

    /// Whether the network was left inconsistent.
    pub fn left_inconsistent(&self) -> bool {
        matches!(self, ProvisionResult::Incomplete { .. })
    }
}

/// Counters for the pre-UDC network.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreUdcStats {
    /// Provisioning procedures fully succeeded first pass.
    pub clean: u64,
    /// Procedures that failed without touching state.
    pub failed_clean: u64,
    /// Procedures that left partial state behind.
    pub incomplete: u64,
    /// Subscriptions completed later by repair passes.
    pub repaired: u64,
    /// Front-end lookups that hit a dangling/missing route.
    pub routing_misses: u64,
}

/// One incomplete subscription awaiting repair.
#[derive(Debug, Clone)]
struct PendingRepair {
    uid: SubscriberUid,
    hlr: HlrId,
    identities: Vec<Identity>,
    missing_sites: Vec<SiteId>,
}

/// The node-based network: one HLR silo and one SLF instance per site.
pub struct PreUdcNetwork {
    /// The simulated IP network.
    pub net: Network,
    rng: SimRng,
    hlrs: Vec<HlrNode>,
    slfs: Vec<SlfNode>,
    ps_site: SiteId,
    next_uid: u64,
    pending: Vec<PendingRepair>,
    /// Run counters.
    pub stats: PreUdcStats,
}

impl PreUdcNetwork {
    /// Build a network of `sites` sites, the PS co-located at `ps_site`.
    pub fn new(sites: u32, ps_site: SiteId, seed: u64) -> Self {
        let hlrs = (0..sites)
            .map(|s| HlrNode::new(HlrId(s), SiteId(s)))
            .collect();
        let slfs = (0..sites).map(|s| SlfNode::new(SiteId(s))).collect();
        PreUdcNetwork {
            net: Network::new(Topology::multinational(sites as usize)),
            rng: SimRng::seed_from_u64(seed),
            hlrs,
            slfs,
            ps_site,
            next_uid: 1,
            pending: Vec::new(),
            stats: PreUdcStats::default(),
        }
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.hlrs.len()
    }

    /// Direct HLR access (fault injection / audits).
    pub fn hlr_mut(&mut self, hlr: HlrId) -> &mut HlrNode {
        &mut self.hlrs[hlr.0 as usize]
    }

    /// Direct SLF access (fault injection / audits).
    pub fn slf_mut(&mut self, site: SiteId) -> &mut SlfNode {
        &mut self.slfs[site.index()]
    }

    /// Subscriptions still awaiting repair.
    pub fn pending_repairs(&self) -> usize {
        self.pending.len()
    }

    fn reach(&mut self, from: SiteId, to: SiteId) -> UdrResult<SimDuration> {
        self.net
            .round_trip(from, to, &mut self.rng)
            .ok_or(UdrError::Timeout)
    }

    /// Provision a subscription (Figure 3): one write to the home HLR plus
    /// routing writes to **every** SLF instance, with no transaction
    /// spanning them.
    pub fn provision(
        &mut self,
        ids: &IdentitySet,
        home_region: u32,
        _now: SimTime,
    ) -> (ProvisionResult, SimDuration) {
        let uid = SubscriberUid(self.next_uid);
        self.next_uid += 1;
        let hlr_id = HlrId(home_region % self.hlrs.len() as u32);
        let hlr_site = self.hlrs[hlr_id.0 as usize].site();
        let mut latency = SimDuration::ZERO;

        // Step 1: profile on the home HLR. If this fails nothing landed.
        let profile = SubscriberProfile::provision(ids, home_region, [0u8; 16]);
        let hlr_write = self.reach(self.ps_site, hlr_site).and_then(|rtt| {
            latency += rtt;
            self.hlrs[hlr_id.0 as usize].create(uid, profile.into_entry())
        });
        if hlr_write.is_err() {
            self.stats.failed_clean += 1;
            return (ProvisionResult::FailedClean, latency);
        }

        // Step 2: routing tuples on every SLF instance, fanned out in
        // parallel (latency = slowest reachable site).
        let identities: Vec<Identity> = ids.iter().collect();
        let mut missing: Vec<SiteId> = Vec::new();
        let mut worst = SimDuration::ZERO;
        for s in 0..self.slfs.len() {
            let site = SiteId(s as u32);
            let ok = match self.reach(self.ps_site, site) {
                Ok(rtt) => {
                    worst = worst.max(rtt);
                    let slf = &mut self.slfs[s];
                    identities
                        .iter()
                        .all(|id| slf.bind(id, uid, hlr_id).is_ok())
                }
                Err(_) => false,
            };
            if !ok {
                missing.push(site);
            }
        }
        latency += worst;

        if missing.is_empty() {
            self.stats.clean += 1;
            (ProvisionResult::Clean, latency)
        } else {
            // §4.1: the PS leaves the partial subscription and queues the
            // completion for "when network service is restored".
            self.stats.incomplete += 1;
            self.pending.push(PendingRepair {
                uid,
                hlr: hlr_id,
                identities,
                missing_sites: missing.clone(),
            });
            (
                ProvisionResult::Incomplete {
                    missing_sites: missing,
                },
                latency,
            )
        }
    }

    /// Run one repair pass (the manual/deferred completion of §2.4/§4.1):
    /// try to install every missing routing tuple; returns how many
    /// subscriptions became fully consistent.
    pub fn run_repairs(&mut self, _now: SimTime) -> usize {
        let mut completed = 0usize;
        let ps_site = self.ps_site;
        let mut still_pending = Vec::new();
        let mut pending = std::mem::take(&mut self.pending);
        for repair in pending.drain(..) {
            let mut remaining: Vec<SiteId> = Vec::new();
            for site in &repair.missing_sites {
                let ok = self.reach(ps_site, *site).is_ok() && {
                    let slf = &mut self.slfs[site.index()];
                    repair
                        .identities
                        .iter()
                        .all(|id| slf.bind(id, repair.uid, repair.hlr).is_ok())
                };
                if !ok {
                    remaining.push(*site);
                }
            }
            if remaining.is_empty() {
                completed += 1;
                self.stats.repaired += 1;
            } else {
                still_pending.push(PendingRepair {
                    missing_sites: remaining,
                    ..repair
                });
            }
        }
        self.pending = still_pending;
        completed
    }

    /// A front-end lookup at `fe_site` (Figure 1 traffic): resolve the
    /// identity at the local SLF, then read the profile from the owning
    /// HLR. Missing routes (the inconsistency window) surface here.
    pub fn fe_lookup(
        &mut self,
        identity: &Identity,
        fe_site: SiteId,
        _now: SimTime,
    ) -> (UdrResult<Entry>, SimDuration) {
        let mut latency = SimDuration::ZERO;
        let resolve = self.reach(fe_site, fe_site).and_then(|rtt| {
            latency += rtt;
            self.slfs[fe_site.index()].resolve(identity)
        });
        let (uid, hlr_id) = match resolve {
            Ok(Some(route)) => route,
            Ok(None) => {
                self.stats.routing_misses += 1;
                return (
                    Err(UdrError::UnknownIdentity(identity.to_string())),
                    latency,
                );
            }
            Err(e) => return (Err(e), latency),
        };
        let hlr_site = self.hlrs[hlr_id.0 as usize].site();
        let read = self.reach(fe_site, hlr_site).and_then(|rtt| {
            latency += rtt;
            self.hlrs[hlr_id.0 as usize].read(uid)
        });
        match read {
            Ok(Some(entry)) => (Ok(entry), latency),
            Ok(None) => {
                // Dangling route: the SLF points at a profile that is gone.
                self.stats.routing_misses += 1;
                (Err(UdrError::NotFound(uid)), latency)
            }
            Err(e) => (Err(e), latency),
        }
    }

    /// Modify service data: a single-node write plus the local SLF
    /// resolution (the easy case even pre-UDC).
    pub fn modify(
        &mut self,
        identity: &Identity,
        mods: &[AttrMod],
        _now: SimTime,
    ) -> (UdrResult<()>, SimDuration) {
        let mut latency = SimDuration::ZERO;
        let ps_site = self.ps_site;
        let route = self.reach(ps_site, ps_site).and_then(|rtt| {
            latency += rtt;
            self.slfs[ps_site.index()].resolve(identity)
        });
        let (uid, hlr_id) = match route {
            Ok(Some(r)) => r,
            Ok(None) => {
                return (
                    Err(UdrError::UnknownIdentity(identity.to_string())),
                    latency,
                )
            }
            Err(e) => return (Err(e), latency),
        };
        let hlr_site = self.hlrs[hlr_id.0 as usize].site();
        let write = self.reach(ps_site, hlr_site).and_then(|rtt| {
            latency += rtt;
            self.hlrs[hlr_id.0 as usize].modify(uid, mods)
        });
        (write, latency)
    }

    /// Audit the whole network for inconsistencies: routes pointing at
    /// absent profiles ("dangling") and identities present in some SLF
    /// instances but not all ("divergent"). Returns
    /// `(dangling_routes, divergent_identities)`.
    pub fn audit(&self) -> (usize, usize) {
        use std::collections::BTreeSet;
        let mut dangling = 0usize;
        let mut per_site: Vec<BTreeSet<&str>> = Vec::with_capacity(self.slfs.len());
        for slf in &self.slfs {
            let mut keys = BTreeSet::new();
            for (key, (uid, hlr)) in slf.routes() {
                if self.hlrs[hlr.0 as usize]
                    .read(*uid)
                    .ok()
                    .flatten()
                    .is_none()
                {
                    dangling += 1;
                }
                keys.insert(key.as_str());
            }
            per_site.push(keys);
        }
        let union: BTreeSet<&str> = per_site.iter().flatten().copied().collect();
        let divergent = union
            .iter()
            .filter(|k| !per_site.iter().all(|s| s.contains(*k)))
            .count();
        (dangling, divergent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::identity::{Imsi, Msisdn};
    use udr_sim::net::Cut;

    fn ids(n: u64) -> IdentitySet {
        IdentitySet {
            imsi: Imsi::new(format!("21401{n:010}")).unwrap(),
            msisdn: Msisdn::new(format!("346{n:08}")).unwrap(),
            impus: vec![],
            impi: None,
        }
    }

    #[test]
    fn healthy_provisioning_is_clean() {
        let mut net = PreUdcNetwork::new(3, SiteId(0), 1);
        let (result, latency) = net.provision(&ids(1), 1, SimTime(0));
        assert_eq!(result, ProvisionResult::Clean);
        assert!(latency > SimDuration::ZERO);
        assert_eq!(net.audit(), (0, 0));
        let id: Identity = ids(1).imsi.into();
        for s in 0..3 {
            let (out, _) = net.fe_lookup(&id, SiteId(s), SimTime(1));
            assert!(out.is_ok(), "site {s}: {out:?}");
        }
    }

    #[test]
    fn unreachable_home_hlr_fails_clean() {
        let mut net = PreUdcNetwork::new(3, SiteId(0), 2);
        let h = net.net.start_partition(Cut::isolating([SiteId(2)]));
        // Subscriber homed at cut site 2: nothing lands.
        let (result, _) = net.provision(&ids(1), 2, SimTime(0));
        assert_eq!(result, ProvisionResult::FailedClean);
        assert_eq!(net.audit(), (0, 0));
        assert_eq!(net.pending_repairs(), 0);
        net.net.heal_partition(h);
    }

    #[test]
    fn partial_provisioning_leaves_divergence_until_repair() {
        let mut net = PreUdcNetwork::new(3, SiteId(0), 3);
        let h = net.net.start_partition(Cut::isolating([SiteId(2)]));
        // Homed at reachable site 0: HLR write lands, SLF 2 fails.
        let set = ids(1);
        let (result, _) = net.provision(&set, 0, SimTime(0));
        assert_eq!(
            result,
            ProvisionResult::Incomplete {
                missing_sites: vec![SiteId(2)]
            }
        );
        assert!(result.left_inconsistent());
        assert_eq!(net.pending_repairs(), 1);

        // Divergence visible: 2 identities present at sites 0,1 missing at 2.
        let (dangling, divergent) = net.audit();
        assert_eq!(dangling, 0);
        assert_eq!(divergent, 2);

        // The new subscriber works at sites 0/1 but does not exist at 2 —
        // the §4.1 "new user walks out of the shop and the phone is dead".
        let id: Identity = set.imsi.into();
        assert!(net.fe_lookup(&id, SiteId(0), SimTime(1)).0.is_ok());
        assert!(net.fe_lookup(&id, SiteId(2), SimTime(1)).0.is_err());
        assert_eq!(net.stats.routing_misses, 1);

        // Repairs fail while the partition lasts...
        assert_eq!(net.run_repairs(SimTime(2)), 0);
        // ...and complete after heal.
        net.net.heal_partition(h);
        assert_eq!(net.run_repairs(SimTime(3)), 1);
        assert_eq!(net.audit(), (0, 0));
        assert!(net.fe_lookup(&id, SiteId(2), SimTime(4)).0.is_ok());
        assert_eq!(net.stats.repaired, 1);
    }

    #[test]
    fn down_slf_creates_incomplete_subscription() {
        let mut net = PreUdcNetwork::new(3, SiteId(0), 4);
        net.slf_mut(SiteId(1)).set_up(false);
        let (result, _) = net.provision(&ids(1), 0, SimTime(0));
        assert_eq!(
            result,
            ProvisionResult::Incomplete {
                missing_sites: vec![SiteId(1)]
            }
        );
        net.slf_mut(SiteId(1)).set_up(true);
        assert_eq!(net.run_repairs(SimTime(1)), 1);
        assert_eq!(net.audit(), (0, 0));
    }

    #[test]
    fn crashed_hlr_silo_takes_its_partition_down() {
        // §2.1: "when one node fails, only the users making use of that
        // instance are affected" — but they are *fully* affected (no
        // replicas pre-UDC).
        let mut net = PreUdcNetwork::new(3, SiteId(0), 5);
        for i in 0..6 {
            assert!(net.provision(&ids(i), (i % 3) as u32, SimTime(0)).0.is_ok());
        }
        net.hlr_mut(HlrId(1)).set_up(false);
        let mut dead = 0;
        for i in 0..6 {
            let id: Identity = ids(i).imsi.into();
            if net.fe_lookup(&id, SiteId(0), SimTime(1)).0.is_err() {
                dead += 1;
            }
        }
        assert_eq!(dead, 2, "exactly the silo's subscribers lose service");
    }

    #[test]
    fn modify_is_single_node_and_works() {
        let mut net = PreUdcNetwork::new(3, SiteId(0), 6);
        let set = ids(7);
        assert!(net.provision(&set, 2, SimTime(0)).0.is_ok());
        let id: Identity = set.imsi.into();
        let (out, latency) = net.modify(
            &id,
            &[AttrMod::Set(
                udr_model::attrs::AttrId::OdbMask,
                udr_model::attrs::AttrValue::U64(3),
            )],
            SimTime(1),
        );
        assert!(out.is_ok());
        assert!(latency > SimDuration::ZERO);
    }
}
