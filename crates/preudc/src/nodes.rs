//! The node-based network elements of the pre-UDC world (Figure 1, §2.1,
//! §2.4): standalone HLR/HSS silos, each owning one partition of the
//! subscriber space, and Subscription Location Function (SLF) instances
//! holding identity → HLR-address routing tuples at every site.
//!
//! None of these nodes "provide support for transactional operations"
//! (§2.4) — every write is independent, which is what makes multi-node
//! provisioning fragile.

use std::collections::BTreeMap;

use udr_model::attrs::{AttrMod, Entry};
use udr_model::error::{UdrError, UdrResult};
use udr_model::identity::Identity;
use udr_model::ids::{SiteId, SubscriberUid};

/// Identifier of one HLR/HSS node (a vertical silo).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HlrId(pub u32);

impl std::fmt::Display for HlrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hlr{}", self.0)
    }
}

/// A standalone HLR/HSS node: owns its partition's profiles outright, no
/// replication, no transactions across operations.
#[derive(Debug)]
pub struct HlrNode {
    id: HlrId,
    site: SiteId,
    profiles: BTreeMap<SubscriberUid, Entry>,
    up: bool,
    /// Writes accepted (diagnostics).
    pub writes: u64,
}

impl HlrNode {
    /// A fresh node at `site`.
    pub fn new(id: HlrId, site: SiteId) -> Self {
        HlrNode {
            id,
            site,
            profiles: BTreeMap::new(),
            up: true,
            writes: 0,
        }
    }

    /// Node identity.
    pub fn id(&self) -> HlrId {
        self.id
    }

    /// Hosting site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Whether the node is serving.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Crash the node (HLRs are single silos: their partition is gone until
    /// restore — the §2.1 failure mode "the subscribers whose data are held
    /// in the failing node lose access to the network").
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    fn check_up(&self) -> UdrResult<()> {
        if self.up {
            Ok(())
        } else {
            Err(UdrError::SeUnavailable(udr_model::ids::SeId(self.id.0)))
        }
    }

    /// Create a profile (independent write, no transaction).
    pub fn create(&mut self, uid: SubscriberUid, entry: Entry) -> UdrResult<()> {
        self.check_up()?;
        if self.profiles.contains_key(&uid) {
            return Err(UdrError::AlreadyExists(uid));
        }
        self.profiles.insert(uid, entry);
        self.writes += 1;
        Ok(())
    }

    /// Modify a profile.
    pub fn modify(&mut self, uid: SubscriberUid, mods: &[AttrMod]) -> UdrResult<()> {
        self.check_up()?;
        let entry = self.profiles.get_mut(&uid).ok_or(UdrError::NotFound(uid))?;
        entry.apply(mods);
        self.writes += 1;
        Ok(())
    }

    /// Delete a profile.
    pub fn delete(&mut self, uid: SubscriberUid) -> UdrResult<()> {
        self.check_up()?;
        self.profiles.remove(&uid).ok_or(UdrError::NotFound(uid))?;
        self.writes += 1;
        Ok(())
    }

    /// Read a profile.
    pub fn read(&self, uid: SubscriberUid) -> UdrResult<Option<Entry>> {
        self.check_up()?;
        Ok(self.profiles.get(&uid).cloned())
    }

    /// Profiles held.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the node holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// One SLF instance: identity → (uid, owning HLR) routing tuples. Every
/// site runs one; provisioning must write **all** of them (§2.4: "data
/// location information is created in all instances of signaling routing
/// NF").
#[derive(Debug)]
pub struct SlfNode {
    site: SiteId,
    routes: BTreeMap<String, (SubscriberUid, HlrId)>,
    up: bool,
}

impl SlfNode {
    /// A fresh SLF at `site`.
    pub fn new(site: SiteId) -> Self {
        SlfNode {
            site,
            routes: BTreeMap::new(),
            up: true,
        }
    }

    /// Hosting site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Whether the instance is serving.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Toggle availability.
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    /// Install a routing tuple.
    pub fn bind(&mut self, identity: &Identity, uid: SubscriberUid, hlr: HlrId) -> UdrResult<()> {
        if !self.up {
            return Err(UdrError::Timeout);
        }
        self.routes.insert(identity.as_str().to_owned(), (uid, hlr));
        Ok(())
    }

    /// Remove a routing tuple.
    pub fn unbind(&mut self, identity: &Identity) -> UdrResult<()> {
        if !self.up {
            return Err(UdrError::Timeout);
        }
        self.routes.remove(identity.as_str());
        Ok(())
    }

    /// Resolve an identity to its owning HLR.
    pub fn resolve(&self, identity: &Identity) -> UdrResult<Option<(SubscriberUid, HlrId)>> {
        if !self.up {
            return Err(UdrError::Timeout);
        }
        Ok(self.routes.get(identity.as_str()).copied())
    }

    /// Tuples held.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no tuples are held.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Iterate the route table (consistency audits / operator tooling).
    pub fn routes(&self) -> impl Iterator<Item = (&String, &(SubscriberUid, HlrId))> {
        self.routes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::attrs::{AttrId, AttrValue};
    use udr_model::identity::Imsi;

    fn entry() -> Entry {
        let mut e = Entry::new();
        e.set(AttrId::Msisdn, "34600123456");
        e
    }

    #[test]
    fn hlr_crud() {
        let mut hlr = HlrNode::new(HlrId(0), SiteId(0));
        let uid = SubscriberUid(1);
        hlr.create(uid, entry()).unwrap();
        assert_eq!(hlr.create(uid, entry()), Err(UdrError::AlreadyExists(uid)));
        hlr.modify(uid, &[AttrMod::Set(AttrId::OdbMask, AttrValue::U64(1))])
            .unwrap();
        let e = hlr.read(uid).unwrap().unwrap();
        assert_eq!(e.get(AttrId::OdbMask).and_then(AttrValue::as_u64), Some(1));
        hlr.delete(uid).unwrap();
        assert_eq!(hlr.delete(uid), Err(UdrError::NotFound(uid)));
        assert!(hlr.is_empty());
        assert_eq!(hlr.writes, 3);
    }

    #[test]
    fn down_hlr_refuses() {
        let mut hlr = HlrNode::new(HlrId(2), SiteId(0));
        hlr.set_up(false);
        assert!(hlr.read(SubscriberUid(1)).is_err());
        assert!(hlr.create(SubscriberUid(1), entry()).is_err());
        assert!(!hlr.is_up());
    }

    #[test]
    fn slf_routing() {
        let mut slf = SlfNode::new(SiteId(1));
        let id: Identity = Imsi::new("214011234567890").unwrap().into();
        slf.bind(&id, SubscriberUid(7), HlrId(3)).unwrap();
        assert_eq!(
            slf.resolve(&id).unwrap(),
            Some((SubscriberUid(7), HlrId(3)))
        );
        slf.unbind(&id).unwrap();
        assert_eq!(slf.resolve(&id).unwrap(), None);
    }

    #[test]
    fn down_slf_times_out() {
        let mut slf = SlfNode::new(SiteId(1));
        slf.set_up(false);
        let id: Identity = Imsi::new("214011234567890").unwrap().into();
        assert!(slf.bind(&id, SubscriberUid(1), HlrId(0)).is_err());
        assert!(slf.resolve(&id).is_err());
    }
}
