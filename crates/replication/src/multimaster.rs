//! Multi-master operation and the consistency-restoration process (§5).
//!
//! "Once the partition incident is over, a consistency restoration process
//! must run across the whole UDR NF, trying to merge the different views
//! into one single, consistent view."
//!
//! During a partition each side promotes a reachable copy and keeps taking
//! writes; views diverge with every write. After heal we merge *states*
//! (not logs): for every record, the version with the latest commit
//! timestamp wins (last-writer-wins), ties broken by writer SE id. Records
//! written on more than one side with different values are counted as
//! conflicts — the consistency price of availability the CAP theorem
//! demands.

use std::collections::BTreeMap;

use udr_model::ids::SubscriberUid;
use udr_model::time::SimTime;
use udr_storage::{Engine, EngineSnapshot, Lsn, RecordView};

/// Statistics of one consistency-restoration run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Distinct records examined across all branches.
    pub records_examined: usize,
    /// Records whose post-divergence versions differ across branches
    /// (true write conflicts resolved by LWW).
    pub conflicts: usize,
    /// Records written on exactly one side post-divergence (clean merges).
    pub one_sided_updates: usize,
}

/// The outcome of merging divergent branches.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The merged, convergent state every replica should be reseeded from.
    pub snapshot: EngineSnapshot,
    /// Conflict statistics.
    pub stats: MergeStats,
}

/// Per-record winner selection: latest commit instant wins; ties break on
/// the higher writer SE id, then higher LSN (total order ⇒ deterministic,
/// branch-order-independent merges).
fn beats(a: RecordView<'_>, b: RecordView<'_>) -> bool {
    (a.committed_at, a.written_by, a.lsn) > (b.committed_at, b.written_by, b.lsn)
}

/// Merge the committed states of divergent branch masters.
///
/// `diverged_at` is the instant the partition started: versions committed
/// strictly after it count as branch writes for conflict accounting.
pub fn merge_branches(diverged_at: SimTime, branches: &[&Engine]) -> MergeOutcome {
    // Collect, per uid, every branch's version (borrowed views — the merge
    // only clones the payloads that win).
    let mut by_uid: BTreeMap<SubscriberUid, Vec<RecordView<'_>>> = BTreeMap::new();
    for engine in branches {
        for view in engine.iter_committed() {
            by_uid.entry(view.uid).or_default().push(view);
        }
    }

    let mut stats = MergeStats::default();
    let mut records = Vec::with_capacity(by_uid.len());
    let mut max_lsn = Lsn::ZERO;
    for engine in branches {
        max_lsn = max_lsn.max(engine.last_lsn());
    }

    for (uid, versions) in by_uid {
        stats.records_examined += 1;

        // Winner by LWW.
        let winner = versions
            .iter()
            .copied()
            .reduce(|best, v| if beats(v, best) { v } else { best })
            .expect("at least one version per collected uid");

        // Conflict accounting over post-divergence writes with distinct
        // outcomes.
        let mut post: Vec<&RecordView<'_>> = versions
            .iter()
            .filter(|v| v.committed_at > diverged_at)
            .collect();
        post.dedup_by(|a, b| a.entry == b.entry && a.committed_at == b.committed_at);
        let distinct_values = {
            let mut entries: Vec<_> = post.iter().map(|v| &v.entry).collect();
            entries.sort_by_key(|e| format!("{e:?}"));
            entries.dedup();
            entries.len()
        };
        if distinct_values > 1 {
            stats.conflicts += 1;
        } else if distinct_values == 1 && versions.len() > 1 {
            // Written post-divergence on some side(s) but with one outcome.
            stats.one_sided_updates += 1;
        } else if distinct_values == 1 {
            stats.one_sided_updates += 1;
        }

        records.push((uid, winner.to_version()));
    }

    MergeOutcome {
        snapshot: EngineSnapshot {
            records,
            last_lsn: max_lsn,
        },
        stats,
    }
}

/// How long the restoration process takes, as a function of the number of
/// records examined and the per-record processing cost. §5 notes the merge
/// "must run across the whole UDR NF" — it is a full scan.
pub fn restoration_duration(
    records_examined: usize,
    per_record: udr_model::time::SimDuration,
) -> udr_model::time::SimDuration {
    per_record * records_examined as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::attrs::{AttrId, AttrValue, Entry};
    use udr_model::config::IsolationLevel;
    use udr_model::ids::SeId;
    use udr_model::time::SimDuration;

    fn entry(v: u64) -> Entry {
        let mut e = Entry::new();
        e.set(AttrId::OdbMask, v);
        e
    }

    fn put(engine: &mut Engine, uid: u64, v: u64, at: SimTime) {
        let t = engine.begin(IsolationLevel::ReadCommitted);
        engine.put(t, SubscriberUid(uid), entry(v)).unwrap();
        engine.commit(t, at).unwrap();
    }

    fn val(snapshot: &EngineSnapshot, uid: u64) -> Option<u64> {
        snapshot
            .records
            .iter()
            .find(|(u, _)| u.raw() == uid)
            .and_then(|(_, v)| v.entry.as_ref())
            .and_then(|e| e.get(AttrId::OdbMask))
            .and_then(AttrValue::as_u64)
    }

    /// Two branches seeded with the same pre-partition state.
    fn seeded_pair() -> (Engine, Engine) {
        let mut a = Engine::new(SeId(0));
        put(&mut a, 1, 100, SimTime(10));
        put(&mut a, 2, 200, SimTime(11));
        let snap = a.snapshot();
        let mut b = Engine::from_snapshot(SeId(1), snap);
        b.set_se(SeId(1));
        (a, b)
    }

    #[test]
    fn conflicting_writes_resolve_lww() {
        let (mut a, mut b) = seeded_pair();
        let diverged = SimTime(20);
        put(&mut a, 1, 111, SimTime(30)); // side A writes uid 1
        put(&mut b, 1, 999, SimTime(40)); // side B writes uid 1 later

        let out = merge_branches(diverged, &[&a, &b]);
        assert_eq!(out.stats.conflicts, 1);
        assert_eq!(val(&out.snapshot, 1), Some(999)); // later write wins
        assert_eq!(val(&out.snapshot, 2), Some(200)); // untouched survives
    }

    #[test]
    fn merge_is_branch_order_independent() {
        let (mut a, mut b) = seeded_pair();
        let diverged = SimTime(20);
        put(&mut a, 1, 111, SimTime(30));
        put(&mut b, 1, 999, SimTime(30)); // same instant: SeId breaks tie
        put(&mut b, 2, 222, SimTime(31));

        let ab = merge_branches(diverged, &[&a, &b]);
        let ba = merge_branches(diverged, &[&b, &a]);
        assert_eq!(ab.snapshot.records, ba.snapshot.records);
        assert_eq!(ab.stats, ba.stats);
        // SeId(1) > SeId(0) wins the tie.
        assert_eq!(val(&ab.snapshot, 1), Some(999));
    }

    #[test]
    fn one_sided_updates_are_not_conflicts() {
        let (mut a, b) = seeded_pair();
        put(&mut a, 1, 111, SimTime(30));
        let out = merge_branches(SimTime(20), &[&a, &b]);
        assert_eq!(out.stats.conflicts, 0);
        assert_eq!(val(&out.snapshot, 1), Some(111));
    }

    #[test]
    fn both_sides_creating_different_records_merge_cleanly() {
        let (mut a, mut b) = seeded_pair();
        put(&mut a, 10, 1, SimTime(30));
        put(&mut b, 20, 2, SimTime(31));
        let out = merge_branches(SimTime(20), &[&a, &b]);
        assert_eq!(out.stats.conflicts, 0);
        assert_eq!(val(&out.snapshot, 10), Some(1));
        assert_eq!(val(&out.snapshot, 20), Some(2));
        assert_eq!(out.stats.records_examined, 4);
    }

    #[test]
    fn deletes_participate_in_lww() {
        let (mut a, mut b) = seeded_pair();
        // Side A deletes uid 1, side B updates it later: update wins.
        let t = a.begin(IsolationLevel::ReadCommitted);
        a.delete(t, SubscriberUid(1)).unwrap();
        a.commit(t, SimTime(30)).unwrap();
        put(&mut b, 1, 7, SimTime(40));

        let out = merge_branches(SimTime(20), &[&a, &b]);
        assert_eq!(val(&out.snapshot, 1), Some(7));
        assert_eq!(out.stats.conflicts, 1);

        // And the reverse: delete later than update ⇒ record stays dead.
        let (mut a2, mut b2) = seeded_pair();
        put(&mut a2, 1, 7, SimTime(30));
        let t = b2.begin(IsolationLevel::ReadCommitted);
        b2.delete(t, SubscriberUid(1)).unwrap();
        b2.commit(t, SimTime(40)).unwrap();
        let out2 = merge_branches(SimTime(20), &[&a2, &b2]);
        assert_eq!(val(&out2.snapshot, 1), None);
    }

    #[test]
    fn reseeded_replicas_converge() {
        let (mut a, mut b) = seeded_pair();
        put(&mut a, 1, 111, SimTime(30));
        put(&mut b, 1, 999, SimTime(40));
        let out = merge_branches(SimTime(20), &[&a, &b]);

        let ra = Engine::from_snapshot(SeId(0), out.snapshot.clone());
        let rb = Engine::from_snapshot(SeId(1), out.snapshot.clone());
        let state = |e: &Engine| {
            let mut v: Vec<_> = e
                .iter_committed()
                .map(|view| (view.uid, view.entry.cloned()))
                .collect();
            v.sort_by_key(|(u, _)| *u);
            v
        };
        assert_eq!(state(&ra), state(&rb));
        assert_eq!(ra.last_lsn(), rb.last_lsn());
    }

    #[test]
    fn three_way_merge() {
        let mut a = Engine::new(SeId(0));
        put(&mut a, 1, 1, SimTime(5));
        let snap = a.snapshot();
        let mut b = Engine::from_snapshot(SeId(1), snap.clone());
        b.set_se(SeId(1));
        let mut c = Engine::from_snapshot(SeId(2), snap);
        c.set_se(SeId(2));

        put(&mut a, 1, 10, SimTime(30));
        put(&mut b, 1, 20, SimTime(35));
        put(&mut c, 1, 30, SimTime(40));

        let out = merge_branches(SimTime(20), &[&a, &b, &c]);
        assert_eq!(val(&out.snapshot, 1), Some(30));
        assert_eq!(out.stats.conflicts, 1);
    }

    #[test]
    fn restoration_duration_scales_linearly() {
        let per = SimDuration::from_micros(10);
        assert_eq!(restoration_duration(0, per), SimDuration::ZERO);
        assert_eq!(
            restoration_duration(1_000_000, per),
            SimDuration::from_secs(10)
        );
    }
}
