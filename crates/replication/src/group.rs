//! Replication groups: the set of copies of one partition, exactly one of
//! which is master at any time (§3.2: "copies are not all equal").

use udr_model::error::{UdrError, UdrResult};
use udr_model::ids::{PartitionId, SeId};
use udr_storage::Lsn;

/// The replica set of one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationGroup {
    partition: PartitionId,
    /// All member SEs; the first added is the initial master.
    members: Vec<SeId>,
    master: SeId,
    /// Bumped on every mastership change; stale-master fencing in tests.
    epoch: u64,
}

impl ReplicationGroup {
    /// Build a group; the first member is the initial master.
    pub fn new(partition: PartitionId, members: Vec<SeId>) -> UdrResult<Self> {
        if members.is_empty() {
            return Err(UdrError::Config(format!("{partition}: empty replica set")));
        }
        let mut dedup = members.clone();
        dedup.sort();
        dedup.dedup();
        if dedup.len() != members.len() {
            return Err(UdrError::Config(format!("{partition}: duplicate members")));
        }
        let master = members[0];
        Ok(ReplicationGroup {
            partition,
            members,
            master,
            epoch: 0,
        })
    }

    /// The partition replicated.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// The current master.
    pub fn master(&self) -> SeId {
        self.master
    }

    /// Mastership epoch (bumped on every failover).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// All members, master first.
    pub fn members(&self) -> &[SeId] {
        &self.members
    }

    /// The slaves (everyone but the master).
    pub fn slaves(&self) -> impl Iterator<Item = SeId> + '_ {
        let master = self.master;
        self.members.iter().copied().filter(move |se| *se != master)
    }

    /// Whether `se` belongs to this group.
    pub fn contains(&self, se: SeId) -> bool {
        self.members.contains(&se)
    }

    /// Replication factor.
    pub fn replication_factor(&self) -> usize {
        self.members.len()
    }

    /// Promote `se` to master (failover). Errors if `se` is not a member.
    pub fn promote(&mut self, se: SeId) -> UdrResult<()> {
        if !self.contains(se) {
            return Err(UdrError::Config(format!(
                "{se} is not a member of {}'s replica set",
                self.partition
            )));
        }
        if se != self.master {
            self.master = se;
            self.epoch += 1;
        }
        Ok(())
    }

    /// Swap `old` out of the replica set for `new` (live migration
    /// cutover). When `old` was the master, `new` inherits mastership and
    /// the epoch bumps — exactly like a failover, because to every route
    /// cache it *is* one. Errors when `old` is not a member or `new`
    /// already is.
    pub fn replace_member(&mut self, old: SeId, new: SeId) -> UdrResult<()> {
        if !self.contains(old) {
            return Err(UdrError::Config(format!(
                "{old} is not a member of {}'s replica set",
                self.partition
            )));
        }
        if self.contains(new) {
            return Err(UdrError::Config(format!(
                "{new} is already a member of {}'s replica set",
                self.partition
            )));
        }
        for se in &mut self.members {
            if *se == old {
                *se = new;
            }
        }
        if self.master == old {
            self.master = new;
            self.epoch += 1;
        }
        Ok(())
    }

    /// Pick the best promotion candidate among `alive` slaves given their
    /// applied LSNs: the most caught-up copy wins, ties break on lowest
    /// SeId. Returns `None` when no alive slave exists (total outage).
    pub fn promotion_candidate(&self, alive: &[(SeId, Lsn)]) -> Option<SeId> {
        alive
            .iter()
            .filter(|(se, _)| self.contains(*se) && *se != self.master)
            .max_by(|(a_se, a_lsn), (b_se, b_lsn)| a_lsn.cmp(b_lsn).then_with(|| b_se.cmp(a_se)))
            .map(|(se, _)| *se)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> ReplicationGroup {
        ReplicationGroup::new(PartitionId(0), vec![SeId(0), SeId(1), SeId(2)]).unwrap()
    }

    #[test]
    fn first_member_is_master() {
        let g = group();
        assert_eq!(g.master(), SeId(0));
        assert_eq!(g.replication_factor(), 3);
        let slaves: Vec<_> = g.slaves().collect();
        assert_eq!(slaves, vec![SeId(1), SeId(2)]);
    }

    #[test]
    fn empty_or_duplicate_members_rejected() {
        assert!(ReplicationGroup::new(PartitionId(0), vec![]).is_err());
        assert!(ReplicationGroup::new(PartitionId(0), vec![SeId(1), SeId(1)]).is_err());
    }

    #[test]
    fn promote_bumps_epoch() {
        let mut g = group();
        g.promote(SeId(2)).unwrap();
        assert_eq!(g.master(), SeId(2));
        assert_eq!(g.epoch(), 1);
        // Promoting the current master is a no-op.
        g.promote(SeId(2)).unwrap();
        assert_eq!(g.epoch(), 1);
        // Non-members are rejected.
        assert!(g.promote(SeId(9)).is_err());
    }

    #[test]
    fn replace_member_hands_over_mastership() {
        let mut g = group();
        // Replacing a slave: membership changes, mastership does not.
        g.replace_member(SeId(1), SeId(5)).unwrap();
        assert_eq!(g.master(), SeId(0));
        assert_eq!(g.epoch(), 0);
        assert!(g.contains(SeId(5)) && !g.contains(SeId(1)));
        // Replacing the master: the newcomer inherits it, epoch bumps.
        g.replace_member(SeId(0), SeId(6)).unwrap();
        assert_eq!(g.master(), SeId(6));
        assert_eq!(g.epoch(), 1);
        // Invalid swaps are rejected.
        assert!(g.replace_member(SeId(0), SeId(9)).is_err()); // old gone
        assert!(g.replace_member(SeId(2), SeId(5)).is_err()); // new present
    }

    #[test]
    fn promotion_candidate_prefers_most_caught_up() {
        let g = group();
        let candidate = g
            .promotion_candidate(&[(SeId(1), Lsn(10)), (SeId(2), Lsn(15))])
            .unwrap();
        assert_eq!(candidate, SeId(2));
    }

    #[test]
    fn promotion_candidate_ties_break_low_id() {
        let g = group();
        let candidate = g
            .promotion_candidate(&[(SeId(2), Lsn(10)), (SeId(1), Lsn(10))])
            .unwrap();
        assert_eq!(candidate, SeId(1));
    }

    #[test]
    fn promotion_candidate_ignores_master_and_strangers() {
        let g = group();
        // Master itself and non-members must not be chosen.
        assert_eq!(
            g.promotion_candidate(&[(SeId(0), Lsn(99)), (SeId(7), Lsn(99))]),
            None
        );
    }
}
