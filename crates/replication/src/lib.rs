//! # udr-replication
//!
//! Replication for the UDR, covering every propagation scheme the paper
//! discusses:
//!
//! * [`shipping`] — the first realization's asynchronous master→slave log
//!   shipping (§3.3.1 decision 2), with FIFO channels, catch-up after
//!   partitions and snapshot reseeds after log truncation;
//! * [`group`] — replica sets, mastership epochs and failover candidate
//!   selection (most-caught-up slave wins);
//! * [`migration`] — migration channels for live partition moves: the
//!   snapshot-seed + log-tail catch-up ledger of a copy that is joining,
//!   kept apart from the group's replica channels until cutover;
//! * [`semisync`] — the §5 dual-in-sequence scheme (commit only when both
//!   replicas report success; a failed second replica may stay updated);
//! * [`quorum`] — the §5 Cassandra-style `(n, w, r)` ensemble comparison;
//! * [`multimaster`] — §5 multi-master divergence and the
//!   consistency-restoration merge (state-based LWW with conflict counts);
//! * [`twophase`] — the cross-SE 2PC the paper rejects (§3.2), implemented
//!   so the ablation experiment can measure the cost and blocking hazard.

#![warn(missing_docs)]

pub mod group;
pub mod migration;
pub mod multimaster;
pub mod quorum;
pub mod semisync;
pub mod shipping;
pub mod twophase;

pub use group::ReplicationGroup;
pub use migration::{MigrationChannel, MigrationState};
pub use multimaster::{merge_branches, restoration_duration, MergeOutcome, MergeStats};
pub use quorum::{
    quorum_consistent, quorum_read, quorum_write, QuorumReadOutcome, QuorumWriteOutcome,
};
pub use semisync::{dual_in_sequence, DualOutcome, TxnShape};
pub use shipping::{AsyncShipper, BatchDelivery, Delivery, Enqueue, ShipBatchConfig};
pub use twophase::{two_phase_commit, TwoPcOutcome};
