//! Migration channels: the data-movement counterpart of the replica
//! channels in [`shipping`](crate::shipping).
//!
//! A live partition migration reuses the replication machinery — seed the
//! target from an [`EngineSnapshot`](udr_storage::EngineSnapshot), then
//! stream the master's log tail until the target converges — but the
//! target is *not* a group member while it catches up: commits must not
//! wait for it, failovers must not promote it, and read policies must not
//! route to it. A [`MigrationChannel`] therefore keeps its own shipping
//! ledger (an [`AsyncShipper`] with exactly one registered slave) next to
//! the group's, plus the migration state machine the orchestrator drives:
//!
//! ```text
//! Seeding ──▶ CatchingUp ──▶ Frozen ──▶ Done
//!    │             │            │
//!    └─────────────┴────────────┴──────▶ Aborted
//! ```
//!
//! * `Seeding` — the snapshot is in transfer; nothing ships yet;
//! * `CatchingUp` — periodic passes ship the log suffix while writes flow;
//! * `Frozen` — the source refuses writes for the final hand-off window;
//! * `Done` / `Aborted` — cutover applied, or the move was abandoned
//!   (fault on either end) without any epoch change.

use udr_model::ids::SeId;
use udr_model::time::{SimDuration, SimTime};
use udr_storage::{Engine, Lsn};

use crate::shipping::{AsyncShipper, Delivery};

/// Lifecycle of one live partition migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationState {
    /// Snapshot transfer to the target is in progress.
    Seeding {
        /// When the transfer completes and tail shipping may start.
        ready_at: SimTime,
    },
    /// The target applies the master's log tail while traffic flows.
    CatchingUp,
    /// Final window: the source is write-frozen, the last records ship.
    Frozen {
        /// When the freeze began (availability-window accounting).
        since: SimTime,
    },
    /// Cutover applied; the target owns the copy.
    Done,
    /// The move was abandoned; the source keeps serving unchanged.
    Aborted,
}

impl MigrationState {
    /// Whether the migration is still running (not terminal).
    pub fn is_active(&self) -> bool {
        !matches!(self, MigrationState::Done | MigrationState::Aborted)
    }
}

/// The shipping ledger of one in-flight partition migration.
#[derive(Debug, Clone)]
pub struct MigrationChannel {
    target: SeId,
    shipper: AsyncShipper,
}

impl MigrationChannel {
    /// A channel to `target`, seeded from a snapshot at `seeded` (tail
    /// shipping resumes right after that LSN).
    pub fn new(target: SeId, seeded: Lsn) -> Self {
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(target, seeded);
        MigrationChannel { target, shipper }
    }

    /// The SE receiving the copy.
    pub fn target(&self) -> SeId {
        self.target
    }

    /// Highest LSN the target confirmed applied.
    pub fn applied(&self) -> Lsn {
        self.shipper.applied(self.target).unwrap_or(Lsn::ZERO)
    }

    /// Confirm the target applied everything through `lsn`.
    pub fn on_applied(&mut self, lsn: Lsn) {
        self.shipper.on_applied(self.target, lsn);
    }

    /// Records the target still misses relative to the source master.
    pub fn lag(&self, source: &Engine) -> u64 {
        self.shipper.lag(self.target, source).unwrap_or(0)
    }

    /// Whether the source log was truncated past what the target needs,
    /// so only a fresh snapshot reseed can converge the copy.
    pub fn needs_reseed(&self, source: &Engine) -> bool {
        self.shipper.needs_reseed(self.target, source)
    }

    /// Reset the ledger after reseeding the target at `lsn`.
    pub fn reseeded(&mut self, lsn: Lsn) {
        self.shipper.register_slave(self.target, lsn);
    }

    /// Ship the log suffix the target misses (one catch-up pass). Same
    /// contract as [`AsyncShipper::catch_up`].
    pub fn catch_up(
        &mut self,
        source: &Engine,
        now: SimTime,
        delay: Option<SimDuration>,
    ) -> Vec<Delivery> {
        self.shipper.catch_up(self.target, source, now, delay)
    }

    /// Records shipped over this channel so far (including re-ships).
    pub fn records_shipped(&self) -> u64 {
        self.shipper.shipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::attrs::{AttrId, Entry};
    use udr_model::config::IsolationLevel;
    use udr_model::ids::SubscriberUid;

    fn commit_n(engine: &mut Engine, n: u64) {
        for i in 0..n {
            let t = engine.begin(IsolationLevel::ReadCommitted);
            let mut e = Entry::new();
            e.set(AttrId::OdbMask, i);
            engine.put(t, SubscriberUid(i), e).unwrap();
            engine.commit(t, SimTime(i)).unwrap().unwrap();
        }
    }

    #[test]
    fn channel_converges_target_from_snapshot_point() {
        let mut source = Engine::new(SeId(0));
        commit_n(&mut source, 3);
        // Target seeded at LSN 3; two more commits land during transfer.
        let mut ch = MigrationChannel::new(SeId(7), Lsn(3));
        commit_n(&mut source, 2);
        assert_eq!(ch.lag(&source), 2);

        let deliveries = ch.catch_up(&source, SimTime(10), Some(SimDuration::from_millis(1)));
        assert_eq!(deliveries.len(), 2);
        for d in &deliveries {
            assert_eq!(d.slave, SeId(7));
            // (The real target was snapshot-seeded; here we only check the
            // ledger converges.)
            ch.on_applied(d.record.lsn);
        }
        assert_eq!(ch.lag(&source), 0);
        assert_eq!(ch.records_shipped(), 2);
    }

    #[test]
    fn truncated_source_log_demands_reseed() {
        let mut source = Engine::new(SeId(0));
        commit_n(&mut source, 5);
        source.truncate_log(Lsn(4));
        let mut ch = MigrationChannel::new(SeId(7), Lsn(1));
        assert!(ch.needs_reseed(&source));
        assert!(ch
            .catch_up(&source, SimTime(0), Some(SimDuration::ZERO))
            .is_empty());
        ch.reseeded(source.last_lsn());
        assert!(!ch.needs_reseed(&source));
        assert_eq!(ch.lag(&source), 0);
    }

    #[test]
    fn state_machine_terminal_states() {
        assert!(MigrationState::Seeding {
            ready_at: SimTime(5)
        }
        .is_active());
        assert!(MigrationState::CatchingUp.is_active());
        assert!(MigrationState::Frozen { since: SimTime(9) }.is_active());
        assert!(!MigrationState::Done.is_active());
        assert!(!MigrationState::Aborted.is_active());
    }
}
