//! Asynchronous master→slave log shipping (§3.3.1 decision 2).
//!
//! The master streams commit records to each slave over a FIFO channel
//! (delivery order equals send order, like TCP); the slave applies them in
//! LSN order, preserving the master's serialization order (§3.2). Shipping
//! is asynchronous: commits never wait. When a slave is unreachable the
//! channel stalls and a catch-up pass re-ships the missing suffix from the
//! master's log once the slave is reachable again.

use std::collections::{BTreeSet, HashMap};

use udr_model::ids::SeId;
use udr_model::time::{SimDuration, SimTime};
use udr_storage::{CommitRecord, Engine, Lsn};

/// Knobs for coalescing shipped records into batches (one network message
/// per batch instead of one per commit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipBatchConfig {
    /// Flush a channel's open batch once it holds this many records.
    pub max_records: usize,
    /// Flush an open batch this long after its first record was enqueued,
    /// even if not full.
    pub linger: SimDuration,
}

impl ShipBatchConfig {
    /// Legacy behaviour: every commit ships as its own delivery.
    pub const fn per_record() -> Self {
        ShipBatchConfig {
            max_records: 1,
            linger: SimDuration::ZERO,
        }
    }

    /// Coalesce up to `max_records` commits or `linger`, whichever first.
    pub const fn coalesce(max_records: usize, linger: SimDuration) -> Self {
        ShipBatchConfig {
            max_records,
            linger,
        }
    }

    /// Whether this configuration coalesces at all.
    pub fn is_per_record(&self) -> bool {
        self.max_records <= 1
    }
}

impl Default for ShipBatchConfig {
    fn default() -> Self {
        ShipBatchConfig::per_record()
    }
}

/// Per-slave FIFO shipping state.
#[derive(Debug, Clone, Default)]
struct Channel {
    /// Highest LSN this slave has applied (confirmed).
    applied: Lsn,
    /// Highest LSN currently in flight to the slave.
    inflight: Lsn,
    /// Arrival instant of the last in-flight record (FIFO clamp).
    last_arrival: SimTime,
    /// Records coalescing in the currently open batch (batched mode).
    pending: Vec<CommitRecord>,
    /// Highest LSN accepted into `pending` (== `inflight` when empty).
    enqueued: Lsn,
    /// Open-batch generation; guards stale linger timers.
    batch_seq: u64,
    /// Trace ID of the operation that opened the current batch (0 =
    /// untraced); rides the flushed [`BatchDelivery`] so the delivery can
    /// be attributed to the commit that started the coalescing window.
    open_trace: u64,
}

/// The shipping ledger for one replication group.
#[derive(Debug, Clone, Default)]
pub struct AsyncShipper {
    channels: HashMap<SeId, Channel>,
    /// Slaves explicitly drained from the group. A drained slave's channel
    /// is gone for good: stray [`AsyncShipper::reseeded`] confirmations or
    /// in-flight delivery acks must not resurrect it, or the periodic
    /// catch-up pass would retry its pending suffix forever.
    drained: BTreeSet<SeId>,
    /// Records shipped (including re-ships).
    pub shipped: u64,
    /// Catch-up passes performed.
    pub catchups: u64,
    /// Coalesced batches delivered (batched mode only).
    pub batches: u64,
}

/// A planned delivery: apply `record` on `slave` at `arrives`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Destination slave SE.
    pub slave: SeId,
    /// The record to apply.
    pub record: CommitRecord,
    /// Virtual arrival instant.
    pub arrives: SimTime,
}

/// A planned batched delivery: apply `records` (contiguous LSNs, in order)
/// on `slave` when the single batch message arrives at `arrives`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchDelivery {
    /// Destination slave SE.
    pub slave: SeId,
    /// The coalesced records, in LSN order.
    pub records: Vec<CommitRecord>,
    /// Virtual arrival instant of the whole batch.
    pub arrives: SimTime,
    /// Trace ID of the operation that opened the batch (0 = untraced).
    pub trace: u64,
}

/// Outcome of enqueueing a record into a channel's open batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// The record opened a new batch; schedule a linger flush carrying
    /// this sequence number.
    Opened {
        /// Generation of the batch just opened.
        seq: u64,
    },
    /// The record joined the already-open batch.
    Joined,
    /// The record filled the batch to its cap; flush now via
    /// [`AsyncShipper::flush_open`].
    Full,
    /// Refused: unknown channel or out-of-sequence record (catch-up will
    /// re-ship from the log).
    Refused,
}

impl AsyncShipper {
    /// A shipper with no slaves registered yet.
    pub fn new() -> Self {
        AsyncShipper::default()
    }

    /// Register a slave channel starting from `applied` (what the slave
    /// already has, e.g. from a seed snapshot). Explicit registration is
    /// the only way back in for a previously drained slave.
    pub fn register_slave(&mut self, slave: SeId, applied: Lsn) {
        self.drained.remove(&slave);
        self.channels.insert(
            slave,
            Channel {
                applied,
                inflight: applied,
                last_arrival: SimTime::ZERO,
                pending: Vec::new(),
                enqueued: applied,
                batch_seq: 0,
                open_trace: 0,
            },
        );
    }

    /// Drain a slave (member left the group, e.g. migrated away or
    /// decommissioned): its channel and any pending re-ship bookkeeping
    /// are dropped, and the slave is tombstoned so late
    /// [`AsyncShipper::reseeded`] confirmations cannot re-create the
    /// channel behind the group's back. Returns how many records were
    /// still pending (un-acked) on the dropped channel.
    pub fn unregister_slave(&mut self, slave: SeId) -> u64 {
        self.drained.insert(slave);
        match self.channels.remove(&slave) {
            Some(ch) => {
                ch.inflight.raw().saturating_sub(ch.applied.raw()) + ch.pending.len() as u64
            }
            None => 0,
        }
    }

    /// Registered slaves.
    pub fn slaves(&self) -> impl Iterator<Item = SeId> + '_ {
        self.channels.keys().copied()
    }

    /// The highest LSN `slave` has confirmed applied.
    pub fn applied(&self, slave: SeId) -> Option<Lsn> {
        self.channels.get(&slave).map(|c| c.applied)
    }

    /// Plan delivery of one just-committed record to one slave. `delay` is
    /// the sampled one-way network delay; `None` (unreachable/lost) stalls
    /// the channel — a later catch-up pass will re-ship.
    pub fn ship(
        &mut self,
        slave: SeId,
        record: &CommitRecord,
        now: SimTime,
        delay: Option<SimDuration>,
    ) -> Option<Delivery> {
        let ch = self.channels.get_mut(&slave)?;
        // Only ship the exact next record; anything else waits for catch-up.
        if !ch.pending.is_empty() || record.lsn != ch.inflight.next() {
            return None;
        }
        let delay = delay?;
        let arrives = (now + delay).max(ch.last_arrival);
        ch.inflight = record.lsn;
        ch.enqueued = record.lsn;
        ch.last_arrival = arrives;
        self.shipped += 1;
        Some(Delivery {
            slave,
            record: record.clone(),
            arrives,
        })
    }

    /// Confirm that `slave` applied everything through `lsn`.
    pub fn on_applied(&mut self, slave: SeId, lsn: Lsn) {
        if let Some(ch) = self.channels.get_mut(&slave) {
            ch.applied = ch.applied.max(lsn);
            ch.inflight = ch.inflight.max(lsn);
            ch.enqueued = ch.enqueued.max(lsn);
        }
    }

    /// Enqueue a just-committed record into `slave`'s open batch (batched
    /// shipping). The record must be the exact next LSN the channel
    /// expects; anything else is refused and left to catch-up. Reachability
    /// is evaluated when the batch flushes, not here.
    pub fn enqueue(
        &mut self,
        slave: SeId,
        record: &CommitRecord,
        cfg: &ShipBatchConfig,
    ) -> Enqueue {
        let Some(ch) = self.channels.get_mut(&slave) else {
            return Enqueue::Refused;
        };
        if record.lsn != ch.enqueued.next() {
            return Enqueue::Refused;
        }
        let opened = ch.pending.is_empty();
        ch.pending.push(record.clone());
        ch.enqueued = record.lsn;
        if opened {
            ch.batch_seq += 1;
            ch.open_trace = 0;
        }
        if ch.pending.len() >= cfg.max_records.max(1) {
            Enqueue::Full
        } else if opened {
            Enqueue::Opened { seq: ch.batch_seq }
        } else {
            Enqueue::Joined
        }
    }

    /// Attribute the currently open batch on `slave`'s channel to a trace
    /// (the operation whose commit opened it). A no-op for unknown
    /// channels or when nothing is coalescing.
    pub fn stamp_open_trace(&mut self, slave: SeId, trace: u64) {
        if let Some(ch) = self.channels.get_mut(&slave) {
            if !ch.pending.is_empty() {
                ch.open_trace = trace;
            }
        }
    }

    /// Flush `slave`'s open batch unconditionally (cap reached). `delay` is
    /// the sampled network delay for the single batch message; `None`
    /// (unreachable) drops the batch and stalls the channel — catch-up
    /// re-ships the suffix from the master's log.
    pub fn flush_open(
        &mut self,
        slave: SeId,
        now: SimTime,
        delay: Option<SimDuration>,
    ) -> Option<BatchDelivery> {
        let ch = self.channels.get_mut(&slave)?;
        if ch.pending.is_empty() {
            return None;
        }
        let Some(delay) = delay else {
            // Stall: the records stay in the master's log only.
            ch.pending.clear();
            ch.enqueued = ch.inflight;
            ch.open_trace = 0;
            return None;
        };
        let arrives = (now + delay).max(ch.last_arrival);
        let records = std::mem::take(&mut ch.pending);
        let trace = std::mem::take(&mut ch.open_trace);
        let last = records.last().expect("non-empty batch").lsn;
        ch.inflight = last;
        ch.enqueued = last;
        ch.last_arrival = arrives;
        self.shipped += records.len() as u64;
        self.batches += 1;
        Some(BatchDelivery {
            slave,
            records,
            arrives,
            trace,
        })
    }

    /// Flush `slave`'s open batch only if it is still generation `seq`
    /// (linger timer fired). A batch that already flushed at its cap — or a
    /// channel rebuilt since — ignores the stale timer.
    pub fn flush_if_open(
        &mut self,
        slave: SeId,
        seq: u64,
        now: SimTime,
        delay: Option<SimDuration>,
    ) -> Option<BatchDelivery> {
        let ch = self.channels.get(&slave)?;
        if ch.pending.is_empty() || ch.batch_seq != seq {
            return None;
        }
        self.flush_open(slave, now, delay)
    }

    /// Plan a catch-up pass for `slave`: re-ship every record the master
    /// still retains beyond the slave's applied LSN. `delay` is the sampled
    /// delay for the (batched) transfer; records inside a batch arrive
    /// back-to-back.
    ///
    /// Returns an empty vector when the slave is up to date or the channel
    /// is unknown. Panics never: a truncated master log that can no longer
    /// serve the suffix yields only the retained part — callers detect the
    /// gap via [`AsyncShipper::needs_reseed`].
    pub fn catch_up(
        &mut self,
        slave: SeId,
        master: &Engine,
        now: SimTime,
        delay: Option<SimDuration>,
    ) -> Vec<Delivery> {
        let Some(ch) = self.channels.get_mut(&slave) else {
            return Vec::new();
        };
        if ch.applied >= master.last_lsn() {
            return Vec::new();
        }
        // Anything coalescing in an open batch is superseded: the catch-up
        // suffix re-ships those records straight from the log.
        ch.pending.clear();
        ch.enqueued = ch.inflight;
        ch.open_trace = 0;
        let Some(delay) = delay else {
            return Vec::new();
        };
        let records = master.log().since(ch.applied);
        if records.is_empty() || records[0].lsn != ch.applied.next() {
            // The suffix was truncated; a full reseed is required instead.
            return Vec::new();
        }
        self.catchups += 1;
        let mut arrives = (now + delay).max(ch.last_arrival);
        let mut deliveries = Vec::with_capacity(records.len());
        for record in records {
            deliveries.push(Delivery {
                slave,
                record: record.clone(),
                arrives,
            });
            ch.inflight = record.lsn;
            ch.enqueued = record.lsn;
            ch.last_arrival = arrives;
            // Records in the same batch arrive 1 µs apart (stream order).
            arrives += SimDuration::from_micros(1);
        }
        self.shipped += deliveries.len() as u64;
        deliveries
    }

    /// Whether the master can no longer serve the suffix the slave needs
    /// (log truncated past the slave's applied LSN) so a snapshot reseed is
    /// the only way to resync.
    pub fn needs_reseed(&self, slave: SeId, master: &Engine) -> bool {
        let Some(ch) = self.channels.get(&slave) else {
            return false;
        };
        if ch.applied >= master.last_lsn() {
            return false;
        }
        match master.log().first_retained() {
            Some(first) => first > ch.applied.next(),
            // Log empty but master LSN ahead: everything truncated.
            None => true,
        }
    }

    /// Reset a channel after reseeding the slave from a snapshot at `lsn`.
    /// A confirmation for a slave that was drained in the meantime is
    /// dropped — only [`AsyncShipper::register_slave`] readmits it.
    pub fn reseeded(&mut self, slave: SeId, lsn: Lsn) {
        if self.drained.contains(&slave) {
            return;
        }
        self.register_slave(slave, lsn);
    }

    /// Replication lag of `slave` behind the master, in LSNs.
    pub fn lag(&self, slave: SeId, master: &Engine) -> Option<u64> {
        let ch = self.channels.get(&slave)?;
        Some(master.last_lsn().raw().saturating_sub(ch.applied.raw()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::attrs::{AttrId, Entry};
    use udr_model::config::IsolationLevel;
    use udr_model::ids::SubscriberUid;

    fn commit_n(engine: &mut Engine, n: u64) -> Vec<CommitRecord> {
        (0..n)
            .map(|i| {
                let t = engine.begin(IsolationLevel::ReadCommitted);
                let mut e = Entry::new();
                e.set(AttrId::OdbMask, i);
                engine.put(t, SubscriberUid(i), e).unwrap();
                engine.commit(t, SimTime(i)).unwrap().unwrap()
            })
            .collect()
    }

    #[test]
    fn ship_in_order_with_fifo_clamp() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 2);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);

        // First record: 10 ms delay.
        let d1 = shipper
            .ship(
                SeId(1),
                &recs[0],
                SimTime(0),
                Some(SimDuration::from_millis(10)),
            )
            .unwrap();
        // Second record sent 1 ms later but sampled a 2 ms delay: FIFO
        // clamps its arrival to not precede the first.
        let d2 = shipper
            .ship(
                SeId(1),
                &recs[1],
                SimTime(1_000_000),
                Some(SimDuration::from_millis(2)),
            )
            .unwrap();
        assert!(d2.arrives >= d1.arrives);
    }

    #[test]
    fn ship_skips_out_of_sequence_records() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 3);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);
        // Shipping record 2 before record 1 is refused.
        assert!(shipper
            .ship(SeId(1), &recs[1], SimTime(0), Some(SimDuration::ZERO))
            .is_none());
        assert!(shipper
            .ship(SeId(1), &recs[0], SimTime(0), Some(SimDuration::ZERO))
            .is_some());
    }

    #[test]
    fn stalled_channel_catches_up() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 5);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);

        // Partition: the first ship attempt fails (None delay), channel stalls.
        assert!(shipper.ship(SeId(1), &recs[0], SimTime(0), None).is_none());
        assert_eq!(shipper.lag(SeId(1), &master), Some(5));

        // Heal: catch-up re-ships the full suffix in order.
        let deliveries = shipper.catch_up(
            SeId(1),
            &master,
            SimTime(100),
            Some(SimDuration::from_millis(10)),
        );
        assert_eq!(deliveries.len(), 5);
        for (i, d) in deliveries.iter().enumerate() {
            assert_eq!(d.record.lsn, Lsn(i as u64 + 1));
            if i > 0 {
                assert!(d.arrives >= deliveries[i - 1].arrives);
            }
        }
        // Apply + confirm.
        let mut slave = Engine::new(SeId(1));
        for d in &deliveries {
            slave.apply_replicated(&d.record).unwrap();
            shipper.on_applied(SeId(1), d.record.lsn);
        }
        assert_eq!(shipper.lag(SeId(1), &master), Some(0));
        assert_eq!(shipper.catchups, 1);
    }

    #[test]
    fn catch_up_noop_when_current() {
        let mut master = Engine::new(SeId(0));
        commit_n(&mut master, 2);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn(2));
        assert!(shipper
            .catch_up(SeId(1), &master, SimTime(0), Some(SimDuration::ZERO))
            .is_empty());
    }

    #[test]
    fn truncated_log_requires_reseed() {
        let mut master = Engine::new(SeId(0));
        commit_n(&mut master, 5);
        master.truncate_log(Lsn(3));
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn(1));

        assert!(shipper.needs_reseed(SeId(1), &master));
        assert!(shipper
            .catch_up(SeId(1), &master, SimTime(0), Some(SimDuration::ZERO))
            .is_empty());

        // Reseed from snapshot, then no more reseed needed.
        shipper.reseeded(SeId(1), master.last_lsn());
        assert!(!shipper.needs_reseed(SeId(1), &master));
        assert_eq!(shipper.lag(SeId(1), &master), Some(0));
    }

    #[test]
    fn slave_within_retained_log_does_not_need_reseed() {
        let mut master = Engine::new(SeId(0));
        commit_n(&mut master, 5);
        master.truncate_log(Lsn(2));
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn(2));
        assert!(!shipper.needs_reseed(SeId(1), &master));
        let deliveries = shipper.catch_up(SeId(1), &master, SimTime(0), Some(SimDuration::ZERO));
        assert_eq!(deliveries.len(), 3);
    }

    /// Regression: draining a slave mid-stall must drop its pending
    /// deliveries for good. Before the tombstone, a late `reseeded`
    /// confirmation re-created the channel and every subsequent
    /// catch-up pass re-shipped the suffix to a slave that had already
    /// left the group — retried forever by `CatchupTick`.
    #[test]
    fn drained_slave_stays_drained() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 4);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);

        // Stall the channel (partition: ship fails), then drain the slave.
        assert!(shipper.ship(SeId(1), &recs[0], SimTime(0), None).is_none());
        let pending = shipper.unregister_slave(SeId(1));
        assert_eq!(pending, 0); // nothing in flight, 4 unshipped
        assert_eq!(shipper.slaves().count(), 0);

        // A stray reseed confirmation from before the drain arrives late:
        // it must NOT resurrect the channel.
        shipper.reseeded(SeId(1), Lsn(2));
        assert!(shipper.applied(SeId(1)).is_none());
        assert!(!shipper.needs_reseed(SeId(1), &master));

        // Catch-up passes ship nothing to the drained slave, forever.
        for t in 0..3 {
            assert!(shipper
                .catch_up(SeId(1), &master, SimTime(t), Some(SimDuration::ZERO))
                .is_empty());
        }
        assert_eq!(shipper.catchups, 0);

        // Explicit re-registration (the slave re-joins the group) is the
        // only way back in.
        shipper.register_slave(SeId(1), Lsn(1));
        let deliveries = shipper.catch_up(SeId(1), &master, SimTime(9), Some(SimDuration::ZERO));
        assert_eq!(deliveries.len(), 3);
    }

    #[test]
    fn unregister_reports_inflight_pending() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 2);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);
        // Two records in flight, none acked.
        for r in &recs {
            assert!(shipper
                .ship(SeId(1), r, SimTime(0), Some(SimDuration::from_millis(5)))
                .is_some());
        }
        assert_eq!(shipper.unregister_slave(SeId(1)), 2);
    }

    #[test]
    fn batch_flushes_at_cap() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 5);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);
        let cfg = ShipBatchConfig::coalesce(3, SimDuration::from_millis(5));

        assert_eq!(
            shipper.enqueue(SeId(1), &recs[0], &cfg),
            Enqueue::Opened { seq: 1 }
        );
        assert_eq!(shipper.enqueue(SeId(1), &recs[1], &cfg), Enqueue::Joined);
        assert_eq!(shipper.enqueue(SeId(1), &recs[2], &cfg), Enqueue::Full);
        let batch = shipper
            .flush_open(SeId(1), SimTime(10), Some(SimDuration::from_millis(2)))
            .unwrap();
        assert_eq!(batch.records.len(), 3);
        assert_eq!(
            batch.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![Lsn(1), Lsn(2), Lsn(3)]
        );
        assert_eq!(shipper.shipped, 3);
        assert_eq!(shipper.batches, 1);

        // The stale linger timer for the flushed batch is a no-op.
        assert!(shipper
            .flush_if_open(SeId(1), 1, SimTime(20), Some(SimDuration::ZERO))
            .is_none());

        // Apply the batch on a slave and confirm the tail LSN.
        let mut slave = Engine::new(SeId(1));
        for r in &batch.records {
            slave.apply_replicated(r).unwrap();
        }
        shipper.on_applied(SeId(1), batch.records.last().unwrap().lsn);
        assert_eq!(shipper.applied(SeId(1)), Some(Lsn(3)));
        assert_eq!(shipper.lag(SeId(1), &master), Some(2));
    }

    #[test]
    fn linger_timer_flushes_partial_batch() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 2);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);
        let cfg = ShipBatchConfig::coalesce(10, SimDuration::from_millis(5));

        let Enqueue::Opened { seq } = shipper.enqueue(SeId(1), &recs[0], &cfg) else {
            panic!("expected Opened");
        };
        assert_eq!(shipper.enqueue(SeId(1), &recs[1], &cfg), Enqueue::Joined);
        let batch = shipper
            .flush_if_open(
                SeId(1),
                seq,
                SimTime(5_000_000),
                Some(SimDuration::from_millis(1)),
            )
            .unwrap();
        assert_eq!(batch.records.len(), 2);
        // Nothing left pending: a second timer with the same seq no-ops.
        assert!(shipper
            .flush_if_open(SeId(1), seq, SimTime(6_000_000), Some(SimDuration::ZERO))
            .is_none());
    }

    #[test]
    fn unreachable_flush_stalls_then_catch_up_reships() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 3);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);
        let cfg = ShipBatchConfig::coalesce(3, SimDuration::from_millis(5));

        for r in &recs[..2] {
            shipper.enqueue(SeId(1), r, &cfg);
        }
        // Partitioned at flush time: the batch is dropped, channel stalls.
        assert!(shipper.flush_open(SeId(1), SimTime(10), None).is_none());
        assert_eq!(shipper.shipped, 0);
        // The next commit is no longer the expected next enqueue? It is:
        // the stall reset the channel to the inflight position (0), so LSN 1
        // re-opens a batch.
        assert_eq!(
            shipper.enqueue(SeId(1), &recs[0], &cfg),
            Enqueue::Opened { seq: 2 }
        );
        // Heal: catch-up re-ships everything from the log, superseding the
        // open batch.
        let deliveries = shipper.catch_up(
            SeId(1),
            &master,
            SimTime(100),
            Some(SimDuration::from_millis(1)),
        );
        assert_eq!(deliveries.len(), 3);
        // The superseded batch's timer is now a stale no-op.
        assert!(shipper
            .flush_if_open(SeId(1), 2, SimTime(200), Some(SimDuration::ZERO))
            .is_none());
    }

    #[test]
    fn out_of_sequence_enqueue_refused() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 2);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);
        let cfg = ShipBatchConfig::coalesce(4, SimDuration::from_millis(5));
        assert_eq!(shipper.enqueue(SeId(1), &recs[1], &cfg), Enqueue::Refused);
        assert_eq!(shipper.enqueue(SeId(9), &recs[0], &cfg), Enqueue::Refused);
    }

    #[test]
    fn per_record_config_flushes_every_enqueue() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 2);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);
        let cfg = ShipBatchConfig::per_record();
        assert!(cfg.is_per_record());
        for r in &recs {
            assert_eq!(shipper.enqueue(SeId(1), r, &cfg), Enqueue::Full);
            let b = shipper
                .flush_open(SeId(1), SimTime(0), Some(SimDuration::ZERO))
                .unwrap();
            assert_eq!(b.records.len(), 1);
        }
        assert_eq!(shipper.batches, 2);
        assert_eq!(shipper.shipped, 2);
    }

    #[test]
    fn unregistered_slave_is_ignored() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 1);
        let mut shipper = AsyncShipper::new();
        assert!(shipper
            .ship(SeId(9), &recs[0], SimTime(0), Some(SimDuration::ZERO))
            .is_none());
        assert!(shipper.applied(SeId(9)).is_none());
        assert!(!shipper.needs_reseed(SeId(9), &master));
    }
}
