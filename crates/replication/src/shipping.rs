//! Asynchronous master→slave log shipping (§3.3.1 decision 2).
//!
//! The master streams commit records to each slave over a FIFO channel
//! (delivery order equals send order, like TCP); the slave applies them in
//! LSN order, preserving the master's serialization order (§3.2). Shipping
//! is asynchronous: commits never wait. When a slave is unreachable the
//! channel stalls and a catch-up pass re-ships the missing suffix from the
//! master's log once the slave is reachable again.

use std::collections::{BTreeSet, HashMap};

use udr_model::ids::SeId;
use udr_model::time::{SimDuration, SimTime};
use udr_storage::{CommitRecord, Engine, Lsn};

/// Per-slave FIFO shipping state.
#[derive(Debug, Clone, Default)]
struct Channel {
    /// Highest LSN this slave has applied (confirmed).
    applied: Lsn,
    /// Highest LSN currently in flight to the slave.
    inflight: Lsn,
    /// Arrival instant of the last in-flight record (FIFO clamp).
    last_arrival: SimTime,
}

/// The shipping ledger for one replication group.
#[derive(Debug, Clone, Default)]
pub struct AsyncShipper {
    channels: HashMap<SeId, Channel>,
    /// Slaves explicitly drained from the group. A drained slave's channel
    /// is gone for good: stray [`AsyncShipper::reseeded`] confirmations or
    /// in-flight delivery acks must not resurrect it, or the periodic
    /// catch-up pass would retry its pending suffix forever.
    drained: BTreeSet<SeId>,
    /// Records shipped (including re-ships).
    pub shipped: u64,
    /// Catch-up passes performed.
    pub catchups: u64,
}

/// A planned delivery: apply `record` on `slave` at `arrives`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Destination slave SE.
    pub slave: SeId,
    /// The record to apply.
    pub record: CommitRecord,
    /// Virtual arrival instant.
    pub arrives: SimTime,
}

impl AsyncShipper {
    /// A shipper with no slaves registered yet.
    pub fn new() -> Self {
        AsyncShipper::default()
    }

    /// Register a slave channel starting from `applied` (what the slave
    /// already has, e.g. from a seed snapshot). Explicit registration is
    /// the only way back in for a previously drained slave.
    pub fn register_slave(&mut self, slave: SeId, applied: Lsn) {
        self.drained.remove(&slave);
        self.channels.insert(
            slave,
            Channel {
                applied,
                inflight: applied,
                last_arrival: SimTime::ZERO,
            },
        );
    }

    /// Drain a slave (member left the group, e.g. migrated away or
    /// decommissioned): its channel and any pending re-ship bookkeeping
    /// are dropped, and the slave is tombstoned so late
    /// [`AsyncShipper::reseeded`] confirmations cannot re-create the
    /// channel behind the group's back. Returns how many records were
    /// still pending (un-acked) on the dropped channel.
    pub fn unregister_slave(&mut self, slave: SeId) -> u64 {
        self.drained.insert(slave);
        match self.channels.remove(&slave) {
            Some(ch) => ch.inflight.raw().saturating_sub(ch.applied.raw()),
            None => 0,
        }
    }

    /// Registered slaves.
    pub fn slaves(&self) -> impl Iterator<Item = SeId> + '_ {
        self.channels.keys().copied()
    }

    /// The highest LSN `slave` has confirmed applied.
    pub fn applied(&self, slave: SeId) -> Option<Lsn> {
        self.channels.get(&slave).map(|c| c.applied)
    }

    /// Plan delivery of one just-committed record to one slave. `delay` is
    /// the sampled one-way network delay; `None` (unreachable/lost) stalls
    /// the channel — a later catch-up pass will re-ship.
    pub fn ship(
        &mut self,
        slave: SeId,
        record: &CommitRecord,
        now: SimTime,
        delay: Option<SimDuration>,
    ) -> Option<Delivery> {
        let ch = self.channels.get_mut(&slave)?;
        // Only ship the exact next record; anything else waits for catch-up.
        if record.lsn != ch.inflight.next() {
            return None;
        }
        let delay = delay?;
        let arrives = (now + delay).max(ch.last_arrival);
        ch.inflight = record.lsn;
        ch.last_arrival = arrives;
        self.shipped += 1;
        Some(Delivery {
            slave,
            record: record.clone(),
            arrives,
        })
    }

    /// Confirm that `slave` applied everything through `lsn`.
    pub fn on_applied(&mut self, slave: SeId, lsn: Lsn) {
        if let Some(ch) = self.channels.get_mut(&slave) {
            ch.applied = ch.applied.max(lsn);
            ch.inflight = ch.inflight.max(lsn);
        }
    }

    /// Plan a catch-up pass for `slave`: re-ship every record the master
    /// still retains beyond the slave's applied LSN. `delay` is the sampled
    /// delay for the (batched) transfer; records inside a batch arrive
    /// back-to-back.
    ///
    /// Returns an empty vector when the slave is up to date or the channel
    /// is unknown. Panics never: a truncated master log that can no longer
    /// serve the suffix yields only the retained part — callers detect the
    /// gap via [`AsyncShipper::needs_reseed`].
    pub fn catch_up(
        &mut self,
        slave: SeId,
        master: &Engine,
        now: SimTime,
        delay: Option<SimDuration>,
    ) -> Vec<Delivery> {
        let Some(ch) = self.channels.get_mut(&slave) else {
            return Vec::new();
        };
        if ch.applied >= master.last_lsn() {
            return Vec::new();
        }
        let Some(delay) = delay else {
            return Vec::new();
        };
        let records = master.log().since(ch.applied);
        if records.is_empty() || records[0].lsn != ch.applied.next() {
            // The suffix was truncated; a full reseed is required instead.
            return Vec::new();
        }
        self.catchups += 1;
        let mut arrives = (now + delay).max(ch.last_arrival);
        let mut deliveries = Vec::with_capacity(records.len());
        for record in records {
            deliveries.push(Delivery {
                slave,
                record: record.clone(),
                arrives,
            });
            ch.inflight = record.lsn;
            ch.last_arrival = arrives;
            // Records in the same batch arrive 1 µs apart (stream order).
            arrives += SimDuration::from_micros(1);
        }
        self.shipped += deliveries.len() as u64;
        deliveries
    }

    /// Whether the master can no longer serve the suffix the slave needs
    /// (log truncated past the slave's applied LSN) so a snapshot reseed is
    /// the only way to resync.
    pub fn needs_reseed(&self, slave: SeId, master: &Engine) -> bool {
        let Some(ch) = self.channels.get(&slave) else {
            return false;
        };
        if ch.applied >= master.last_lsn() {
            return false;
        }
        match master.log().first_retained() {
            Some(first) => first > ch.applied.next(),
            // Log empty but master LSN ahead: everything truncated.
            None => true,
        }
    }

    /// Reset a channel after reseeding the slave from a snapshot at `lsn`.
    /// A confirmation for a slave that was drained in the meantime is
    /// dropped — only [`AsyncShipper::register_slave`] readmits it.
    pub fn reseeded(&mut self, slave: SeId, lsn: Lsn) {
        if self.drained.contains(&slave) {
            return;
        }
        self.register_slave(slave, lsn);
    }

    /// Replication lag of `slave` behind the master, in LSNs.
    pub fn lag(&self, slave: SeId, master: &Engine) -> Option<u64> {
        let ch = self.channels.get(&slave)?;
        Some(master.last_lsn().raw().saturating_sub(ch.applied.raw()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::attrs::{AttrId, Entry};
    use udr_model::config::IsolationLevel;
    use udr_model::ids::SubscriberUid;

    fn commit_n(engine: &mut Engine, n: u64) -> Vec<CommitRecord> {
        (0..n)
            .map(|i| {
                let t = engine.begin(IsolationLevel::ReadCommitted);
                let mut e = Entry::new();
                e.set(AttrId::OdbMask, i);
                engine.put(t, SubscriberUid(i), e).unwrap();
                engine.commit(t, SimTime(i)).unwrap().unwrap()
            })
            .collect()
    }

    #[test]
    fn ship_in_order_with_fifo_clamp() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 2);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);

        // First record: 10 ms delay.
        let d1 = shipper
            .ship(
                SeId(1),
                &recs[0],
                SimTime(0),
                Some(SimDuration::from_millis(10)),
            )
            .unwrap();
        // Second record sent 1 ms later but sampled a 2 ms delay: FIFO
        // clamps its arrival to not precede the first.
        let d2 = shipper
            .ship(
                SeId(1),
                &recs[1],
                SimTime(1_000_000),
                Some(SimDuration::from_millis(2)),
            )
            .unwrap();
        assert!(d2.arrives >= d1.arrives);
    }

    #[test]
    fn ship_skips_out_of_sequence_records() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 3);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);
        // Shipping record 2 before record 1 is refused.
        assert!(shipper
            .ship(SeId(1), &recs[1], SimTime(0), Some(SimDuration::ZERO))
            .is_none());
        assert!(shipper
            .ship(SeId(1), &recs[0], SimTime(0), Some(SimDuration::ZERO))
            .is_some());
    }

    #[test]
    fn stalled_channel_catches_up() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 5);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);

        // Partition: the first ship attempt fails (None delay), channel stalls.
        assert!(shipper.ship(SeId(1), &recs[0], SimTime(0), None).is_none());
        assert_eq!(shipper.lag(SeId(1), &master), Some(5));

        // Heal: catch-up re-ships the full suffix in order.
        let deliveries = shipper.catch_up(
            SeId(1),
            &master,
            SimTime(100),
            Some(SimDuration::from_millis(10)),
        );
        assert_eq!(deliveries.len(), 5);
        for (i, d) in deliveries.iter().enumerate() {
            assert_eq!(d.record.lsn, Lsn(i as u64 + 1));
            if i > 0 {
                assert!(d.arrives >= deliveries[i - 1].arrives);
            }
        }
        // Apply + confirm.
        let mut slave = Engine::new(SeId(1));
        for d in &deliveries {
            slave.apply_replicated(&d.record).unwrap();
            shipper.on_applied(SeId(1), d.record.lsn);
        }
        assert_eq!(shipper.lag(SeId(1), &master), Some(0));
        assert_eq!(shipper.catchups, 1);
    }

    #[test]
    fn catch_up_noop_when_current() {
        let mut master = Engine::new(SeId(0));
        commit_n(&mut master, 2);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn(2));
        assert!(shipper
            .catch_up(SeId(1), &master, SimTime(0), Some(SimDuration::ZERO))
            .is_empty());
    }

    #[test]
    fn truncated_log_requires_reseed() {
        let mut master = Engine::new(SeId(0));
        commit_n(&mut master, 5);
        master.truncate_log(Lsn(3));
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn(1));

        assert!(shipper.needs_reseed(SeId(1), &master));
        assert!(shipper
            .catch_up(SeId(1), &master, SimTime(0), Some(SimDuration::ZERO))
            .is_empty());

        // Reseed from snapshot, then no more reseed needed.
        shipper.reseeded(SeId(1), master.last_lsn());
        assert!(!shipper.needs_reseed(SeId(1), &master));
        assert_eq!(shipper.lag(SeId(1), &master), Some(0));
    }

    #[test]
    fn slave_within_retained_log_does_not_need_reseed() {
        let mut master = Engine::new(SeId(0));
        commit_n(&mut master, 5);
        master.truncate_log(Lsn(2));
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn(2));
        assert!(!shipper.needs_reseed(SeId(1), &master));
        let deliveries = shipper.catch_up(SeId(1), &master, SimTime(0), Some(SimDuration::ZERO));
        assert_eq!(deliveries.len(), 3);
    }

    /// Regression: draining a slave mid-stall must drop its pending
    /// deliveries for good. Before the tombstone, a late `reseeded`
    /// confirmation re-created the channel and every subsequent
    /// catch-up pass re-shipped the suffix to a slave that had already
    /// left the group — retried forever by `CatchupTick`.
    #[test]
    fn drained_slave_stays_drained() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 4);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);

        // Stall the channel (partition: ship fails), then drain the slave.
        assert!(shipper.ship(SeId(1), &recs[0], SimTime(0), None).is_none());
        let pending = shipper.unregister_slave(SeId(1));
        assert_eq!(pending, 0); // nothing in flight, 4 unshipped
        assert_eq!(shipper.slaves().count(), 0);

        // A stray reseed confirmation from before the drain arrives late:
        // it must NOT resurrect the channel.
        shipper.reseeded(SeId(1), Lsn(2));
        assert!(shipper.applied(SeId(1)).is_none());
        assert!(!shipper.needs_reseed(SeId(1), &master));

        // Catch-up passes ship nothing to the drained slave, forever.
        for t in 0..3 {
            assert!(shipper
                .catch_up(SeId(1), &master, SimTime(t), Some(SimDuration::ZERO))
                .is_empty());
        }
        assert_eq!(shipper.catchups, 0);

        // Explicit re-registration (the slave re-joins the group) is the
        // only way back in.
        shipper.register_slave(SeId(1), Lsn(1));
        let deliveries = shipper.catch_up(SeId(1), &master, SimTime(9), Some(SimDuration::ZERO));
        assert_eq!(deliveries.len(), 3);
    }

    #[test]
    fn unregister_reports_inflight_pending() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 2);
        let mut shipper = AsyncShipper::new();
        shipper.register_slave(SeId(1), Lsn::ZERO);
        // Two records in flight, none acked.
        for r in &recs {
            assert!(shipper
                .ship(SeId(1), r, SimTime(0), Some(SimDuration::from_millis(5)))
                .is_some());
        }
        assert_eq!(shipper.unregister_slave(SeId(1)), 2);
    }

    #[test]
    fn unregistered_slave_is_ignored() {
        let mut master = Engine::new(SeId(0));
        let recs = commit_n(&mut master, 1);
        let mut shipper = AsyncShipper::new();
        assert!(shipper
            .ship(SeId(9), &recs[0], SimTime(0), Some(SimDuration::ZERO))
            .is_none());
        assert!(shipper.applied(SeId(9)).is_none());
        assert!(!shipper.needs_reseed(SeId(9), &master));
    }
}
