//! Dual-in-sequence replication (§5).
//!
//! "…most probably the UDR NF should apply provisioning transactions in
//! sequence to two replicas, committing the transaction only when both
//! replicas report success. To avoid incurring the penalties of a consensus
//! protocol, the UDR shall have to work in cooperation with the PS so when a
//! transaction fails to commit, leaving just one of the replicas updated is
//! acceptable."

use udr_model::ids::SeId;
use udr_model::time::SimDuration;

/// Result of a dual-in-sequence commit attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DualOutcome {
    /// Whether the transaction counts as committed (both replicas updated).
    pub committed: bool,
    /// Extra latency beyond the local commit (the sequential round trips).
    pub extra_latency: SimDuration,
    /// Replicas that did apply the transaction (0, 1 or 2). When `1`, the
    /// paper's "leaving just one of the replicas updated is acceptable"
    /// case has occurred: not committed, but partially applied.
    pub replicas_updated: u8,
    /// The second replica involved, when one was selected.
    pub second: Option<SeId>,
}

/// Evaluate a dual-in-sequence commit.
///
/// `local_ok` is whether the master applied (it always tries first);
/// `second` identifies the chosen second replica with the sampled round-trip
/// to it (`None` = unreachable). The sequential protocol means the second
/// round trip starts only after the local apply.
pub fn dual_in_sequence(
    local_ok: bool,
    second: Option<(SeId, Option<SimDuration>)>,
) -> DualOutcome {
    if !local_ok {
        return DualOutcome {
            committed: false,
            extra_latency: SimDuration::ZERO,
            replicas_updated: 0,
            second: None,
        };
    }
    match second {
        Some((se, Some(rtt))) => DualOutcome {
            committed: true,
            extra_latency: rtt,
            replicas_updated: 2,
            second: Some(se),
        },
        Some((se, None)) => DualOutcome {
            // The master applied, the second replica did not: transaction
            // reported failed to the PS, one replica left updated.
            committed: false,
            extra_latency: SimDuration::ZERO,
            replicas_updated: 1,
            second: Some(se),
        },
        None => DualOutcome {
            committed: false,
            extra_latency: SimDuration::ZERO,
            replicas_updated: 1,
            second: None,
        },
    }
}

/// Whether a transaction is safe for dual-in-sequence replication under the
/// paper's restriction: "restrict the dual-in-sequence replication of
/// transactions to simple transactions that are idempotent or easy to
/// roll-back".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnShape {
    /// Single-record, attribute-level set: idempotent.
    IdempotentSimple,
    /// Multi-record or non-idempotent (e.g. counter bumps).
    Complex,
}

impl TxnShape {
    /// Classify by record count and idempotence flag.
    pub fn classify(records_touched: usize, idempotent: bool) -> Self {
        if records_touched <= 1 && idempotent {
            TxnShape::IdempotentSimple
        } else {
            TxnShape::Complex
        }
    }

    /// Whether dual-in-sequence replication may be used.
    pub fn dual_eligible(self) -> bool {
        self == TxnShape::IdempotentSimple
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_replicas_commit() {
        let out = dual_in_sequence(true, Some((SeId(1), Some(SimDuration::from_millis(30)))));
        assert!(out.committed);
        assert_eq!(out.replicas_updated, 2);
        assert_eq!(out.extra_latency, SimDuration::from_millis(30));
        assert_eq!(out.second, Some(SeId(1)));
    }

    #[test]
    fn second_unreachable_leaves_one_updated() {
        let out = dual_in_sequence(true, Some((SeId(1), None)));
        assert!(!out.committed);
        assert_eq!(out.replicas_updated, 1);
    }

    #[test]
    fn no_second_replica_available() {
        let out = dual_in_sequence(true, None);
        assert!(!out.committed);
        assert_eq!(out.replicas_updated, 1);
        assert_eq!(out.second, None);
    }

    #[test]
    fn local_failure_updates_nothing() {
        let out = dual_in_sequence(false, Some((SeId(1), Some(SimDuration::ZERO))));
        assert!(!out.committed);
        assert_eq!(out.replicas_updated, 0);
    }

    #[test]
    fn txn_shape_eligibility() {
        assert!(TxnShape::classify(1, true).dual_eligible());
        assert!(!TxnShape::classify(2, true).dual_eligible());
        assert!(!TxnShape::classify(1, false).dual_eligible());
    }
}
