//! Quorum replication, the §5 Cassandra comparison.
//!
//! "In Cassandra, a client is able to specify the durability guarantees it
//! wants on a per-transaction basis. Under the hood Cassandra uses a
//! consensus protocol across an ensemble of replicas; the more replicas are
//! involved in the transaction, the higher the durability guarantees." We
//! model the coordination cost: a write goes to all `n` replicas in
//! parallel and acknowledges after the `w`-th response; a read consults `r`
//! replicas and returns the freshest.

use udr_model::ids::SeId;
use udr_model::time::SimDuration;
use udr_storage::Lsn;

/// Outcome of a quorum write round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumWriteOutcome {
    /// Whether `w` acknowledgements arrived.
    pub committed: bool,
    /// Coordination latency: the `w`-th fastest round trip (zero if failed).
    pub latency: SimDuration,
    /// Replicas that applied the write (even on failure some may have).
    pub applied: Vec<SeId>,
}

/// Evaluate a quorum write given per-replica round trips (`None` =
/// unreachable). `responses` covers all `n` ensemble members, master
/// included with its (near-zero) local RTT.
pub fn quorum_write(responses: &[(SeId, Option<SimDuration>)], w: usize) -> QuorumWriteOutcome {
    let mut acks: Vec<(SeId, SimDuration)> = responses
        .iter()
        .filter_map(|(se, rtt)| rtt.map(|d| (*se, d)))
        .collect();
    acks.sort_by_key(|(_, d)| *d);
    let applied: Vec<SeId> = acks.iter().map(|(se, _)| *se).collect();
    if acks.len() >= w && w > 0 {
        QuorumWriteOutcome {
            committed: true,
            latency: acks[w - 1].1,
            applied,
        }
    } else {
        QuorumWriteOutcome {
            committed: false,
            latency: SimDuration::ZERO,
            applied,
        }
    }
}

/// Outcome of a quorum read round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumReadOutcome {
    /// Whether `r` replicas responded.
    pub served: bool,
    /// Latency: the `r`-th fastest round trip.
    pub latency: SimDuration,
    /// The freshest LSN among the consulted replicas (what the client sees).
    pub freshest: Lsn,
}

/// Evaluate a quorum read given per-replica `(rtt, replica_lsn)` responses.
pub fn quorum_read(
    responses: &[(SeId, Option<(SimDuration, Lsn)>)],
    r: usize,
) -> QuorumReadOutcome {
    let mut acks: Vec<(SimDuration, Lsn)> =
        responses.iter().filter_map(|(_, resp)| *resp).collect();
    acks.sort_by_key(|(d, _)| *d);
    if acks.len() >= r && r > 0 {
        let consulted = &acks[..r];
        let freshest = consulted
            .iter()
            .map(|(_, lsn)| *lsn)
            .max()
            .unwrap_or(Lsn::ZERO);
        QuorumReadOutcome {
            served: true,
            latency: consulted[r - 1].0,
            freshest,
        }
    } else {
        QuorumReadOutcome {
            served: false,
            latency: SimDuration::ZERO,
            freshest: Lsn::ZERO,
        }
    }
}

/// Whether a `(n, w, r)` configuration guarantees read-your-writes
/// consistency (`w + r > n`, the classic overlap condition).
pub const fn quorum_consistent(n: u8, w: u8, r: u8) -> bool {
    w as u16 + r as u16 > n as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn write_waits_for_wth_ack() {
        let responses = vec![
            (SeId(0), Some(ms(1))),
            (SeId(1), Some(ms(20))),
            (SeId(2), Some(ms(50))),
        ];
        let w2 = quorum_write(&responses, 2);
        assert!(w2.committed);
        assert_eq!(w2.latency, ms(20));
        let w3 = quorum_write(&responses, 3);
        assert!(w3.committed);
        assert_eq!(w3.latency, ms(50));
    }

    #[test]
    fn write_fails_without_quorum() {
        let responses = vec![(SeId(0), Some(ms(1))), (SeId(1), None), (SeId(2), None)];
        let out = quorum_write(&responses, 2);
        assert!(!out.committed);
        // The reachable replica still applied: durability leak the paper
        // warns about when transactions "fail" but leave replicas updated.
        assert_eq!(out.applied, vec![SeId(0)]);
    }

    #[test]
    fn read_returns_freshest_of_consulted() {
        let responses = vec![
            (SeId(0), Some((ms(1), Lsn(10)))),
            (SeId(1), Some((ms(5), Lsn(12)))),
            (SeId(2), Some((ms(30), Lsn(15)))),
        ];
        let r2 = quorum_read(&responses, 2);
        assert!(r2.served);
        assert_eq!(r2.latency, ms(5));
        assert_eq!(r2.freshest, Lsn(12)); // Lsn(15) was not consulted

        let r3 = quorum_read(&responses, 3);
        assert_eq!(r3.freshest, Lsn(15));
        assert_eq!(r3.latency, ms(30));
    }

    #[test]
    fn read_fails_without_quorum() {
        let responses = vec![
            (SeId(0), Some((ms(1), Lsn(1)))),
            (SeId(1), None),
            (SeId(2), None),
        ];
        assert!(!quorum_read(&responses, 2).served);
    }

    #[test]
    fn overlap_condition() {
        assert!(quorum_consistent(3, 2, 2));
        assert!(!quorum_consistent(3, 2, 1));
        assert!(quorum_consistent(3, 3, 1));
        assert!(!quorum_consistent(3, 1, 1));
    }

    #[test]
    fn degenerate_quorums() {
        assert!(!quorum_write(&[], 1).committed);
        assert!(!quorum_read(&[], 1).served);
        let out = quorum_write(&[(SeId(0), Some(ms(1)))], 0);
        assert!(!out.committed, "w=0 is rejected");
    }
}
