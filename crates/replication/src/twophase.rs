//! Two-phase commit across storage elements — the protocol §3.2 *rejects*.
//!
//! "ACID properties are guaranteed for transactions running on the same
//! storage element only… This prevents from having to run consensus
//! protocols like e.g. 2-Phase Commit (2PC) across geographically disperse
//! locations, which may be expensive." This module implements classic
//! presumed-abort 2PC over the simulated network so the ablation experiment
//! can measure exactly how expensive, and what partitions do to it
//! (in-doubt blocking).

use udr_model::ids::SeId;
use udr_model::time::{SimDuration, SimTime};

/// Outcome of one distributed transaction attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwoPcOutcome {
    /// All participants prepared and committed.
    Committed {
        /// Coordinator-observed latency: prepare round + commit round.
        latency: SimDuration,
    },
    /// At least one participant voted no / was unreachable in phase 1;
    /// everyone reachable was rolled back.
    Aborted {
        /// Latency until the abort decision (the prepare round).
        latency: SimDuration,
        /// The first participant that caused the abort.
        culprit: SeId,
    },
    /// Phase 2 could not reach some prepared participants: they stay
    /// **in doubt**, holding their locks until the coordinator reconnects —
    /// the blocking window that makes 2PC dangerous across a backbone.
    InDoubt {
        /// Latency the coordinator observed before giving up.
        latency: SimDuration,
        /// Participants stuck holding locks.
        blocked: Vec<SeId>,
    },
}

impl TwoPcOutcome {
    /// Whether the transaction committed everywhere.
    pub fn is_committed(&self) -> bool {
        matches!(self, TwoPcOutcome::Committed { .. })
    }
}

/// One participant's connectivity for a round, as sampled by the caller:
/// `Some(rtt)` when reachable, `None` when not.
pub type RoundTrip = Option<SimDuration>;

/// Evaluate a two-phase commit given per-participant round trips for the
/// prepare phase and the commit phase. `votes_yes[i]` is participant `i`'s
/// vote when reachable (a participant with a local conflict votes no).
///
/// Timing model: both phases fan out in parallel, so each phase costs the
/// slowest reachable participant's round trip; the coordinator decides
/// after `timeout` for unreachable ones.
pub fn two_phase_commit(
    participants: &[SeId],
    prepare_rtts: &[RoundTrip],
    commit_rtts: &[RoundTrip],
    votes_yes: &[bool],
    timeout: SimDuration,
) -> TwoPcOutcome {
    assert_eq!(participants.len(), prepare_rtts.len());
    assert_eq!(participants.len(), commit_rtts.len());
    assert_eq!(participants.len(), votes_yes.len());
    assert!(!participants.is_empty());

    // ---- phase 1: prepare ---------------------------------------------------
    let mut prepare_latency = SimDuration::ZERO;
    for (i, rtt) in prepare_rtts.iter().enumerate() {
        match rtt {
            Some(d) => {
                prepare_latency = prepare_latency.max(*d);
                if !votes_yes[i] {
                    // Presumed abort: a no-vote ends the protocol after the
                    // full prepare round (other yes-voters must be told).
                    return TwoPcOutcome::Aborted {
                        latency: prepare_latency.max(*d),
                        culprit: participants[i],
                    };
                }
            }
            None => {
                // Unreachable in phase 1: coordinator waits its timeout,
                // then aborts. Nobody is in doubt (nothing was promised to
                // commit — presumed abort resolves them).
                return TwoPcOutcome::Aborted {
                    latency: timeout,
                    culprit: participants[i],
                };
            }
        }
    }

    // ---- phase 2: commit ----------------------------------------------------
    let mut commit_latency = SimDuration::ZERO;
    let mut blocked = Vec::new();
    for (i, rtt) in commit_rtts.iter().enumerate() {
        match rtt {
            Some(d) => commit_latency = commit_latency.max(*d),
            None => blocked.push(participants[i]),
        }
    }
    if blocked.is_empty() {
        TwoPcOutcome::Committed {
            latency: prepare_latency + commit_latency,
        }
    } else {
        // Prepared participants that cannot hear the decision hold their
        // write locks until reconnection: the classic 2PC blocking hazard.
        TwoPcOutcome::InDoubt {
            latency: prepare_latency + timeout,
            blocked,
        }
    }
}

/// The lock-hold (blocking) time an in-doubt participant suffers: from the
/// moment it prepared until the coordinator becomes reachable again.
pub fn in_doubt_hold_time(prepared_at: SimTime, coordinator_reachable_at: SimTime) -> SimDuration {
    coordinator_reachable_at.duration_since(prepared_at)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    const TIMEOUT: SimDuration = SimDuration::from_millis(500);

    #[test]
    fn all_yes_commits_with_two_rounds() {
        let parts = [SeId(0), SeId(1)];
        let out = two_phase_commit(
            &parts,
            &[Some(ms(1)), Some(ms(30))],
            &[Some(ms(1)), Some(ms(28))],
            &[true, true],
            TIMEOUT,
        );
        assert_eq!(out, TwoPcOutcome::Committed { latency: ms(58) });
    }

    #[test]
    fn single_participant_is_cheap() {
        let out = two_phase_commit(&[SeId(0)], &[Some(ms(1))], &[Some(ms(1))], &[true], TIMEOUT);
        assert_eq!(out, TwoPcOutcome::Committed { latency: ms(2) });
    }

    #[test]
    fn no_vote_aborts() {
        let parts = [SeId(0), SeId(1)];
        let out = two_phase_commit(
            &parts,
            &[Some(ms(1)), Some(ms(30))],
            &[Some(ms(1)), Some(ms(30))],
            &[true, false],
            TIMEOUT,
        );
        match out {
            TwoPcOutcome::Aborted { culprit, .. } => assert_eq!(culprit, SeId(1)),
            other => panic!("expected abort, got {other:?}"),
        }
        assert!(!out.is_committed());
    }

    #[test]
    fn unreachable_in_prepare_aborts_after_timeout() {
        let parts = [SeId(0), SeId(1)];
        let out = two_phase_commit(
            &parts,
            &[Some(ms(1)), None],
            &[Some(ms(1)), None],
            &[true, true],
            TIMEOUT,
        );
        assert_eq!(
            out,
            TwoPcOutcome::Aborted {
                latency: TIMEOUT,
                culprit: SeId(1)
            }
        );
    }

    #[test]
    fn unreachable_in_commit_leaves_participants_in_doubt() {
        let parts = [SeId(0), SeId(1), SeId(2)];
        let out = two_phase_commit(
            &parts,
            &[Some(ms(1)), Some(ms(30)), Some(ms(30))],
            &[Some(ms(1)), None, Some(ms(30))],
            &[true, true, true],
            TIMEOUT,
        );
        match out {
            TwoPcOutcome::InDoubt { blocked, latency } => {
                assert_eq!(blocked, vec![SeId(1)]);
                assert_eq!(latency, ms(30) + TIMEOUT);
            }
            other => panic!("expected in-doubt, got {other:?}"),
        }
    }

    #[test]
    fn in_doubt_hold_time_spans_the_partition() {
        let hold = in_doubt_hold_time(
            SimTime::ZERO + SimDuration::from_secs(10),
            SimTime::ZERO + SimDuration::from_secs(40),
        );
        assert_eq!(hold, SimDuration::from_secs(30));
    }
}
