//! Property tests for the replication layer: the §5 consistency-restoration
//! merge must be convergent, deterministic and branch-order independent for
//! any divergence pattern.

use proptest::prelude::*;

use udr_model::attrs::{AttrId, Entry};
use udr_model::config::IsolationLevel;
use udr_model::ids::{SeId, SubscriberUid};
use udr_model::time::SimTime;
use udr_replication::multimaster::merge_branches;
use udr_replication::quorum::{quorum_read, quorum_write};
use udr_storage::{Engine, Lsn};

#[derive(Debug, Clone)]
struct BranchWrite {
    uid: u64,
    val: u64,
    /// Offset after divergence at which the write commits.
    at: u64,
}

fn writes_strategy() -> impl Strategy<Value = Vec<BranchWrite>> {
    prop::collection::vec(
        (0u64..12, any::<u64>(), 1u64..1000).prop_map(|(uid, val, at)| BranchWrite {
            uid,
            val,
            at,
        }),
        0..30,
    )
}

fn entry_with(val: u64) -> Entry {
    let mut e = Entry::new();
    e.set(AttrId::OdbMask, val);
    e
}

fn apply_writes(engine: &mut Engine, diverged: SimTime, writes: &[BranchWrite]) {
    let mut sorted = writes.to_vec();
    sorted.sort_by_key(|w| w.at);
    for w in &sorted {
        let t = engine.begin(IsolationLevel::ReadCommitted);
        engine
            .put(t, SubscriberUid(w.uid), entry_with(w.val))
            .unwrap();
        engine
            .commit(t, SimTime(diverged.as_nanos() + w.at))
            .unwrap();
    }
}

fn snapshot_state(s: &udr_storage::EngineSnapshot) -> Vec<(u64, Option<Entry>)> {
    s.records
        .iter()
        .map(|(u, v)| (u.raw(), v.entry.clone()))
        .collect()
}

proptest! {
    /// Merging in any branch order yields identical state and stats.
    #[test]
    fn merge_is_commutative(
        base in writes_strategy(),
        wa in writes_strategy(),
        wb in writes_strategy(),
        wc in writes_strategy(),
    ) {
        let diverged = SimTime(10_000);
        let mut seed = Engine::new(SeId(0));
        apply_writes(&mut seed, SimTime::ZERO, &base);
        let snap = seed.snapshot();

        let mk = |se: u32, writes: &[BranchWrite]| {
            let mut e = Engine::from_snapshot(SeId(se), snap.clone());
            e.set_se(SeId(se));
            apply_writes(&mut e, diverged, writes);
            e
        };
        let a = mk(0, &wa);
        let b = mk(1, &wb);
        let c = mk(2, &wc);

        let abc = merge_branches(diverged, &[&a, &b, &c]);
        let cba = merge_branches(diverged, &[&c, &b, &a]);
        let bac = merge_branches(diverged, &[&b, &a, &c]);
        prop_assert_eq!(snapshot_state(&abc.snapshot), snapshot_state(&cba.snapshot));
        prop_assert_eq!(snapshot_state(&abc.snapshot), snapshot_state(&bac.snapshot));
        prop_assert_eq!(abc.stats, cba.stats);
    }

    /// After reseeding every branch from the merged snapshot, all replicas
    /// hold identical data (convergence), and every record that was written
    /// post-divergence carries one of the written values (no invented data).
    #[test]
    fn merge_converges_and_invents_nothing(
        wa in writes_strategy(),
        wb in writes_strategy(),
    ) {
        let diverged = SimTime(10_000);
        let seed = Engine::new(SeId(0));
        let snap = seed.snapshot();
        let mk = |se: u32, writes: &[BranchWrite]| {
            let mut e = Engine::from_snapshot(SeId(se), snap.clone());
            e.set_se(SeId(se));
            apply_writes(&mut e, diverged, writes);
            e
        };
        let a = mk(0, &wa);
        let b = mk(1, &wb);
        let merged = merge_branches(diverged, &[&a, &b]);

        for (uid, version) in &merged.snapshot.records {
            let Some(entry) = &version.entry else { continue };
            let val = entry.get(AttrId::OdbMask).and_then(|v| v.as_u64()).unwrap();
            let written: Vec<u64> = wa
                .iter()
                .chain(wb.iter())
                .filter(|w| w.uid == uid.raw())
                .map(|w| w.val)
                .collect();
            prop_assert!(written.contains(&val),
                "uid {} merged to {} not among written {:?}", uid, val, written);
        }

        let ra = Engine::from_snapshot(SeId(0), merged.snapshot.clone());
        let rb = Engine::from_snapshot(SeId(1), merged.snapshot.clone());
        let state = |e: &Engine| {
            let mut v: Vec<_> = e.iter_committed().map(|view| (view.uid, view.entry.cloned())).collect();
            v.sort_by_key(|(u, _)| *u);
            v
        };
        prop_assert_eq!(state(&ra), state(&rb));
    }

    /// Conflicts are bounded by the number of uids written on ≥ 2 branches.
    #[test]
    fn conflicts_bounded_by_shared_uids(
        wa in writes_strategy(),
        wb in writes_strategy(),
    ) {
        let diverged = SimTime(10_000);
        let seed = Engine::new(SeId(0));
        let snap = seed.snapshot();
        let mk = |se: u32, writes: &[BranchWrite]| {
            let mut e = Engine::from_snapshot(SeId(se), snap.clone());
            e.set_se(SeId(se));
            apply_writes(&mut e, diverged, writes);
            e
        };
        let a = mk(0, &wa);
        let b = mk(1, &wb);
        let merged = merge_branches(diverged, &[&a, &b]);

        let ua: std::collections::BTreeSet<u64> = wa.iter().map(|w| w.uid).collect();
        let ub: std::collections::BTreeSet<u64> = wb.iter().map(|w| w.uid).collect();
        let shared = ua.intersection(&ub).count();
        prop_assert!(merged.stats.conflicts <= shared,
            "conflicts {} > shared uids {}", merged.stats.conflicts, shared);
    }

    /// Quorum algebra: a write that reaches w replicas followed by a read of
    /// r replicas with w + r > n always observes the write (when the same
    /// replicas answer).
    #[test]
    fn quorum_overlap_guarantees_visibility(
        rtts in prop::collection::vec(1u64..200, 3..=7),
        w in 1usize..4,
        r in 1usize..4,
    ) {
        let n = rtts.len();
        prop_assume!(w <= n && r <= n);
        let write_responses: Vec<_> = rtts
            .iter()
            .enumerate()
            .map(|(i, ms)| (SeId(i as u32), Some(udr_model::time::SimDuration::from_millis(*ms))))
            .collect();
        let wout = quorum_write(&write_responses, w);
        prop_assert!(wout.committed);

        // The replicas that applied hold Lsn(1); the rest hold Lsn(0).
        let applied: std::collections::BTreeSet<_> =
            wout.applied.iter().take(w).copied().collect();
        let read_responses: Vec<_> = rtts
            .iter()
            .enumerate()
            .map(|(i, ms)| {
                let se = SeId(i as u32);
                let lsn = if applied.contains(&se) { Lsn(1) } else { Lsn(0) };
                (se, Some((udr_model::time::SimDuration::from_millis(*ms), lsn)))
            })
            .collect();
        let rout = quorum_read(&read_responses, r);
        prop_assert!(rout.served);
        if w + r > n {
            // Overlap condition met: must see the write... but only when the
            // read consults the *fastest* r replicas, which may not overlap
            // in adversarial latency layouts. The classic guarantee assumes
            // the read waits for r *any* replicas; our model reads the r
            // fastest, so check the union bound instead: the fastest r and
            // the applied w must intersect when w + r > n.
            prop_assert_eq!(rout.freshest, Lsn(1));
        }
    }
}
