//! A deterministic consensus cluster over the simulated backbone.
//!
//! The runtime owns N [`Replica`]s (one per site of a [`Topology`]), routes
//! their messages through the [`Network`] — sampling latency and loss,
//! honouring partitions — and drives timers from the shared
//! [`EventQueue`]. Fault schedules (partitions, node crashes/restarts) and
//! client submissions are registered up front; [`ConsensusCluster::run_until`]
//! then replays everything on the virtual clock and reports per-command
//! fates, leader changes, message costs and (never, in a correct build)
//! agreement violations.
//!
//! Node crashes model a process stop with acceptor state preserved across
//! restart — the persistence Paxos requires and which the paper's SAF
//! execution platform provides (§3.4.1). Losing acceptor state would need a
//! reconfiguration protocol, which is out of scope for the §6 comparison.

use std::collections::BTreeMap;

use udr_model::ids::SiteId;
use udr_model::time::{SimDuration, SimTime};
use udr_sim::event::EventQueue;
use udr_sim::net::{Cut, CutHandle, Network, Topology};
use udr_sim::SimRng;

use crate::ballot::{NodeId, Slot};
use crate::msg::{CmdId, Command, Envelope, Message};
use crate::replica::{Outbound, Replica, ReplicaConfig, Role};

/// Cluster-level knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Per-replica protocol timing.
    pub replica: ReplicaConfig,
    /// Timer granularity: how often each node's `tick` runs.
    pub tick_interval: SimDuration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replica: ReplicaConfig::default(),
            tick_interval: SimDuration::from_millis(50),
        }
    }
}

/// What happened to one submitted command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandFate {
    /// When the client handed it to the cluster.
    pub submitted_at: SimTime,
    /// The node it was submitted through.
    pub origin: NodeId,
    /// First instant any node learned it chosen (`None` = not committed
    /// by the end of the run).
    pub chosen_at: Option<SimTime>,
    /// When the *origin* node learned it chosen (client-visible commit).
    pub learned_at_origin: Option<SimTime>,
    /// The slot it occupies.
    pub slot: Option<Slot>,
}

impl CommandFate {
    /// Cluster-side commit latency (first choose − submission).
    pub fn commit_latency(&self) -> Option<SimDuration> {
        self.chosen_at.map(|t| t.duration_since(self.submitted_at))
    }

    /// Client-perceived latency (origin learns − submission).
    pub fn client_latency(&self) -> Option<SimDuration> {
        self.learned_at_origin
            .map(|t| t.duration_since(self.submitted_at))
    }
}

/// Message-cost accounting for a run.
#[derive(Debug, Clone, Default)]
pub struct MsgStats {
    /// Messages sent, by protocol phase.
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Total messages sent.
    pub total: u64,
    /// Messages that crossed the inter-site backbone.
    pub wan: u64,
}

impl MsgStats {
    fn count(&mut self, kind: &'static str, wan: bool) {
        *self.by_kind.entry(kind).or_insert(0) += 1;
        self.total += 1;
        if wan {
            self.wan += 1;
        }
    }
}

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Fate of every submitted command, by id.
    pub fates: BTreeMap<CmdId, CommandFate>,
    /// Elections started across all nodes.
    pub elections: u64,
    /// `(instant, node)` each time a node won leadership.
    pub leader_changes: Vec<(SimTime, NodeId)>,
    /// Message-cost accounting.
    pub messages: MsgStats,
    /// Agreement violations observed (must be empty; kept for testing).
    pub violations: Vec<String>,
    /// Per-node contiguous chosen watermark at the end of the run.
    pub final_committed: Vec<Slot>,
}

impl RunReport {
    /// Commands committed (chosen anywhere) by the end of the run.
    pub fn committed(&self) -> usize {
        self.fates
            .values()
            .filter(|f| f.chosen_at.is_some())
            .count()
    }

    /// Commands still unchosen at the end of the run.
    pub fn uncommitted(&self) -> usize {
        self.fates.len() - self.committed()
    }

    /// Commit latencies of every committed command, in submission order.
    pub fn commit_latencies(&self) -> Vec<SimDuration> {
        self.fates
            .values()
            .filter_map(CommandFate::commit_latency)
            .collect()
    }

    /// Fraction of submitted commands committed.
    pub fn commit_rate(&self) -> f64 {
        if self.fates.is_empty() {
            return 1.0;
        }
        self.committed() as f64 / self.fates.len() as f64
    }
}

enum Ev {
    Deliver { to: NodeId, env: Envelope },
    Tick { node: NodeId },
    Submit { origin: NodeId, cmd: Command },
    StartCut { idx: usize },
    Heal { idx: usize },
    Crash { node: NodeId },
    Restart { node: NodeId },
}

/// N replicas, one per site, over the simulated backbone.
pub struct ConsensusCluster {
    replicas: Vec<Replica>,
    sites: Vec<SiteId>,
    down: Vec<bool>,
    net: Network,
    queue: EventQueue<Ev>,
    rng: SimRng,
    cfg: ClusterConfig,
    cuts: Vec<Cut>,
    active_cuts: Vec<Option<CutHandle>>,
    next_cmd: u64,
    fates: BTreeMap<CmdId, CommandFate>,
    leader_changes: Vec<(SimTime, NodeId)>,
    messages: MsgStats,
    violations: Vec<String>,
    ticks_started: bool,
}

impl ConsensusCluster {
    /// One consensus node per site of `topo`.
    pub fn new(topo: Topology, cfg: ClusterConfig, seed: u64) -> Self {
        let n = topo.sites();
        let sites: Vec<SiteId> = (0..n as u32).map(SiteId).collect();
        let replicas = (0..n as u32)
            .map(|i| Replica::new(NodeId(i), n, cfg.replica.clone(), seed))
            .collect();
        ConsensusCluster {
            replicas,
            sites,
            down: vec![false; n],
            net: Network::new(topo),
            queue: EventQueue::new(),
            rng: SimRng::seed_from_u64(seed ^ 0x5EED_CAFE),
            cfg,
            cuts: Vec::new(),
            active_cuts: Vec::new(),
            next_cmd: 1,
            fates: BTreeMap::new(),
            leader_changes: Vec::new(),
            messages: MsgStats::default(),
            violations: Vec::new(),
            ticks_started: false,
        }
    }

    /// Ensemble size.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the ensemble is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Read access to a replica (assertions in tests).
    pub fn node(&self, i: usize) -> &Replica {
        &self.replicas[i]
    }

    /// The current leader, if exactly one live node believes it leads.
    pub fn current_leader(&self) -> Option<NodeId> {
        let leaders: Vec<NodeId> = self
            .replicas
            .iter()
            .enumerate()
            .filter(|(i, r)| !self.down[*i] && r.role() == Role::Leader)
            .map(|(_, r)| r.id())
            .collect();
        if leaders.len() == 1 {
            Some(leaders[0])
        } else {
            None
        }
    }

    /// Queue a subscriber-write command through node `origin` at `at`.
    /// Returns the assigned command id.
    pub fn submit_write_at(
        &mut self,
        at: SimTime,
        origin: u32,
        uid: udr_model::ids::SubscriberUid,
        entry: Option<udr_model::attrs::Entry>,
    ) -> CmdId {
        let id = CmdId(self.next_cmd);
        self.next_cmd += 1;
        let origin = NodeId(origin);
        self.queue.schedule_at(
            at,
            Ev::Submit {
                origin,
                cmd: Command::write(id, uid, entry),
            },
        );
        id
    }

    /// Partition `island` away from the rest between `at` and `at + duration`.
    pub fn schedule_partition<I: IntoIterator<Item = u32>>(
        &mut self,
        at: SimTime,
        duration: SimDuration,
        island: I,
    ) {
        let cut = Cut::isolating(island.into_iter().map(SiteId));
        let idx = self.cuts.len();
        self.cuts.push(cut);
        self.active_cuts.push(None);
        self.queue.schedule_at(at, Ev::StartCut { idx });
        self.queue
            .schedule_at(at.saturating_add(duration), Ev::Heal { idx });
    }

    /// Crash node `node` at `at` (stops processing; state survives).
    pub fn schedule_crash(&mut self, at: SimTime, node: u32) {
        self.queue.schedule_at(at, Ev::Crash { node: NodeId(node) });
    }

    /// Restart a crashed node at `at`.
    pub fn schedule_restart(&mut self, at: SimTime, node: u32) {
        self.queue
            .schedule_at(at, Ev::Restart { node: NodeId(node) });
    }

    fn start_ticks(&mut self) {
        if self.ticks_started {
            return;
        }
        self.ticks_started = true;
        for i in 0..self.replicas.len() {
            // Small per-node stagger so timer events interleave.
            let first = self.cfg.tick_interval + SimDuration::from_micros(137 * i as u64);
            self.queue.schedule_at(
                SimTime::ZERO + first,
                Ev::Tick {
                    node: NodeId(i as u32),
                },
            );
        }
    }

    fn route(&mut self, now: SimTime, from: NodeId, outputs: Vec<Outbound>) {
        for out in outputs {
            match out {
                Outbound::To(dest, msg) => self.send_one(now, from, dest, msg),
                Outbound::Broadcast(msg) => {
                    for i in 0..self.replicas.len() as u32 {
                        if NodeId(i) != from {
                            self.send_one(now, from, NodeId(i), msg.clone());
                        }
                    }
                }
            }
        }
    }

    fn send_one(&mut self, now: SimTime, from: NodeId, to: NodeId, msg: Message) {
        let (sf, st) = (self.sites[from.index()], self.sites[to.index()]);
        self.messages.count(msg.kind(), sf != st);
        if let Some(delay) = self.net.send(sf, st, &mut self.rng).delay() {
            self.queue.schedule_at(
                now + delay,
                Ev::Deliver {
                    to,
                    env: Envelope { from, msg },
                },
            );
        }
        // Lost / unreachable: dropped; retransmission timers recover.
    }

    fn post_process(&mut self, now: SimTime, node: NodeId) {
        let was_leader = self.leader_changes.last().map(|(_, n)| *n);
        let replica = &mut self.replicas[node.index()];
        let chosen = replica.drain_newly_chosen();
        for v in replica.take_violations() {
            self.violations.push(format!("{node}: {v}"));
        }
        if replica.role() == Role::Leader && was_leader != Some(node) {
            // A node observed winning leadership since the last change.
            self.leader_changes.push((now, node));
        }
        for (slot, cmd) in chosen {
            if cmd.id.is_noop() {
                continue;
            }
            if let Some(fate) = self.fates.get_mut(&cmd.id) {
                if fate.chosen_at.is_none() {
                    fate.chosen_at = Some(now);
                    fate.slot = Some(slot);
                }
                if fate.origin == node && fate.learned_at_origin.is_none() {
                    fate.learned_at_origin = Some(now);
                }
            }
        }
    }

    /// Run the virtual clock until `horizon`, consuming every scheduled
    /// event. Can be called repeatedly with growing horizons.
    pub fn run_until(&mut self, horizon: SimTime) -> RunReport {
        self.start_ticks();
        while let Some((now, ev)) = self.queue.pop_until(horizon) {
            match ev {
                Ev::Deliver { to, env } => {
                    if self.down[to.index()] {
                        continue;
                    }
                    let outputs = self.replicas[to.index()].handle(now, env.from, env.msg);
                    self.post_process(now, to);
                    self.route(now, to, outputs);
                }
                Ev::Tick { node } => {
                    self.queue
                        .schedule_at(now + self.cfg.tick_interval, Ev::Tick { node });
                    if self.down[node.index()] {
                        continue;
                    }
                    let outputs = self.replicas[node.index()].tick(now);
                    self.post_process(now, node);
                    self.route(now, node, outputs);
                }
                Ev::Submit { origin, cmd } => {
                    self.fates.insert(
                        cmd.id,
                        CommandFate {
                            submitted_at: now,
                            origin,
                            chosen_at: None,
                            learned_at_origin: None,
                            slot: None,
                        },
                    );
                    if self.down[origin.index()] {
                        continue; // client hit a dead PoA: counts as failed
                    }
                    let outputs = self.replicas[origin.index()].submit(now, cmd);
                    self.post_process(now, origin);
                    self.route(now, origin, outputs);
                }
                Ev::StartCut { idx } => {
                    let handle = self.net.start_partition(self.cuts[idx].clone());
                    self.active_cuts[idx] = Some(handle);
                }
                Ev::Heal { idx } => {
                    if let Some(handle) = self.active_cuts[idx].take() {
                        self.net.heal_partition(handle);
                    }
                }
                Ev::Crash { node } => self.down[node.index()] = true,
                Ev::Restart { node } => self.down[node.index()] = false,
            }
        }
        self.report()
    }

    /// Snapshot the current report without running further.
    pub fn report(&mut self) -> RunReport {
        let mut violations = self.violations.clone();
        // Pairwise agreement across every replica's log, crashed or not:
        // a crashed node's decided prefix must still agree.
        for a in 0..self.replicas.len() {
            for b in (a + 1)..self.replicas.len() {
                if let Err(v) = self.replicas[a].log().agrees_with(self.replicas[b].log()) {
                    violations.push(format!("n{a} vs n{b}: {v}"));
                }
            }
        }
        RunReport {
            fates: self.fates.clone(),
            elections: self.replicas.iter().map(|r| r.elections_started).sum(),
            leader_changes: self.leader_changes.clone(),
            messages: self.messages.clone(),
            violations,
            final_committed: self.replicas.iter().map(|r| r.log().committed()).collect(),
        }
    }

    /// Network counters (backbone crossings, losses, blocks).
    pub fn net_stats(&self) -> udr_sim::net::NetStats {
        self.net.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::ids::SubscriberUid;

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn quiet_cluster(sites: usize, seed: u64) -> ConsensusCluster {
        ConsensusCluster::new(
            Topology::multinational(sites),
            ClusterConfig::default(),
            seed,
        )
    }

    #[test]
    fn healthy_cluster_commits_everything() {
        let mut cluster = quiet_cluster(3, 1);
        for i in 0..20 {
            cluster.submit_write_at(
                secs(2) + SimDuration::from_millis(100 * i),
                (i % 3) as u32,
                SubscriberUid(i),
                None,
            );
        }
        let report = cluster.run_until(secs(10));
        assert_eq!(
            report.committed(),
            20,
            "uncommitted: {}",
            report.uncommitted()
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // One stable leader: a single election in a quiet network.
        assert_eq!(
            report.leader_changes.len(),
            1,
            "{:?}",
            report.leader_changes
        );
    }

    #[test]
    fn commit_latency_is_about_one_wan_round_trip() {
        let mut cluster = quiet_cluster(3, 2);
        // Let leadership settle, then measure steady-state commits.
        for i in 0..50 {
            cluster.submit_write_at(
                secs(5) + SimDuration::from_millis(50 * i),
                0,
                SubscriberUid(i),
                None,
            );
        }
        let report = cluster.run_until(secs(20));
        assert_eq!(report.committed(), 50);
        let latencies = report.commit_latencies();
        let mean_ms =
            latencies.iter().map(|d| d.as_millis_f64()).sum::<f64>() / latencies.len() as f64;
        // One-way WAN median is 15 ms: a majority commit needs roughly one
        // round trip (30 ms) when the origin is the leader, up to ~3 legs
        // when forwarded. Anything above ~100 ms would mean retry storms.
        assert!(
            (10.0..100.0).contains(&mean_ms),
            "mean commit latency {mean_ms} ms"
        );
        assert!(report.violations.is_empty());
    }

    #[test]
    fn minority_partition_blocks_commits_on_island() {
        let mut cluster = quiet_cluster(3, 3);
        // Let a leader emerge first.
        cluster.run_until(secs(4));
        let leader = cluster.current_leader().expect("stable leader");
        // Partition a NON-leader island; submit through the islanded node.
        let island = (0..3u32).find(|i| NodeId(*i) != leader).unwrap();
        cluster.schedule_partition(secs(5), SimDuration::from_secs(20), [island]);
        cluster.submit_write_at(secs(10), island, SubscriberUid(1), None);
        let mid = cluster.run_until(secs(20));
        assert_eq!(mid.committed(), 0, "islanded client must not commit");
        // After heal the forwarded command goes through.
        let end = cluster.run_until(secs(40));
        assert_eq!(end.committed(), 1);
        assert!(end.violations.is_empty());
    }

    #[test]
    fn majority_side_keeps_committing_when_leader_is_islanded() {
        let mut cluster = quiet_cluster(5, 4);
        cluster.run_until(secs(4));
        let leader = cluster.current_leader().expect("stable leader");
        // Island the leader alone: the other four re-elect and continue.
        cluster.schedule_partition(secs(5), SimDuration::from_secs(30), [leader.0]);
        let majority_node = (0..5u32).find(|i| NodeId(*i) != leader).unwrap();
        for i in 0..10 {
            cluster.submit_write_at(
                secs(8) + SimDuration::from_millis(200 * i),
                majority_node,
                SubscriberUid(i),
                None,
            );
        }
        let report = cluster.run_until(secs(30));
        assert_eq!(report.committed(), 10, "majority side must stay available");
        assert!(report.leader_changes.len() >= 2, "re-election expected");
        assert!(report.violations.is_empty());
        // Heal: the old leader rejoins and catches up.
        let report = cluster.run_until(secs(60));
        assert!(report.violations.is_empty());
        let max = report.final_committed.iter().max().copied().unwrap();
        assert_eq!(
            report.final_committed[leader.index()],
            max,
            "old leader must catch up after heal: {:?}",
            report.final_committed
        );
    }

    #[test]
    fn leader_crash_fails_over_without_losing_commits() {
        let mut cluster = quiet_cluster(3, 5);
        cluster.run_until(secs(4));
        let leader = cluster.current_leader().expect("stable leader");
        let other = (0..3u32).find(|i| NodeId(*i) != leader).unwrap();
        // Commit some load, crash the leader, keep submitting elsewhere.
        for i in 0..5 {
            cluster.submit_write_at(
                secs(4) + SimDuration::from_millis(100 * i),
                other,
                SubscriberUid(i),
                None,
            );
        }
        cluster.schedule_crash(secs(6), leader.0);
        for i in 5..10 {
            cluster.submit_write_at(
                secs(8) + SimDuration::from_millis(100 * i),
                other,
                SubscriberUid(i),
                None,
            );
        }
        let report = cluster.run_until(secs(25));
        assert_eq!(report.committed(), 10);
        assert!(report.violations.is_empty());

        // Restart: the crashed ex-leader catches back up.
        cluster.schedule_restart(secs(26), leader.0);
        let report = cluster.run_until(secs(60));
        assert!(report.violations.is_empty());
        let max = report.final_committed.iter().max().copied().unwrap();
        assert_eq!(report.final_committed[leader.index()], max);
    }

    #[test]
    fn lossy_backbone_still_commits_via_retransmission() {
        let mut topo = Topology::multinational(3);
        // 5 % loss on every backbone link.
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    let mut profile = topo.link(SiteId(a), SiteId(b)).clone();
                    profile.loss = 0.05;
                    topo.set_link(SiteId(a), SiteId(b), profile);
                }
            }
        }
        let mut cluster = ConsensusCluster::new(topo, ClusterConfig::default(), 6);
        for i in 0..30 {
            cluster.submit_write_at(
                secs(3) + SimDuration::from_millis(150 * i),
                (i % 3) as u32,
                SubscriberUid(i),
                None,
            );
        }
        let report = cluster.run_until(secs(30));
        assert_eq!(report.committed(), 30);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn submissions_to_crashed_node_fail() {
        let mut cluster = quiet_cluster(3, 7);
        cluster.run_until(secs(4));
        cluster.schedule_crash(secs(5), 2);
        cluster.submit_write_at(secs(6), 2, SubscriberUid(1), None);
        let report = cluster.run_until(secs(15));
        assert_eq!(report.committed(), 0);
        assert_eq!(report.uncommitted(), 1);
    }

    #[test]
    fn logs_are_prefix_consistent_across_nodes() {
        let mut cluster = quiet_cluster(5, 8);
        // Origins avoid node 3, which crashes mid-run (a client talking to
        // a dead PoA fails by design; that case is covered separately).
        let origins = [0u32, 1, 2, 4];
        for i in 0..40 {
            cluster.submit_write_at(
                secs(2) + SimDuration::from_millis(75 * i),
                origins[(i % 4) as usize],
                SubscriberUid(i),
                None,
            );
        }
        // A mid-run partition plus a node crash for good measure.
        cluster.schedule_partition(secs(3), SimDuration::from_secs(4), [1u32]);
        cluster.schedule_crash(secs(4), 3);
        cluster.schedule_restart(secs(9), 3);
        let report = cluster.run_until(secs(40));
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.committed(), 40);
        // All live nodes converge to the same watermark eventually.
        let max = report.final_committed.iter().max().copied().unwrap();
        for (i, wm) in report.final_committed.iter().enumerate() {
            assert_eq!(*wm, max, "node {i} watermark {wm} != {max}");
        }
    }

    #[test]
    fn report_accounts_message_kinds() {
        let mut cluster = quiet_cluster(3, 9);
        cluster.submit_write_at(secs(3), 0, SubscriberUid(1), None);
        let report = cluster.run_until(secs(6));
        assert!(report.messages.total > 0);
        assert!(report.messages.by_kind.contains_key("prepare"));
        assert!(report.messages.by_kind.contains_key("accept"));
        assert!(report.messages.by_kind.contains_key("heartbeat"));
        assert!(report.messages.wan > 0, "consensus must cross the backbone");
    }

    #[test]
    fn client_latency_includes_learn_leg() {
        let mut cluster = quiet_cluster(3, 10);
        cluster.run_until(secs(4));
        let leader = cluster.current_leader().expect("leader");
        let follower = (0..3u32).find(|i| NodeId(*i) != leader).unwrap();
        let id = cluster.submit_write_at(secs(5), follower, SubscriberUid(1), None);
        let report = cluster.run_until(secs(10));
        let fate = &report.fates[&id];
        let commit = fate.commit_latency().expect("committed");
        let client = fate.client_latency().expect("learned at origin");
        assert!(client >= commit, "origin learns after the leader chooses");
    }
}
