//! One multi-Paxos node: acceptor + learner + (when elected) leader.
//!
//! The replica is a pure state machine: `handle`/`tick`/`submit` consume an
//! input at a virtual instant and return the messages to send. All timing
//! (delays, loss, partitions) lives in the runtime, which makes every
//! protocol path unit-testable without a network and keeps runs
//! deterministic.
//!
//! Protocol shape — classic multi-Paxos with a stable leader:
//!
//! * **Election (phase 1).** A follower that loses contact with the leader
//!   campaigns with a ballot above everything it has seen. Acceptors
//!   promise and report accepted entries the campaigner may be missing;
//!   on a majority of promises the campaigner leads, re-proposes the
//!   highest-ballot accepted value per open slot and fills gaps with
//!   no-ops (the Paxos safety rule).
//! * **Steady state (phase 2).** The leader assigns one slot per client
//!   command and needs a single majority round trip per commit — phase 1
//!   is paid once per leadership, which is what makes leader-based
//!   agreement affordable over the paper's backbone (and is exactly the
//!   primary-order broadcast structure ZooKeeper uses).
//! * **Learning.** Chosen decisions are broadcast; lagging learners pull
//!   missed decisions with catch-up transfers.
//!
//! Randomized election timeouts (each replica forks its own [`SimRng`])
//! keep campaigns from colliding forever; ballots are totally ordered so
//! colliding campaigns are safe, just slow.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

use udr_model::time::{SimDuration, SimTime};
use udr_sim::SimRng;

use crate::ballot::{Ballot, NodeId, Slot};
use crate::log::{AgreementViolation, ChosenLog};
use crate::msg::{CmdId, Command, Message};

/// Timing knobs of one replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaConfig {
    /// How long a follower waits without leader contact before campaigning
    /// (a uniform jitter of up to half this value is added per wait).
    pub election_timeout: SimDuration,
    /// Leader heartbeat period. Must be well below `election_timeout`.
    pub heartbeat_interval: SimDuration,
    /// Retransmission period for unacknowledged proposals, pending command
    /// forwards and catch-up requests.
    pub retry_interval: SimDuration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            election_timeout: SimDuration::from_millis(750),
            heartbeat_interval: SimDuration::from_millis(100),
            retry_interval: SimDuration::from_millis(200),
        }
    }
}

/// The replica's current posture in the election protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepting and learning; expects heartbeats from a leader.
    Follower,
    /// Campaigning: sent `Prepare`, collecting promises.
    Candidate,
    /// Owns the current ballot; proposes client commands.
    Leader,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Role::Follower => "follower",
            Role::Candidate => "candidate",
            Role::Leader => "leader",
        })
    }
}

/// A message the replica wants sent.
#[derive(Debug, Clone, PartialEq)]
pub enum Outbound {
    /// Send to one peer.
    To(NodeId, Message),
    /// Send to every *other* ensemble member.
    Broadcast(Message),
}

/// A client command waiting at a non-leader (or at a candidate).
#[derive(Debug, Clone)]
struct PendingCmd {
    cmd: Command,
    /// `None` until the first forward attempt.
    last_sent: Option<SimTime>,
}

/// One consensus node.
#[derive(Debug)]
pub struct Replica {
    id: NodeId,
    n: usize,
    cfg: ReplicaConfig,
    rng: SimRng,

    role: Role,
    /// Acceptor: highest ballot promised.
    promised: Ballot,
    /// Acceptor: accepted but not known-chosen entries.
    accepted: BTreeMap<Slot, (Ballot, Command)>,
    /// Learner: the decided sequence.
    log: ChosenLog,

    /// Campaign/leadership ballot (only meaningful as candidate/leader).
    ballot: Ballot,
    /// Distinct promisers for the current campaign (includes self).
    promised_from: BTreeSet<NodeId>,
    /// Highest-ballot accepted entries gathered during the campaign.
    merged: BTreeMap<Slot, (Ballot, Command)>,
    /// Leader: per-slot acks gathered (includes self).
    acks: BTreeMap<Slot, BTreeSet<NodeId>>,
    /// Leader: proposals awaiting a majority, with last send instant.
    inflight: BTreeMap<Slot, (Command, SimTime)>,
    /// Ids of commands currently in flight (deduplication).
    inflight_ids: HashSet<CmdId>,
    /// Next free slot while leading.
    next_slot: Slot,
    /// Commands waiting for a leader (at followers/candidates, or moved
    /// back from `inflight` when a leader steps down).
    pending: VecDeque<PendingCmd>,
    pending_ids: HashSet<CmdId>,

    /// Failure detector.
    leader_hint: Option<NodeId>,
    election_due: SimTime,
    last_heartbeat_sent: SimTime,
    last_catchup_request: Option<SimTime>,

    /// Decisions learned since the last drain (runtime latency accounting).
    newly_chosen: Vec<(Slot, Command)>,
    /// Safety violations observed (always empty in a correct run).
    violations: Vec<AgreementViolation>,
    /// Elections this node started.
    pub elections_started: u64,
}

impl Replica {
    /// A fresh follower. `n` is the ensemble size; `seed` feeds the
    /// node-local jitter stream.
    pub fn new(id: NodeId, n: usize, cfg: ReplicaConfig, seed: u64) -> Self {
        assert!(n >= 1, "an ensemble needs at least one node");
        assert!(
            cfg.heartbeat_interval < cfg.election_timeout,
            "heartbeats must outpace election timeouts"
        );
        let mut rng = SimRng::seed_from_u64(seed ^ 0xC0_5E_0A_11 ^ id.0 as u64);
        let election_due = SimTime::ZERO + Self::timeout_with_jitter(&cfg, &mut rng);
        Replica {
            id,
            n,
            cfg,
            rng,
            role: Role::Follower,
            promised: Ballot::ZERO,
            accepted: BTreeMap::new(),
            log: ChosenLog::new(),
            ballot: Ballot::ZERO,
            promised_from: BTreeSet::new(),
            merged: BTreeMap::new(),
            acks: BTreeMap::new(),
            inflight: BTreeMap::new(),
            inflight_ids: HashSet::new(),
            next_slot: Slot(1),
            pending: VecDeque::new(),
            pending_ids: HashSet::new(),
            leader_hint: None,
            election_due,
            last_heartbeat_sent: SimTime::ZERO,
            last_catchup_request: None,
            newly_chosen: Vec::new(),
            violations: Vec::new(),
            elections_started: 0,
        }
    }

    fn timeout_with_jitter(cfg: &ReplicaConfig, rng: &mut SimRng) -> SimDuration {
        let jitter = rng.below(cfg.election_timeout.as_nanos().max(2) / 2);
        cfg.election_timeout + SimDuration::from_nanos(jitter)
    }

    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The decided log.
    pub fn log(&self) -> &ChosenLog {
        &self.log
    }

    /// Who this node believes leads (itself when leader).
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.leader_hint
    }

    /// The ballot this node last campaigned under or promised.
    pub fn current_ballot(&self) -> Ballot {
        if self.role == Role::Follower {
            self.promised
        } else {
            self.ballot
        }
    }

    /// Take the decisions learned since the previous call.
    pub fn drain_newly_chosen(&mut self) -> Vec<(Slot, Command)> {
        std::mem::take(&mut self.newly_chosen)
    }

    /// Take any safety violations observed (must stay empty).
    pub fn take_violations(&mut self) -> Vec<AgreementViolation> {
        std::mem::take(&mut self.violations)
    }

    /// Commands queued waiting for a leader.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Read-index gate: true when this node leads and has no proposal in
    /// flight, i.e. its committed prefix reflects every command it has
    /// acknowledged taking. A linearizable read served off the leader's
    /// committed state needs this to hold (plus a majority round-trip to
    /// confirm the leadership is not stale) — a deposed or mid-proposal
    /// leader must not serve.
    pub fn read_index_ready(&self) -> bool {
        self.role == Role::Leader && self.inflight.is_empty()
    }

    // ------------------------------------------------------------------
    // Inputs
    // ------------------------------------------------------------------

    /// A client (or the runtime on behalf of one) hands this node a
    /// command. The leader proposes immediately; others forward to the
    /// believed leader or queue until one is known.
    pub fn submit(&mut self, now: SimTime, cmd: Command) -> Vec<Outbound> {
        let mut out = Vec::new();
        self.ingest_command(now, cmd, &mut out);
        out
    }

    /// Periodic timer: drives elections, heartbeats, retransmissions and
    /// pending-command forwarding.
    pub fn tick(&mut self, now: SimTime) -> Vec<Outbound> {
        let mut out = Vec::new();
        match self.role {
            Role::Leader => {
                // Retransmit stale proposals (lost Accepts) and heartbeat.
                let retry_before = now.duration_since(SimTime::ZERO).as_nanos()
                    >= self.cfg.retry_interval.as_nanos();
                if retry_before {
                    let cutoff = SimTime(now.as_nanos() - self.cfg.retry_interval.as_nanos());
                    let stale: Vec<Slot> = self
                        .inflight
                        .iter()
                        .filter(|(_, (_, sent))| *sent <= cutoff)
                        .map(|(s, _)| *s)
                        .collect();
                    for slot in stale {
                        if let Some((cmd, sent)) = self.inflight.get_mut(&slot) {
                            *sent = now;
                            out.push(Outbound::Broadcast(Message::Accept {
                                ballot: self.ballot,
                                slot,
                                cmd: cmd.clone(),
                                committed: self.log.committed(),
                            }));
                        }
                    }
                }
                if now.duration_since(self.last_heartbeat_sent) >= self.cfg.heartbeat_interval {
                    self.last_heartbeat_sent = now;
                    out.push(Outbound::Broadcast(Message::Heartbeat {
                        ballot: self.ballot,
                        committed: self.log.committed(),
                    }));
                }
            }
            Role::Follower => {
                if now >= self.election_due {
                    self.start_election(now, &mut out);
                } else {
                    self.forward_pending(now, &mut out);
                }
            }
            Role::Candidate => {
                if now >= self.election_due {
                    // Campaign stalled (lost messages or a split): rebid.
                    self.start_election(now, &mut out);
                }
            }
        }
        out
    }

    /// Process one incoming message.
    pub fn handle(&mut self, now: SimTime, from: NodeId, msg: Message) -> Vec<Outbound> {
        let mut out = Vec::new();
        match msg {
            Message::Prepare { ballot, committed } => {
                self.on_prepare(now, from, ballot, committed, &mut out)
            }
            Message::Promise {
                ballot,
                accepted,
                chosen,
            } => self.on_promise(now, from, ballot, accepted, chosen, &mut out),
            Message::PrepareNack { promised } => self.on_nack(now, promised),
            Message::Accept {
                ballot,
                slot,
                cmd,
                committed,
            } => self.on_accept(now, from, ballot, slot, cmd, committed, &mut out),
            Message::Accepted { ballot, slot } => self.on_accepted(from, ballot, slot, &mut out),
            Message::AcceptNack { promised } => self.on_nack(now, promised),
            Message::Learn { slot, cmd } => {
                if Some(from) == self.leader_hint {
                    self.touch_leader(now);
                }
                self.learn(slot, cmd);
            }
            Message::Heartbeat { ballot, committed } => {
                self.on_heartbeat(now, from, ballot, committed, &mut out)
            }
            Message::CatchUpRequest { above } => {
                let chosen = self.log.suffix(above);
                if !chosen.is_empty() {
                    out.push(Outbound::To(from, Message::CatchUpReply { chosen }));
                }
            }
            Message::CatchUpReply { chosen } => {
                for (slot, cmd) in chosen {
                    self.learn(slot, cmd);
                }
            }
            Message::Forward { cmd } => self.ingest_command(now, cmd, &mut out),
        }
        out
    }

    // ------------------------------------------------------------------
    // Acceptor paths
    // ------------------------------------------------------------------

    fn on_prepare(
        &mut self,
        now: SimTime,
        from: NodeId,
        ballot: Ballot,
        committed: Slot,
        out: &mut Vec<Outbound>,
    ) {
        if ballot > self.promised {
            self.promised = ballot;
            if self.role != Role::Follower && ballot.node != self.id {
                self.step_down(now);
            }
            self.leader_hint = Some(ballot.node);
            self.touch_leader(now);
            let accepted: Vec<(Slot, Ballot, Command)> = self
                .accepted
                .range(committed.next()..)
                .map(|(s, (b, c))| (*s, *b, c.clone()))
                .collect();
            let chosen = self.log.suffix(committed);
            out.push(Outbound::To(
                from,
                Message::Promise {
                    ballot,
                    accepted,
                    chosen,
                },
            ));
        } else {
            out.push(Outbound::To(
                from,
                Message::PrepareNack {
                    promised: self.promised,
                },
            ));
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_accept(
        &mut self,
        now: SimTime,
        from: NodeId,
        ballot: Ballot,
        slot: Slot,
        cmd: Command,
        committed: Slot,
        out: &mut Vec<Outbound>,
    ) {
        if ballot >= self.promised {
            self.promised = ballot;
            if self.role != Role::Follower && ballot.node != self.id {
                self.step_down(now);
            }
            self.leader_hint = Some(ballot.node);
            self.touch_leader(now);
            if self.log.get(slot).is_none() {
                self.accepted.insert(slot, (ballot, cmd));
            }
            out.push(Outbound::To(from, Message::Accepted { ballot, slot }));
            self.maybe_request_catchup(now, from, committed, out);
        } else {
            out.push(Outbound::To(
                from,
                Message::AcceptNack {
                    promised: self.promised,
                },
            ));
        }
    }

    fn on_heartbeat(
        &mut self,
        now: SimTime,
        from: NodeId,
        ballot: Ballot,
        committed: Slot,
        out: &mut Vec<Outbound>,
    ) {
        if ballot >= self.promised {
            self.promised = ballot;
            if self.role != Role::Follower && ballot.node != self.id {
                self.step_down(now);
            }
            self.leader_hint = Some(ballot.node);
            self.touch_leader(now);
            self.maybe_request_catchup(now, from, committed, out);
            self.forward_pending(now, out);
        }
    }

    fn maybe_request_catchup(
        &mut self,
        now: SimTime,
        leader: NodeId,
        leader_committed: Slot,
        out: &mut Vec<Outbound>,
    ) {
        let due = self
            .last_catchup_request
            .is_none_or(|last| now.duration_since(last) >= self.cfg.retry_interval);
        if leader_committed > self.log.committed() && due {
            self.last_catchup_request = Some(now);
            out.push(Outbound::To(
                leader,
                Message::CatchUpRequest {
                    above: self.log.committed(),
                },
            ));
        }
    }

    // ------------------------------------------------------------------
    // Campaign paths
    // ------------------------------------------------------------------

    fn start_election(&mut self, now: SimTime, out: &mut Vec<Outbound>) {
        self.elections_started += 1;
        self.role = Role::Candidate;
        let floor = self.promised.round.max(self.ballot.round);
        self.ballot = Ballot::new(floor + 1, self.id);
        self.promised = self.ballot; // self-promise
        self.leader_hint = None;
        self.promised_from.clear();
        self.promised_from.insert(self.id);
        self.merged = self
            .accepted
            .range(self.log.committed().next()..)
            .map(|(s, v)| (*s, v.clone()))
            .collect();
        self.election_due = now + Self::timeout_with_jitter(&self.cfg, &mut self.rng);
        if self.promised_from.len() >= self.majority() {
            self.become_leader(now, out);
        } else {
            out.push(Outbound::Broadcast(Message::Prepare {
                ballot: self.ballot,
                committed: self.log.committed(),
            }));
        }
    }

    fn on_promise(
        &mut self,
        now: SimTime,
        from: NodeId,
        ballot: Ballot,
        accepted: Vec<(Slot, Ballot, Command)>,
        chosen: Vec<(Slot, Command)>,
        out: &mut Vec<Outbound>,
    ) {
        // Absorb decided entries regardless of campaign state: they are facts.
        for (slot, cmd) in chosen {
            self.learn(slot, cmd);
        }
        if self.role != Role::Candidate || ballot != self.ballot {
            return;
        }
        for (slot, b, cmd) in accepted {
            if self.log.get(slot).is_some() {
                continue; // already decided locally
            }
            match self.merged.get(&slot) {
                Some((existing, _)) if *existing >= b => {}
                _ => {
                    self.merged.insert(slot, (b, cmd));
                }
            }
        }
        self.promised_from.insert(from);
        if self.promised_from.len() >= self.majority() {
            self.become_leader(now, out);
        }
    }

    fn become_leader(&mut self, now: SimTime, out: &mut Vec<Outbound>) {
        self.role = Role::Leader;
        self.leader_hint = Some(self.id);
        self.acks.clear();
        self.inflight.clear();
        self.inflight_ids.clear();

        // Re-propose constrained slots, filling gaps with no-ops so the
        // log's contiguous prefix can advance (Paxos's value-restriction
        // rule: a slot some acceptor accepted must be re-proposed with the
        // highest-ballot value seen for it).
        let merged = std::mem::take(&mut self.merged);
        let committed = self.log.committed();
        let horizon = merged
            .keys()
            .next_back()
            .copied()
            .unwrap_or(Slot::ZERO)
            .max(self.log.max_slot());
        self.next_slot = horizon.max(committed).next();

        let mut slot = committed.next();
        while slot <= horizon {
            if self.log.get(slot).is_none() {
                let cmd = merged
                    .get(&slot)
                    .map(|(_, c)| c.clone())
                    .unwrap_or_else(Command::noop);
                self.propose(now, slot, cmd, out);
            }
            slot = slot.next();
        }

        // Campaign won: announce immediately so followers stop campaigning,
        // then serve anything clients queued while leaderless.
        self.last_heartbeat_sent = now;
        out.push(Outbound::Broadcast(Message::Heartbeat {
            ballot: self.ballot,
            committed: self.log.committed(),
        }));
        let queued: Vec<Command> = self.pending.drain(..).map(|p| p.cmd).collect();
        self.pending_ids.clear();
        for cmd in queued {
            self.ingest_command(now, cmd, out);
        }
    }

    fn step_down(&mut self, now: SimTime) {
        self.role = Role::Follower;
        // Keep client commands alive across the leadership change: they go
        // back to pending and will be forwarded to the new leader.
        let inflight = std::mem::take(&mut self.inflight);
        self.inflight_ids.clear();
        for (_, (cmd, _)) in inflight {
            if !cmd.is_noop() {
                self.queue_pending(cmd);
            }
        }
        self.acks.clear();
        self.merged.clear();
        self.promised_from.clear();
        self.election_due = now + Self::timeout_with_jitter(&self.cfg, &mut self.rng);
    }

    fn on_nack(&mut self, now: SimTime, promised: Ballot) {
        if promised > self.promised {
            self.promised = promised;
        }
        if self.role != Role::Follower && promised > self.ballot {
            self.step_down(now);
            // Give the owner of the higher ballot a chance to lead before
            // campaigning again.
            self.leader_hint = Some(promised.node);
        }
    }

    // ------------------------------------------------------------------
    // Leader paths
    // ------------------------------------------------------------------

    fn ingest_command(&mut self, now: SimTime, cmd: Command, out: &mut Vec<Outbound>) {
        if !cmd.id.is_noop()
            && (self.log.contains_id(cmd.id) || self.inflight_ids.contains(&cmd.id))
        {
            return; // duplicate of something already proposed/decided
        }
        match self.role {
            Role::Leader => {
                let slot = self.next_slot;
                self.next_slot = self.next_slot.next();
                self.propose(now, slot, cmd, out);
            }
            Role::Follower | Role::Candidate => {
                match self.leader_hint {
                    Some(leader) if leader != self.id => {
                        if self.queue_pending(cmd.clone()) {
                            // Remember it (re-forwarded on tick if the
                            // leader dies) and forward right away.
                            if let Some(entry) = self.pending.back_mut() {
                                entry.last_sent = Some(now);
                            }
                            out.push(Outbound::To(leader, Message::Forward { cmd }));
                        }
                    }
                    _ => {
                        self.queue_pending(cmd);
                    }
                }
            }
        }
    }

    fn queue_pending(&mut self, cmd: Command) -> bool {
        if !cmd.id.is_noop() && !self.pending_ids.insert(cmd.id) {
            return false;
        }
        self.pending.push_back(PendingCmd {
            cmd,
            last_sent: None,
        });
        true
    }

    fn forward_pending(&mut self, now: SimTime, out: &mut Vec<Outbound>) {
        let Some(leader) = self.leader_hint else {
            return;
        };
        if leader == self.id {
            return;
        }
        for p in &mut self.pending {
            let due = p
                .last_sent
                .is_none_or(|last| now.duration_since(last) >= self.cfg.retry_interval);
            if due {
                p.last_sent = Some(now);
                out.push(Outbound::To(
                    leader,
                    Message::Forward { cmd: p.cmd.clone() },
                ));
            }
        }
    }

    fn propose(&mut self, now: SimTime, slot: Slot, cmd: Command, out: &mut Vec<Outbound>) {
        debug_assert_eq!(self.role, Role::Leader);
        // Self-accept.
        self.accepted.insert(slot, (self.ballot, cmd.clone()));
        if !cmd.id.is_noop() {
            self.inflight_ids.insert(cmd.id);
        }
        self.inflight.insert(slot, (cmd.clone(), now));
        self.acks.entry(slot).or_default().insert(self.id);
        out.push(Outbound::Broadcast(Message::Accept {
            ballot: self.ballot,
            slot,
            cmd,
            committed: self.log.committed(),
        }));
        self.maybe_choose(slot, out);
    }

    fn on_accepted(&mut self, from: NodeId, ballot: Ballot, slot: Slot, out: &mut Vec<Outbound>) {
        if self.role != Role::Leader || ballot != self.ballot {
            return;
        }
        if let Some(set) = self.acks.get_mut(&slot) {
            set.insert(from);
        }
        self.maybe_choose(slot, out);
    }

    fn maybe_choose(&mut self, slot: Slot, out: &mut Vec<Outbound>) {
        let reached = self
            .acks
            .get(&slot)
            .is_some_and(|s| s.len() >= self.majority());
        if !reached {
            return;
        }
        let Some((cmd, _)) = self.inflight.remove(&slot) else {
            return;
        };
        self.acks.remove(&slot);
        self.inflight_ids.remove(&cmd.id);
        self.learn(slot, cmd.clone());
        out.push(Outbound::Broadcast(Message::Learn { slot, cmd }));
    }

    // ------------------------------------------------------------------
    // Learner path
    // ------------------------------------------------------------------

    fn learn(&mut self, slot: Slot, cmd: Command) {
        match self.log.record(slot, cmd.clone()) {
            Ok(true) => {
                self.newly_chosen.push((slot, cmd.clone()));
                // The decision is final; acceptor state for it is obsolete,
                // and a queued copy of the command is satisfied.
                self.accepted.remove(&slot);
                if !cmd.id.is_noop() && self.pending_ids.remove(&cmd.id) {
                    self.pending.retain(|p| p.cmd.id != cmd.id);
                }
            }
            Ok(false) => {}
            Err(v) => self.violations.push(v),
        }
    }

    fn touch_leader(&mut self, now: SimTime) {
        self.election_due = now + Self::timeout_with_jitter(&self.cfg, &mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::ids::SubscriberUid;

    fn cfg() -> ReplicaConfig {
        ReplicaConfig::default()
    }

    fn w(id: u64) -> Command {
        Command::write(CmdId(id), SubscriberUid(id), None)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// Walk a 3-node ensemble to a stable leader by hand-delivering
    /// messages; returns (replicas, leader index).
    fn elect_leader() -> (Vec<Replica>, usize) {
        let mut nodes: Vec<Replica> = (0..3)
            .map(|i| Replica::new(NodeId(i), 3, cfg(), 42))
            .collect();
        // Force node 0 to campaign.
        let due = nodes[0].election_due;
        let mut out = nodes[0].tick(due);
        assert_eq!(nodes[0].role(), Role::Candidate);
        // Deliver the Prepare to peers, collect promises.
        let prepare = match out.pop() {
            Some(Outbound::Broadcast(m)) => m,
            other => panic!("expected broadcast prepare, got {other:?}"),
        };
        let mut promises = Vec::new();
        for i in 1..3u32 {
            for o in nodes[i as usize].handle(due, NodeId(0), prepare.clone()) {
                if let Outbound::To(to, m) = o {
                    assert_eq!(to, NodeId(0));
                    promises.push((NodeId(i), m));
                }
            }
        }
        for (from, m) in promises {
            nodes[0].handle(due, from, m);
        }
        assert_eq!(nodes[0].role(), Role::Leader);
        (nodes, 0)
    }

    #[test]
    fn lone_node_elects_itself_and_commits() {
        let mut r = Replica::new(NodeId(0), 1, cfg(), 1);
        let due = r.election_due;
        r.tick(due);
        assert_eq!(r.role(), Role::Leader);
        r.submit(due, w(1));
        assert_eq!(r.log().committed(), Slot(1));
        assert_eq!(r.log().get(Slot(1)).unwrap().id, CmdId(1));
    }

    #[test]
    fn three_node_election_and_commit_round() {
        let (mut nodes, leader) = elect_leader();
        let now = t(2000);
        // Leader proposes; acceptors accept; majority chooses.
        let out = nodes[leader].submit(now, w(7));
        let accept = out
            .iter()
            .find_map(|o| match o {
                Outbound::Broadcast(m @ Message::Accept { .. }) => Some(m.clone()),
                _ => None,
            })
            .expect("leader must broadcast an accept");
        let reply = nodes[1].handle(now, NodeId(0), accept);
        let accepted = match &reply[0] {
            Outbound::To(_, m @ Message::Accepted { .. }) => m.clone(),
            other => panic!("expected accepted, got {other:?}"),
        };
        let out = nodes[leader].handle(now, NodeId(1), accepted);
        // With 2/3 acks the command is chosen and learned broadcast.
        assert_eq!(nodes[leader].log().committed(), Slot(1));
        assert!(out.iter().any(
            |o| matches!(o, Outbound::Broadcast(Message::Learn { slot, .. }) if *slot == Slot(1))
        ));
    }

    #[test]
    fn acceptor_rejects_stale_ballots() {
        let mut r = Replica::new(NodeId(1), 3, cfg(), 9);
        let high = Ballot::new(5, NodeId(2));
        let out = r.handle(
            t(0),
            NodeId(2),
            Message::Prepare {
                ballot: high,
                committed: Slot::ZERO,
            },
        );
        assert!(matches!(&out[0], Outbound::To(_, Message::Promise { .. })));
        // A lower campaign is refused with the promised ballot.
        let low = Ballot::new(3, NodeId(0));
        let out = r.handle(
            t(1),
            NodeId(0),
            Message::Prepare {
                ballot: low,
                committed: Slot::ZERO,
            },
        );
        match &out[0] {
            Outbound::To(to, Message::PrepareNack { promised }) => {
                assert_eq!(*to, NodeId(0));
                assert_eq!(*promised, high);
            }
            other => panic!("expected nack, got {other:?}"),
        }
        // Accept below the promise is also refused.
        let out = r.handle(
            t(2),
            NodeId(0),
            Message::Accept {
                ballot: low,
                slot: Slot(1),
                cmd: w(1),
                committed: Slot::ZERO,
            },
        );
        assert!(matches!(
            &out[0],
            Outbound::To(_, Message::AcceptNack { .. })
        ));
    }

    #[test]
    fn new_leader_repropose_highest_ballot_value() {
        // Node 2 campaigns; node 1 promises carrying an accepted entry for
        // slot 1 under an old ballot. The new leader must re-propose that
        // value, not its own.
        let mut leader = Replica::new(NodeId(2), 3, cfg(), 3);
        let due = leader.election_due;
        leader.tick(due);
        let ballot = leader.current_ballot();
        let old = Ballot::new(1, NodeId(0));
        let out = leader.handle(
            due,
            NodeId(1),
            Message::Promise {
                ballot,
                accepted: vec![(Slot(1), old, w(99))],
                chosen: vec![],
            },
        );
        assert_eq!(leader.role(), Role::Leader);
        let reproposed = out.iter().any(|o| {
            matches!(o, Outbound::Broadcast(Message::Accept { slot, cmd, .. })
                if *slot == Slot(1) && cmd.id == CmdId(99))
        });
        assert!(reproposed, "constrained slot must be re-proposed: {out:?}");
    }

    #[test]
    fn gaps_fill_with_noops_on_leader_change() {
        let mut leader = Replica::new(NodeId(2), 3, cfg(), 3);
        let due = leader.election_due;
        leader.tick(due);
        let ballot = leader.current_ballot();
        // Promise reports an accepted entry at slot 3 only: slots 1-2 are
        // gaps the new leader must close with no-ops.
        let out = leader.handle(
            due,
            NodeId(1),
            Message::Promise {
                ballot,
                accepted: vec![(Slot(3), Ballot::new(1, NodeId(0)), w(33))],
                chosen: vec![],
            },
        );
        let mut noop_slots = Vec::new();
        for o in &out {
            if let Outbound::Broadcast(Message::Accept { slot, cmd, .. }) = o {
                if cmd.is_noop() {
                    noop_slots.push(*slot);
                }
            }
        }
        assert_eq!(noop_slots, vec![Slot(1), Slot(2)]);
    }

    #[test]
    fn follower_forwards_submissions_to_leader() {
        let mut f = Replica::new(NodeId(1), 3, cfg(), 4);
        // Learn of a leader via heartbeat.
        f.handle(
            t(0),
            NodeId(0),
            Message::Heartbeat {
                ballot: Ballot::new(1, NodeId(0)),
                committed: Slot::ZERO,
            },
        );
        let out = f.submit(t(1), w(5));
        assert!(matches!(&out[0],
            Outbound::To(to, Message::Forward { cmd }) if *to == NodeId(0) && cmd.id == CmdId(5)));
        // Still queued for re-forwarding until observed chosen.
        assert_eq!(f.pending_len(), 1);
        f.handle(
            t(2),
            NodeId(0),
            Message::Learn {
                slot: Slot(1),
                cmd: w(5),
            },
        );
        assert_eq!(f.pending_len(), 0);
    }

    #[test]
    fn leaderless_submissions_queue_until_leader_known() {
        let mut f = Replica::new(NodeId(1), 3, cfg(), 4);
        assert!(f.submit(t(0), w(5)).is_empty());
        assert_eq!(f.pending_len(), 1);
        // Heartbeat announces a leader: pending flushes as Forward.
        let out = f.handle(
            t(1),
            NodeId(0),
            Message::Heartbeat {
                ballot: Ballot::new(1, NodeId(0)),
                committed: Slot::ZERO,
            },
        );
        assert!(out
            .iter()
            .any(|o| matches!(o, Outbound::To(to, Message::Forward { .. }) if *to == NodeId(0))));
    }

    #[test]
    fn duplicate_submissions_are_ignored() {
        let (mut nodes, leader) = elect_leader();
        let now = t(2000);
        nodes[leader].submit(now, w(7));
        let out = nodes[leader].submit(now, w(7));
        assert!(out.is_empty(), "duplicate while inflight must be dropped");
        // And once chosen it is still deduplicated.
        let ballot = nodes[leader].current_ballot();
        nodes[leader].handle(
            now,
            NodeId(1),
            Message::Accepted {
                ballot,
                slot: Slot(1),
            },
        );
        assert_eq!(nodes[leader].log().committed(), Slot(1));
        let out = nodes[leader].submit(now, w(7));
        assert!(out.is_empty());
    }

    #[test]
    fn leader_steps_down_on_higher_ballot() {
        let (mut nodes, leader) = elect_leader();
        let now = t(3000);
        nodes[leader].submit(now, w(1));
        let higher = nodes[leader].current_ballot().succeed(NodeId(2));
        nodes[leader].handle(
            now,
            NodeId(2),
            Message::Prepare {
                ballot: higher,
                committed: Slot::ZERO,
            },
        );
        assert_eq!(nodes[leader].role(), Role::Follower);
        // The in-flight client command went back to pending, not lost.
        assert_eq!(nodes[leader].pending_len(), 1);
    }

    #[test]
    fn lagging_learner_requests_catchup() {
        let mut f = Replica::new(NodeId(1), 3, cfg(), 4);
        let out = f.handle(
            t(0),
            NodeId(0),
            Message::Heartbeat {
                ballot: Ballot::new(1, NodeId(0)),
                committed: Slot(4),
            },
        );
        let req = out.iter().find_map(|o| match o {
            Outbound::To(to, Message::CatchUpRequest { above }) => Some((*to, *above)),
            _ => None,
        });
        assert_eq!(req, Some((NodeId(0), Slot::ZERO)));
    }

    #[test]
    fn catchup_reply_fills_log() {
        let mut f = Replica::new(NodeId(1), 3, cfg(), 4);
        f.handle(
            t(0),
            NodeId(0),
            Message::CatchUpReply {
                chosen: vec![(Slot(1), w(1)), (Slot(2), w(2))],
            },
        );
        assert_eq!(f.log().committed(), Slot(2));
        let chosen = f.drain_newly_chosen();
        assert_eq!(chosen.len(), 2);
    }

    #[test]
    fn catchup_request_served_from_log() {
        let (mut nodes, leader) = elect_leader();
        let now = t(2000);
        nodes[leader].submit(now, w(1));
        let ballot = nodes[leader].current_ballot();
        nodes[leader].handle(
            now,
            NodeId(1),
            Message::Accepted {
                ballot,
                slot: Slot(1),
            },
        );
        let out = nodes[leader].handle(
            now,
            NodeId(2),
            Message::CatchUpRequest { above: Slot::ZERO },
        );
        match &out[0] {
            Outbound::To(to, Message::CatchUpReply { chosen }) => {
                assert_eq!(*to, NodeId(2));
                assert_eq!(chosen.len(), 1);
                assert_eq!(chosen[0].0, Slot(1));
            }
            other => panic!("expected catch-up reply, got {other:?}"),
        }
    }

    #[test]
    fn heartbeats_defer_elections() {
        let mut f = Replica::new(NodeId(1), 3, cfg(), 4);
        let mut now = t(0);
        // Regular heartbeats: no election for a long horizon.
        for _ in 0..100 {
            f.handle(
                now,
                NodeId(0),
                Message::Heartbeat {
                    ballot: Ballot::new(1, NodeId(0)),
                    committed: Slot::ZERO,
                },
            );
            now += SimDuration::from_millis(100);
            let out = f.tick(now);
            assert_eq!(f.role(), Role::Follower);
            assert!(out.is_empty());
        }
        // Silence: the next tick past the deadline campaigns.
        now += SimDuration::from_millis(3000);
        f.tick(now);
        assert_eq!(f.role(), Role::Candidate);
        assert_eq!(f.elections_started, 1);
    }

    #[test]
    fn candidate_rebids_with_higher_round_after_timeout() {
        let mut c = Replica::new(NodeId(0), 3, cfg(), 4);
        let due = c.election_due;
        c.tick(due);
        let first = c.current_ballot();
        // No promises arrive; past the rebid deadline a new campaign starts.
        let rebid_at = c.election_due;
        c.tick(rebid_at);
        let second = c.current_ballot();
        assert!(second > first);
        assert_eq!(c.elections_started, 2);
    }

    #[test]
    fn leader_retransmits_unacked_proposals() {
        let (mut nodes, leader) = elect_leader();
        let now = t(2000);
        nodes[leader].submit(now, w(1));
        // No Accepted arrives; after the retry interval the Accept re-sends.
        let later = now + SimDuration::from_millis(250);
        let out = nodes[leader].tick(later);
        assert!(out.iter().any(|o| matches!(
            o,
            Outbound::Broadcast(Message::Accept { slot, .. }) if *slot == Slot(1)
        )));
    }

    #[test]
    fn learn_is_idempotent_and_detects_conflicts() {
        let mut f = Replica::new(NodeId(1), 3, cfg(), 4);
        f.handle(
            t(0),
            NodeId(0),
            Message::Learn {
                slot: Slot(1),
                cmd: w(1),
            },
        );
        f.handle(
            t(1),
            NodeId(0),
            Message::Learn {
                slot: Slot(1),
                cmd: w(1),
            },
        );
        assert!(f.take_violations().is_empty());
        // A conflicting decision (impossible in a correct protocol run) is
        // surfaced, not silently applied.
        f.handle(
            t(2),
            NodeId(0),
            Message::Learn {
                slot: Slot(1),
                cmd: w(2),
            },
        );
        let v = f.take_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].slot, Slot(1));
    }
}
