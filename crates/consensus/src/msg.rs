//! The consensus wire protocol.
//!
//! Every message type maps to a phase of multi-Paxos: `Prepare`/`Promise`
//! (phase 1, leader election), `Accept`/`Accepted` (phase 2, one per log
//! slot under a stable leader), `Learn` (choice dissemination),
//! `Heartbeat` (failure detection + commit-watermark gossip), the catch-up
//! pair (log transfer for lagging replicas) and `Forward` (client command
//! routed from a non-leader to the believed leader, like ZooKeeper
//! followers forwarding writes to the primary).

use udr_model::attrs::Entry;
use udr_model::ids::SubscriberUid;

use crate::ballot::{Ballot, NodeId, Slot};

/// Unique id of a client command. `CmdId(0)` is reserved for leader-issued
/// no-ops (gap filling after failover) and is exempt from deduplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CmdId(pub u64);

impl CmdId {
    /// The reserved no-op id.
    pub const NOOP: CmdId = CmdId(0);

    /// Whether this is the reserved no-op id.
    pub fn is_noop(self) -> bool {
        self == CmdId::NOOP
    }
}

impl std::fmt::Display for CmdId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cmd{}", self.0)
    }
}

/// What a log entry does when applied to subscriber storage.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Chosen to fill a gap during leader change; applies as nothing.
    Noop,
    /// A provisioning write: set (or, with `None`, delete) one record.
    Write {
        /// The record written.
        uid: SubscriberUid,
        /// New value; `None` deletes.
        entry: Option<Entry>,
    },
    /// A configuration change riding the log: the migration cutover
    /// command for a live partition move. Replicating it through the
    /// same totally ordered log that carries writes makes the cutover
    /// exactly-once and totally ordered against the data stream — the
    /// replica group switches membership at one agreed log position
    /// instead of behind a write-freeze window.
    Reconfig {
        /// Id of the migration task the cutover belongs to.
        migration: u64,
    },
}

/// A client command as replicated through the log.
#[derive(Debug, Clone, PartialEq)]
pub struct Command {
    /// Deduplication id; unique per client submission.
    pub id: CmdId,
    /// The effect.
    pub payload: Payload,
}

impl Command {
    /// A gap-filling no-op.
    pub fn noop() -> Self {
        Command {
            id: CmdId::NOOP,
            payload: Payload::Noop,
        }
    }

    /// A subscriber write command.
    pub fn write(id: CmdId, uid: SubscriberUid, entry: Option<Entry>) -> Self {
        Command {
            id,
            payload: Payload::Write { uid, entry },
        }
    }

    /// A migration-cutover configuration change (see [`Payload::Reconfig`]).
    pub fn reconfig(id: CmdId, migration: u64) -> Self {
        Command {
            id,
            payload: Payload::Reconfig { migration },
        }
    }

    /// Whether this is a no-op.
    pub fn is_noop(&self) -> bool {
        matches!(self.payload, Payload::Noop)
    }
}

/// One protocol message. See the module docs for the phase each belongs to.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Phase-1a: a campaigner asks acceptors to promise ballot `ballot`.
    /// `committed` is the campaigner's chosen watermark so acceptors only
    /// report accepted entries it might be missing.
    Prepare {
        /// The campaigned ballot.
        ballot: Ballot,
        /// Campaigner's contiguous chosen watermark.
        committed: Slot,
    },
    /// Phase-1b: the acceptor's promise not to accept below `ballot`.
    Promise {
        /// The promised ballot (echoed).
        ballot: Ballot,
        /// Accepted-but-not-known-chosen entries above the campaigner's
        /// watermark: `(slot, accepted ballot, value)`.
        accepted: Vec<(Slot, Ballot, Command)>,
        /// Chosen entries above the campaigner's watermark — these are
        /// already decided, the campaigner absorbs them directly.
        chosen: Vec<(Slot, Command)>,
    },
    /// Phase-1b refusal: the acceptor already promised higher.
    PrepareNack {
        /// The higher promise the campaigner has to outbid.
        promised: Ballot,
    },
    /// Phase-2a: the leader proposes `cmd` at `slot` under `ballot`.
    /// `committed` gossips the leader's chosen watermark (piggybacked
    /// commit notification, as ZAB does).
    Accept {
        /// The leader's ballot.
        ballot: Ballot,
        /// The log slot proposed.
        slot: Slot,
        /// The proposed command.
        cmd: Command,
        /// Leader's contiguous chosen watermark.
        committed: Slot,
    },
    /// Phase-2b: the acceptor accepted `(ballot, slot)`.
    Accepted {
        /// The ballot accepted under (echoed).
        ballot: Ballot,
        /// The slot accepted.
        slot: Slot,
    },
    /// Phase-2b refusal: the acceptor already promised higher.
    AcceptNack {
        /// The higher promise.
        promised: Ballot,
    },
    /// The leader announces a chosen `(slot, cmd)` to all learners.
    Learn {
        /// The decided slot.
        slot: Slot,
        /// The decided command.
        cmd: Command,
    },
    /// Leader liveness + watermark gossip; followers reset election timers.
    Heartbeat {
        /// The leader's ballot.
        ballot: Ballot,
        /// Leader's contiguous chosen watermark.
        committed: Slot,
    },
    /// A lagging learner asks for chosen entries above `above`.
    CatchUpRequest {
        /// The requester's chosen watermark.
        above: Slot,
    },
    /// Chosen-entry transfer answering a [`Message::CatchUpRequest`].
    CatchUpReply {
        /// Chosen entries `(slot, cmd)` above the requested watermark.
        chosen: Vec<(Slot, Command)>,
    },
    /// A non-leader forwards a client command to the believed leader.
    Forward {
        /// The forwarded command.
        cmd: Command,
    },
}

impl Message {
    /// Short label for statistics tables.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Prepare { .. } => "prepare",
            Message::Promise { .. } => "promise",
            Message::PrepareNack { .. } => "prepare_nack",
            Message::Accept { .. } => "accept",
            Message::Accepted { .. } => "accepted",
            Message::AcceptNack { .. } => "accept_nack",
            Message::Learn { .. } => "learn",
            Message::Heartbeat { .. } => "heartbeat",
            Message::CatchUpRequest { .. } => "catchup_req",
            Message::CatchUpReply { .. } => "catchup_reply",
            Message::Forward { .. } => "forward",
        }
    }
}

/// A routed message: who sent it plus the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The sending node.
    pub from: NodeId,
    /// The message.
    pub msg: Message,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_command_is_noop() {
        let n = Command::noop();
        assert!(n.is_noop());
        assert!(n.id.is_noop());
    }

    #[test]
    fn write_command_carries_uid() {
        let c = Command::write(CmdId(7), SubscriberUid(42), None);
        assert!(!c.is_noop());
        match c.payload {
            Payload::Write { uid, ref entry } => {
                assert_eq!(uid, SubscriberUid(42));
                assert!(entry.is_none());
            }
            _ => panic!("expected a write"),
        }
    }

    #[test]
    fn reconfig_command_is_effective_but_not_a_write() {
        let c = Command::reconfig(CmdId(9), 3);
        assert!(!c.is_noop(), "reconfig must survive iter_effective");
        match c.payload {
            Payload::Reconfig { migration } => assert_eq!(migration, 3),
            _ => panic!("expected a reconfig"),
        }
    }

    #[test]
    fn message_kinds_are_distinct() {
        let msgs = [
            Message::Prepare {
                ballot: Ballot::ZERO,
                committed: Slot::ZERO,
            },
            Message::Promise {
                ballot: Ballot::ZERO,
                accepted: vec![],
                chosen: vec![],
            },
            Message::PrepareNack {
                promised: Ballot::ZERO,
            },
            Message::Accept {
                ballot: Ballot::ZERO,
                slot: Slot(1),
                cmd: Command::noop(),
                committed: Slot::ZERO,
            },
            Message::Accepted {
                ballot: Ballot::ZERO,
                slot: Slot(1),
            },
            Message::AcceptNack {
                promised: Ballot::ZERO,
            },
            Message::Learn {
                slot: Slot(1),
                cmd: Command::noop(),
            },
            Message::Heartbeat {
                ballot: Ballot::ZERO,
                committed: Slot::ZERO,
            },
            Message::CatchUpRequest { above: Slot::ZERO },
            Message::CatchUpReply { chosen: vec![] },
            Message::Forward {
                cmd: Command::noop(),
            },
        ];
        let mut kinds: Vec<_> = msgs.iter().map(|m| m.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), msgs.len());
    }
}
