//! The chosen log: what consensus has decided, in slot order.
//!
//! Unlike the master/slave [`udr_replication`] log — whose content can
//! diverge across branches during a partition and needs the §5 restoration
//! merge — the chosen log is *the* agreement artifact: every replica's copy
//! is a prefix-consistent view of one immutable sequence. [`ChosenLog::record`]
//! checks that invariant on every learn and reports a violation instead of
//! silently overwriting, so the test suite can assert agreement directly.

use std::collections::{BTreeMap, HashSet};

use crate::ballot::Slot;
use crate::msg::{CmdId, Command};

/// A replica's view of the decided sequence.
#[derive(Debug, Clone, Default)]
pub struct ChosenLog {
    chosen: BTreeMap<Slot, Command>,
    /// Contiguous watermark: every slot `<= applied` is chosen.
    applied: Slot,
    /// Ids of non-noop commands chosen (for leader-side deduplication).
    ids: HashSet<CmdId>,
}

/// Two different commands were decided for the same slot — a Paxos safety
/// violation. Never produced by a correct run; surfacing it (rather than
/// panicking) lets property tests shrink failing fault schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct AgreementViolation {
    /// The slot with conflicting decisions.
    pub slot: Slot,
    /// What this log already held.
    pub existing: Command,
    /// What the caller tried to record.
    pub incoming: Command,
}

impl std::fmt::Display for AgreementViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "agreement violation at {}: {:?} vs {:?}",
            self.slot, self.existing.id, self.incoming.id
        )
    }
}

impl ChosenLog {
    /// An empty log.
    pub fn new() -> Self {
        ChosenLog::default()
    }

    /// Record a decision. Returns `Ok(true)` if the slot was newly chosen,
    /// `Ok(false)` if it was already chosen with the same command, and an
    /// [`AgreementViolation`] if a *different* command was already chosen.
    pub fn record(&mut self, slot: Slot, cmd: Command) -> Result<bool, AgreementViolation> {
        debug_assert!(slot > Slot::ZERO, "slot 0 is the empty watermark");
        if let Some(existing) = self.chosen.get(&slot) {
            if *existing == cmd {
                return Ok(false);
            }
            return Err(AgreementViolation {
                slot,
                existing: existing.clone(),
                incoming: cmd,
            });
        }
        if !cmd.id.is_noop() {
            self.ids.insert(cmd.id);
        }
        self.chosen.insert(slot, cmd);
        self.advance();
        Ok(true)
    }

    fn advance(&mut self) {
        while self.chosen.contains_key(&self.applied.next()) {
            self.applied = self.applied.next();
        }
    }

    /// The contiguous chosen watermark (all slots up to and including it
    /// are decided and applicable in order).
    pub fn committed(&self) -> Slot {
        self.applied
    }

    /// The highest slot with a decision, contiguous or not.
    pub fn max_slot(&self) -> Slot {
        self.chosen
            .keys()
            .next_back()
            .copied()
            .unwrap_or(Slot::ZERO)
    }

    /// Number of decided slots.
    pub fn len(&self) -> usize {
        self.chosen.len()
    }

    /// Whether nothing is decided yet.
    pub fn is_empty(&self) -> bool {
        self.chosen.is_empty()
    }

    /// The decision at `slot`, if any.
    pub fn get(&self, slot: Slot) -> Option<&Command> {
        self.chosen.get(&slot)
    }

    /// Whether a non-noop command id was already chosen somewhere.
    pub fn contains_id(&self, id: CmdId) -> bool {
        self.ids.contains(&id)
    }

    /// Chosen entries strictly above `above`, in slot order (catch-up
    /// transfers and promise piggybacks).
    pub fn suffix(&self, above: Slot) -> Vec<(Slot, Command)> {
        self.chosen
            .range(above.next()..)
            .map(|(s, c)| (*s, c.clone()))
            .collect()
    }

    /// Iterate every decided `(slot, command)` in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &Command)> + '_ {
        self.chosen.iter().map(|(s, c)| (*s, c))
    }

    /// Iterate the *applicable* prefix (slots `1..=committed()`) with
    /// exactly-once semantics: no-ops are skipped, and a command id that
    /// appears in more than one slot (possible when a command is
    /// re-forwarded around a leader change after its original proposal
    /// survived) is yielded only at its first slot. This is the iterator
    /// the storage apply layer consumes.
    pub fn iter_effective(&self) -> impl Iterator<Item = (Slot, &Command)> + '_ {
        let mut seen: HashSet<CmdId> = HashSet::new();
        self.chosen
            .range(..=self.applied)
            .filter_map(move |(s, c)| {
                if c.is_noop() {
                    return None;
                }
                if seen.insert(c.id) {
                    Some((*s, c))
                } else {
                    None
                }
            })
    }

    /// Check prefix consistency against another log: every slot decided in
    /// both must hold the same command.
    pub fn agrees_with(&self, other: &ChosenLog) -> Result<(), AgreementViolation> {
        // Iterate the smaller map for efficiency.
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        for (slot, cmd) in small.iter() {
            if let Some(theirs) = large.get(slot) {
                if theirs != cmd {
                    return Err(AgreementViolation {
                        slot,
                        existing: cmd.clone(),
                        incoming: theirs.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::ids::SubscriberUid;

    fn w(id: u64) -> Command {
        Command::write(CmdId(id), SubscriberUid(id), None)
    }

    #[test]
    fn watermark_advances_contiguously() {
        let mut log = ChosenLog::new();
        assert_eq!(log.committed(), Slot::ZERO);
        log.record(Slot(2), w(2)).unwrap();
        // Slot 1 missing: watermark stays at 0 though max_slot is 2.
        assert_eq!(log.committed(), Slot::ZERO);
        assert_eq!(log.max_slot(), Slot(2));
        log.record(Slot(1), w(1)).unwrap();
        assert_eq!(log.committed(), Slot(2));
    }

    #[test]
    fn duplicate_same_command_is_idempotent() {
        let mut log = ChosenLog::new();
        assert!(log.record(Slot(1), w(1)).unwrap());
        assert!(!log.record(Slot(1), w(1)).unwrap());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn conflicting_decision_is_reported() {
        let mut log = ChosenLog::new();
        log.record(Slot(1), w(1)).unwrap();
        let err = log.record(Slot(1), w(2)).unwrap_err();
        assert_eq!(err.slot, Slot(1));
        assert_eq!(err.existing.id, CmdId(1));
        assert_eq!(err.incoming.id, CmdId(2));
        // The original decision survives.
        assert_eq!(log.get(Slot(1)).unwrap().id, CmdId(1));
    }

    #[test]
    fn suffix_returns_entries_above_watermark() {
        let mut log = ChosenLog::new();
        for i in 1..=5 {
            log.record(Slot(i), w(i)).unwrap();
        }
        let suffix = log.suffix(Slot(3));
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].0, Slot(4));
        assert_eq!(suffix[1].0, Slot(5));
        assert!(log.suffix(Slot(5)).is_empty());
    }

    #[test]
    fn effective_iteration_skips_noops_and_duplicates() {
        let mut log = ChosenLog::new();
        log.record(Slot(1), w(10)).unwrap();
        log.record(Slot(2), Command::noop()).unwrap();
        log.record(Slot(3), w(10)).unwrap(); // duplicate id in a later slot
        log.record(Slot(4), w(20)).unwrap();
        let effective: Vec<_> = log.iter_effective().map(|(s, c)| (s, c.id)).collect();
        assert_eq!(effective, vec![(Slot(1), CmdId(10)), (Slot(4), CmdId(20))]);
    }

    #[test]
    fn effective_iteration_stops_at_watermark() {
        let mut log = ChosenLog::new();
        log.record(Slot(1), w(1)).unwrap();
        log.record(Slot(3), w(3)).unwrap(); // gap at 2
        let effective: Vec<_> = log.iter_effective().map(|(s, _)| s).collect();
        assert_eq!(effective, vec![Slot(1)], "slot 3 is not applicable yet");
    }

    #[test]
    fn contains_id_tracks_non_noop_only() {
        let mut log = ChosenLog::new();
        log.record(Slot(1), Command::noop()).unwrap();
        log.record(Slot(2), w(5)).unwrap();
        assert!(!log.contains_id(CmdId::NOOP));
        assert!(log.contains_id(CmdId(5)));
        assert!(!log.contains_id(CmdId(6)));
    }

    #[test]
    fn agreement_check_between_logs() {
        let mut a = ChosenLog::new();
        let mut b = ChosenLog::new();
        a.record(Slot(1), w(1)).unwrap();
        a.record(Slot(2), w(2)).unwrap();
        b.record(Slot(1), w(1)).unwrap();
        assert!(a.agrees_with(&b).is_ok());
        assert!(b.agrees_with(&a).is_ok());
        b.record(Slot(2), w(99)).unwrap();
        assert!(a.agrees_with(&b).is_err());
    }

    #[test]
    fn noops_count_toward_watermark() {
        let mut log = ChosenLog::new();
        log.record(Slot(1), Command::noop()).unwrap();
        log.record(Slot(2), w(1)).unwrap();
        assert_eq!(log.committed(), Slot(2));
    }
}
