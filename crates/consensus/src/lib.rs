//! # udr-consensus
//!
//! The paper closes (§6) by naming the replacement candidate for its
//! master/slave replication: *"one promising alternative to the master-slave
//! replication approach described above lies on efficient distributed
//! agreement protocols like e.g. Paxos \[15\] or similar solutions \[16\]"*
//! (\[16\] is Apache ZooKeeper). This crate builds that alternative so the
//! repository can measure what §5 only argues: with majority agreement,
//! provisioning writes stay **available on the majority side of a partition
//! and consistent everywhere** — no §5 restoration merge, no conflicts —
//! at the price of one majority round trip over the backbone per commit
//! (the PACELC "EC" cost the paper predicts would make "unwary service
//! providers … think it twice").
//!
//! What is implemented:
//!
//! * [`ballot`] — totally ordered ballots `(round, node)` and log slots;
//! * [`msg`] — the wire protocol: Prepare/Promise, Accept/Accepted, Learn,
//!   heartbeats, catch-up transfers and client command forwarding;
//! * [`log`] — the chosen log: agreement checking, contiguous apply
//!   watermark, exactly-once iteration for the storage apply layer;
//! * [`replica`] — one multi-Paxos node: acceptor + learner + leader
//!   election with randomized timeouts and a stable-leader fast path
//!   (phase 1 amortized across slots, the property that makes ZooKeeper's
//!   primary-order broadcast affordable);
//! * [`runtime`] — a deterministic cluster harness wiring N replicas to the
//!   simulated IP backbone of [`udr_sim`], with partition schedules, node
//!   crashes, message loss, and per-command fate/latency accounting.
//!
//! The protocol follows Paxos safety to the letter: an acceptor never
//! accepts below its promise; a new leader re-proposes the
//! highest-ballot accepted value per slot and fills gaps with no-ops;
//! chosen values are immutable. Node crashes in the [`runtime`] model a
//! process stop with acceptor state intact on restart (the paper's SAF
//! platform keeps process state on replicated disk), which is the
//! persistence Paxos requires.
//!
//! ```
//! use udr_consensus::runtime::{ClusterConfig, ConsensusCluster};
//! use udr_model::ids::SubscriberUid;
//! use udr_model::time::{SimDuration, SimTime};
//! use udr_sim::net::Topology;
//!
//! // Three sites, one consensus node each, default timeouts.
//! let mut cluster = ConsensusCluster::new(Topology::multinational(3), ClusterConfig::default(), 7);
//! cluster.submit_write_at(SimTime(0) + SimDuration::from_secs(2), 0, SubscriberUid(42), None);
//! let report = cluster.run_until(SimTime(0) + SimDuration::from_secs(5));
//! assert_eq!(report.committed(), 1);
//! assert!(report.violations.is_empty());
//! ```

#![warn(missing_docs)]

pub mod ballot;
pub mod log;
pub mod msg;
pub mod replica;
pub mod runtime;

pub use ballot::{Ballot, NodeId, Slot};
pub use log::ChosenLog;
pub use msg::{CmdId, Command, Envelope, Message, Payload};
pub use replica::{Replica, ReplicaConfig, Role};
pub use runtime::{ClusterConfig, CommandFate, ConsensusCluster, MsgStats, RunReport};
