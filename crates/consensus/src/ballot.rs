//! Ballots and log slots: the total orders Paxos is built on.

use std::fmt;

/// Index of a consensus node within its ensemble.
///
/// Consensus nodes are co-located with the replicas of a partition, one per
/// site; the runtime maps each node to its [`udr_model::ids::SiteId`] when
/// routing messages across the simulated backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A Paxos ballot: `(round, proposing node)`, totally ordered.
///
/// The node component breaks ties so two nodes campaigning in the same
/// round cannot both win; the round component lets a campaigner outbid any
/// ballot it has seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ballot {
    /// Monotonically increasing campaign round.
    pub round: u64,
    /// The node that owns (proposes under) this ballot.
    pub node: NodeId,
}

impl Ballot {
    /// The ballot below every real ballot; acceptors start promised to it.
    pub const ZERO: Ballot = Ballot {
        round: 0,
        node: NodeId(0),
    };

    /// A ballot in `round` owned by `node`.
    pub const fn new(round: u64, node: NodeId) -> Self {
        Ballot { round, node }
    }

    /// The smallest ballot owned by `node` that beats `self`.
    pub fn succeed(self, node: NodeId) -> Ballot {
        Ballot {
            round: self.round + 1,
            node,
        }
    }

    /// Whether this is a real ballot (some node campaigned for it).
    pub fn is_real(self) -> bool {
        self != Ballot::ZERO
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.node.0)
    }
}

/// A position in the replicated log. Slot 1 is the first command; slot 0 is
/// the "nothing chosen yet" sentinel used for watermarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Slot(pub u64);

impl Slot {
    /// The watermark before any chosen command.
    pub const ZERO: Slot = Slot(0);

    /// The next slot in sequence.
    #[inline]
    pub const fn next(self) -> Slot {
        Slot(self.0 + 1)
    }

    /// Raw value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballots_order_by_round_then_node() {
        let a = Ballot::new(1, NodeId(2));
        let b = Ballot::new(2, NodeId(0));
        let c = Ballot::new(2, NodeId(1));
        assert!(a < b);
        assert!(b < c);
        assert!(Ballot::ZERO < a);
    }

    #[test]
    fn succeed_always_beats() {
        let seen = Ballot::new(7, NodeId(4));
        let mine = seen.succeed(NodeId(0));
        assert!(mine > seen, "{mine} must beat {seen}");
        assert_eq!(mine.round, 8);
        assert_eq!(mine.node, NodeId(0));
    }

    #[test]
    fn zero_ballot_is_not_real() {
        assert!(!Ballot::ZERO.is_real());
        assert!(Ballot::new(1, NodeId(0)).is_real());
        // Round 0 owned by a nonzero node is still a real (orderable) ballot.
        assert!(Ballot::new(0, NodeId(1)).is_real());
    }

    #[test]
    fn slot_sequence() {
        assert_eq!(Slot::ZERO.next(), Slot(1));
        assert_eq!(Slot(9).next().raw(), 10);
        assert!(Slot(1) < Slot(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(Ballot::new(5, NodeId(1)).to_string(), "b5.1");
        assert_eq!(Slot(12).to_string(), "s12");
    }
}
