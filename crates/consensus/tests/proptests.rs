//! Property tests: Paxos safety must hold under *any* fault schedule.
//!
//! Each case builds a random cluster (3 or 5 nodes), a random submission
//! pattern and a random set of partitions, crashes and restarts, then
//! checks the invariants that define consensus:
//!
//! 1. **Agreement** — no two nodes ever decide different commands for the
//!    same slot (checked per-learn and pairwise at the end).
//! 2. **Durability** — a command reported committed is in the log of every
//!    node whose watermark covers its slot.
//! 3. **Integrity** — nothing appears in a log that was never submitted
//!    (no-ops aside).
//! 4. **Liveness** (fault-free cases only) — everything submitted commits.

use proptest::prelude::*;

use udr_consensus::runtime::{ClusterConfig, ConsensusCluster};
use udr_consensus::{CmdId, Payload};
use udr_model::ids::SubscriberUid;
use udr_model::time::{SimDuration, SimTime};
use udr_sim::net::Topology;

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

#[derive(Debug, Clone)]
struct FaultPlan {
    /// (start ms, duration ms, island members)
    partitions: Vec<(u64, u64, Vec<u32>)>,
    /// (crash ms, restart ms, node)
    crashes: Vec<(u64, u64, u32)>,
}

fn fault_plan(nodes: u32) -> impl Strategy<Value = FaultPlan> {
    let partition = (
        2_000u64..20_000,
        1_000u64..10_000,
        proptest::collection::vec(0..nodes, 1..=(nodes as usize / 2)),
    );
    let crash = (2_000u64..20_000, 1_000u64..10_000, 0..nodes);
    (
        proptest::collection::vec(partition, 0..3),
        proptest::collection::vec(crash, 0..2),
    )
        .prop_map(|(partitions, crashes)| FaultPlan {
            partitions,
            crashes: crashes
                .into_iter()
                .map(|(at, dur, n)| (at, at + dur, n))
                .collect(),
        })
}

/// Run a cluster under the plan; return (cluster report, submitted count).
fn run_case(
    nodes: u32,
    seed: u64,
    submissions: &[(u64, u32)],
    plan: &FaultPlan,
) -> udr_consensus::RunReport {
    let mut cluster = ConsensusCluster::new(
        Topology::multinational(nodes as usize),
        ClusterConfig::default(),
        seed,
    );
    for (i, (at_ms, origin)) in submissions.iter().enumerate() {
        cluster.submit_write_at(
            SimTime::ZERO + ms(2_000 + at_ms),
            origin % nodes,
            SubscriberUid(i as u64),
            None,
        );
    }
    for (at, dur, island) in &plan.partitions {
        // Guard: never isolate every node (that is a dead network, trivially
        // safe but uninteresting).
        let island: Vec<u32> = island.iter().copied().filter(|n| *n < nodes).collect();
        if !island.is_empty() && island.len() < nodes as usize {
            cluster.schedule_partition(SimTime::ZERO + ms(*at), ms(*dur), island);
        }
    }
    for (crash, restart, node) in &plan.crashes {
        cluster.schedule_crash(SimTime::ZERO + ms(*crash), node % nodes);
        cluster.schedule_restart(SimTime::ZERO + ms(*restart), node % nodes);
    }
    // Long tail so the cluster can heal, re-elect and drain pending work.
    cluster.run_until(secs(90))
}

fn check_invariants(report: &udr_consensus::RunReport, cluster_desc: &str) {
    assert!(
        report.violations.is_empty(),
        "[{cluster_desc}] agreement violated: {:?}",
        report.violations
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Safety under arbitrary partitions and crash/restart schedules.
    #[test]
    fn agreement_holds_under_random_faults(
        seed in 0u64..1_000_000,
        nodes in prop_oneof![Just(3u32), Just(5u32)],
        submissions in proptest::collection::vec((0u64..25_000, 0u32..5), 1..20),
        plan in fault_plan(5),
    ) {
        let report = run_case(nodes, seed, &submissions, &plan);
        check_invariants(&report, "random-faults");
    }

    /// Fault-free runs are live: everything submitted commits, exactly once.
    #[test]
    fn fault_free_runs_commit_everything(
        seed in 0u64..1_000_000,
        nodes in prop_oneof![Just(3u32), Just(5u32)],
        submissions in proptest::collection::vec((0u64..10_000, 0u32..5), 1..25),
    ) {
        let plan = FaultPlan { partitions: vec![], crashes: vec![] };
        let report = run_case(nodes, seed, &submissions, &plan);
        check_invariants(&report, "fault-free");
        prop_assert_eq!(report.committed(), submissions.len(),
            "uncommitted fates: {:?}", report.fates);
    }
}

/// Deterministic deep-check on a handful of adversarial seeds: inspect the
/// actual logs, not just the report.
#[test]
fn committed_commands_are_durable_and_exactly_once() {
    for seed in [11u64, 23, 47, 91] {
        let mut cluster =
            ConsensusCluster::new(Topology::multinational(5), ClusterConfig::default(), seed);
        for i in 0..30u64 {
            cluster.submit_write_at(
                secs(2) + ms(400 * i),
                (i % 5) as u32,
                SubscriberUid(i),
                None,
            );
        }
        // Rolling islands plus a leaderless gap.
        cluster.schedule_partition(secs(4), SimDuration::from_secs(5), [0u32, 1]);
        cluster.schedule_partition(secs(11), SimDuration::from_secs(5), [3u32]);
        cluster.schedule_crash(secs(6), 4);
        cluster.schedule_restart(secs(14), 4);
        let report = cluster.run_until(secs(120));
        assert!(
            report.violations.is_empty(),
            "seed {seed}: {:?}",
            report.violations
        );

        for (id, fate) in &report.fates {
            let Some(slot) = fate.slot else { continue };
            // Durability: every node whose watermark covers the slot holds
            // exactly this command there.
            for i in 0..cluster.len() {
                let log = cluster.node(i).log();
                if log.committed() >= slot {
                    let cmd = log.get(slot).expect("covered slot is decided");
                    assert_eq!(cmd.id, *id, "seed {seed}, node {i}, {slot}");
                }
            }
        }

        // Integrity + exactly-once: effective iteration yields each
        // submitted id at most once, and only submitted ids.
        for i in 0..cluster.len() {
            let log = cluster.node(i).log();
            let mut seen = std::collections::HashSet::new();
            for (_, cmd) in log.iter_effective() {
                assert!(report.fates.contains_key(&cmd.id), "phantom {:?}", cmd.id);
                assert!(seen.insert(cmd.id), "duplicate effective {:?}", cmd.id);
                match cmd.payload {
                    Payload::Write { .. } | Payload::Reconfig { .. } => {}
                    Payload::Noop => panic!("noop must not be effective"),
                }
            }
        }

        // Every fate the report calls committed is in the maximal log.
        let (max_node, _) = report
            .final_committed
            .iter()
            .enumerate()
            .max_by_key(|(_, wm)| **wm)
            .unwrap();
        let max_log = cluster.node(max_node).log();
        for (id, fate) in &report.fates {
            if fate.chosen_at.is_some() {
                assert!(
                    max_log.contains_id(*id),
                    "seed {seed}: committed {id} missing"
                );
            }
        }
        let _ = CmdId(0); // silence unused-import lint paths on some configs
    }
}
