//! Paxos safety driven from seeded [`FaultScript`]s: the same compiled
//! fault timelines the deployment-level campaigns inject (clean
//! partitions, flapping cycles, SE crash/restore pairs) are mapped onto
//! a [`ConsensusCluster`] and the full invariant battery is checked
//! after every run — agreement, durability, exactly-once application,
//! and post-heal convergence.
//!
//! The loss- and latency-shaped faults (one-way loss, WAN brown-out)
//! act on the network simulator, which the raw cluster runtime does not
//! model; the e25 deployment campaign covers those against the embedded
//! ensembles.

use udr_consensus::runtime::{ClusterConfig, ConsensusCluster};
use udr_consensus::{Payload, RunReport};
use udr_model::ids::{SeId, SiteId, SubscriberUid};
use udr_model::time::{SimDuration, SimTime};
use udr_sim::net::Topology;
use udr_sim::{Fault, FaultScript};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Schedule a compiled fault timeline onto the cluster. Nodes of a
/// `multinational` topology map 1:1 onto sites, so a site island is a
/// node island and an SE id is a node id. Returns how many faults were
/// actually scheduled (whole-cluster islands are skipped: a dead network
/// is trivially safe but proves nothing).
fn apply_timeline(cluster: &mut ConsensusCluster, script: &FaultScript, nodes: u32) -> usize {
    let mut applied = 0;
    for (at, fault) in script.timeline() {
        match fault {
            Fault::Partition { island, duration } => {
                let island: Vec<u32> = island.iter().map(|s| s.0).filter(|i| *i < nodes).collect();
                if !island.is_empty() && (island.len() as u32) < nodes {
                    cluster.schedule_partition(at, duration, island);
                    applied += 1;
                }
            }
            Fault::SeCrash { se } if se.0 < nodes => {
                cluster.schedule_crash(at, se.0);
                applied += 1;
            }
            Fault::SeRestore { se } if se.0 < nodes => {
                cluster.schedule_restart(at, se.0);
                applied += 1;
            }
            _ => {}
        }
    }
    applied
}

/// The campaign-shaped scripts, parameterised by seed (the seed jitters
/// the compiled instants, so different seeds exercise different
/// interleavings of the same fault shapes).
fn scripts(seed: u64) -> Vec<(&'static str, FaultScript)> {
    vec![
        (
            "clean-partition",
            FaultScript::new(seed).clean_partition(secs(4), SimDuration::from_secs(6), [SiteId(2)]),
        ),
        (
            "flapping",
            FaultScript::new(seed).flapping(secs(4), [SiteId(2)], 4, ms(1500), ms(1500)),
        ),
        (
            "se-outage",
            FaultScript::new(seed).se_outage(secs(5), SimDuration::from_secs(6), SeId(1)),
        ),
        (
            "composite",
            FaultScript::new(seed)
                .clean_partition(secs(3), SimDuration::from_secs(4), [SiteId(0)])
                .se_outage(secs(9), SimDuration::from_secs(4), SeId(2))
                .clean_partition(secs(15), SimDuration::from_secs(3), [SiteId(1)]),
        ),
    ]
}

/// The crash windows `(node, down_at, up_at)` a compiled timeline
/// schedules. A submission through a crashed node is dropped at the dead
/// PoA by design — it can never commit, and the liveness check must not
/// expect it to.
fn crash_windows(script: &FaultScript) -> Vec<(u32, SimTime, SimTime)> {
    let mut windows = Vec::new();
    for (at, fault) in script.timeline() {
        match fault {
            Fault::SeCrash { se } => windows.push((se.0, at, SimTime::MAX)),
            Fault::SeRestore { se } => {
                if let Some(w) = windows
                    .iter_mut()
                    .rev()
                    .find(|(n, _, up)| *n == se.0 && *up == SimTime::MAX)
                {
                    w.2 = at;
                }
            }
            _ => {}
        }
    }
    windows
}

/// Runs the cluster under the script; returns it with the report, the
/// number of faults scheduled, and how many submissions must commit.
fn run_script(seed: u64, script: &FaultScript) -> (ConsensusCluster, RunReport, usize, usize) {
    const NODES: u32 = 3;
    const WRITES: u64 = 24;
    let windows = crash_windows(script);
    let mut cluster = ConsensusCluster::new(
        Topology::multinational(NODES as usize),
        ClusterConfig::default(),
        seed,
    );
    let mut expected = 0usize;
    for i in 0..WRITES {
        let at = secs(2) + ms(i * 800);
        let origin = (i % u64::from(NODES)) as u32;
        cluster.submit_write_at(at, origin, SubscriberUid(i), None);
        let doomed = windows
            .iter()
            .any(|(n, down, up)| *n == origin && *down <= at && at < *up);
        if !doomed {
            expected += 1;
        }
    }
    let applied = apply_timeline(&mut cluster, script, NODES);
    // Long tail: every script above heals, so the cluster must re-elect,
    // catch up and drain what the fault windows delayed.
    let report = cluster.run_until(secs(90));
    (cluster, report, applied, expected)
}

fn check_battery(desc: &str, cluster: &ConsensusCluster, report: &RunReport, expected: usize) {
    // Agreement: never violated, fault or no fault.
    assert!(
        report.violations.is_empty(),
        "[{desc}] agreement violated: {:?}",
        report.violations
    );
    // Durability: every node whose watermark covers a committed slot
    // holds exactly that command there.
    for (id, fate) in &report.fates {
        let Some(slot) = fate.slot else { continue };
        for i in 0..cluster.len() {
            let log = cluster.node(i).log();
            if log.committed() >= slot {
                let cmd = log.get(slot).expect("covered slot is decided");
                assert_eq!(cmd.id, *id, "[{desc}] node {i}, {slot}");
            }
        }
    }
    // Integrity + exactly-once: effective iteration yields each submitted
    // id at most once, and only submitted ids.
    for i in 0..cluster.len() {
        let log = cluster.node(i).log();
        let mut seen = std::collections::HashSet::new();
        for (_, cmd) in log.iter_effective() {
            assert!(
                report.fates.contains_key(&cmd.id),
                "[{desc}] phantom {:?}",
                cmd.id
            );
            assert!(
                seen.insert(cmd.id),
                "[{desc}] duplicate effective {:?}",
                cmd.id
            );
            match cmd.payload {
                Payload::Write { .. } | Payload::Reconfig { .. } => {}
                Payload::Noop => panic!("[{desc}] noop must not be effective"),
            }
        }
    }
    // Post-heal liveness: the faults all healed long before the horizon,
    // so every submission that reached a live PoA commits and every node
    // converges to the same watermark.
    assert_eq!(
        report.committed(),
        expected,
        "[{desc}] uncommitted fates: {:?}",
        report.fates
    );
    let marks: Vec<_> = report.final_committed.iter().collect();
    assert!(
        marks.windows(2).all(|w| w[0] == w[1]),
        "[{desc}] watermarks diverged after heal: {marks:?}"
    );
}

#[test]
fn campaign_shaped_fault_scripts_preserve_every_invariant() {
    for seed in [3u64, 25, 47, 104, 211] {
        for (desc, script) in scripts(seed) {
            let (cluster, report, applied, expected) = run_script(seed, &script);
            assert!(applied > 0, "[{desc}] script scheduled nothing");
            check_battery(
                &format!("seed {seed} × {desc}"),
                &cluster,
                &report,
                expected,
            );
        }
    }
}

/// The compiled timeline is a pure function of (seed, phases): rebuilding
/// the script reproduces it exactly, and a different seed jitters it —
/// the property that makes each cell above a fixed, replayable case.
#[test]
fn script_timelines_are_seed_deterministic() {
    for (desc, script) in scripts(7) {
        let again = scripts(7)
            .into_iter()
            .find(|(d, _)| *d == desc)
            .map(|(_, s)| s)
            .unwrap();
        assert_eq!(script.timeline(), again.timeline(), "{desc}");
    }
    let a = scripts(7).remove(1).1.timeline();
    let b = scripts(8).remove(1).1.timeline();
    assert_ne!(a, b, "a different seed must jitter the flapping timeline");
}
