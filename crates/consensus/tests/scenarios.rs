//! Deterministic adversarial scenarios: the named failure geometries a
//! telecom operator would drill (§3.1 "unforeseen events", §4.1 partition
//! windows), each checking the §6 promise — majority availability, zero
//! divergence, nothing lost.

use udr_consensus::runtime::{ClusterConfig, ConsensusCluster};
use udr_consensus::CmdId;
use udr_model::ids::SubscriberUid;
use udr_model::time::{SimDuration, SimTime};
use udr_sim::net::Topology;

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Five sites, two simultaneous cuts: {0,1} islanded and {4} islanded,
/// leaving {2,3} as the largest connected group — *no* majority anywhere.
/// Writes must freeze (consistency over availability), then all commit
/// once one cut heals and a majority re-forms.
#[test]
fn no_majority_freezes_writes_without_losing_them() {
    let mut cluster =
        ConsensusCluster::new(Topology::multinational(5), ClusterConfig::default(), 41);
    cluster.run_until(secs(4));

    // Both cuts active from t=5; the {0,1} cut heals at t=40, giving
    // {0,1,2,3} a majority again. The {4} cut lasts until t=80.
    cluster.schedule_partition(secs(5), SimDuration::from_secs(35), [0u32, 1]);
    cluster.schedule_partition(secs(5), SimDuration::from_secs(75), [4u32]);

    let mut ids = Vec::new();
    for i in 0..10u64 {
        ids.push(cluster.submit_write_at(
            secs(10) + ms(500 * i),
            2, // the largest (but minority) group
            SubscriberUid(i),
            None,
        ));
    }
    // While no majority exists nothing may commit.
    let frozen = cluster.run_until(secs(38));
    assert_eq!(frozen.committed(), 0, "a 2-of-5 group must not commit");
    assert!(frozen.violations.is_empty());

    // One heal restores a 4-node majority: everything drains.
    let report = cluster.run_until(secs(75));
    assert_eq!(
        report.committed(),
        ids.len(),
        "queued writes must drain after heal"
    );
    assert!(report.violations.is_empty());
}

/// Serial leader assassination: crash whichever node leads, twice in a
/// row (leaving a 3-of-5 majority), with writes flowing through each
/// failover. Every command must survive. A third assassination reduces
/// the ensemble to a 2-node rump, which must freeze.
#[test]
fn serial_leader_crashes_lose_nothing() {
    let mut cluster =
        ConsensusCluster::new(Topology::multinational(5), ClusterConfig::default(), 43);
    let mut submitted: Vec<CmdId> = Vec::new();
    let mut crashed: Vec<u32> = Vec::new();
    let mut now = 4u64;
    let mut uid = 0u64;

    // Three write waves; the leader is killed mid-stream in the first two.
    for round in 0..3 {
        cluster.run_until(secs(now));
        let leader = cluster
            .current_leader()
            .unwrap_or_else(|| panic!("round {round}: no stable leader at t={now}s"));
        assert!(!crashed.contains(&leader.0), "a crashed node cannot lead");
        // Load through a survivor that is not the about-to-die leader.
        let origin = (0..5u32)
            .find(|i| *i != leader.0 && !crashed.contains(i))
            .expect("a live non-leader exists");
        for i in 0..5u64 {
            submitted.push(cluster.submit_write_at(
                secs(now) + ms(300 * i),
                origin,
                SubscriberUid(uid),
                None,
            ));
            uid += 1;
        }
        if round < 2 {
            cluster.schedule_crash(secs(now) + ms(700), leader.0);
            crashed.push(leader.0);
        }
        now += 15;
    }

    let report = cluster.run_until(secs(now + 20));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(
        report.committed(),
        submitted.len(),
        "every command must survive two failovers"
    );

    // Third assassination: the surviving trio drops to a 2-node rump.
    cluster.run_until(secs(now + 21));
    let leader = cluster.current_leader().expect("trio has a leader");
    cluster.schedule_crash(secs(now + 22), leader.0);
    let origin = (0..5u32)
        .find(|i| *i != leader.0 && !crashed.contains(i))
        .expect("a live non-leader exists");
    cluster.submit_write_at(secs(now + 25), origin, SubscriberUid(999), None);
    let frozen = cluster.run_until(secs(now + 40));
    assert_eq!(frozen.uncommitted(), 1, "2-of-5 rump must not commit");
    assert!(frozen.violations.is_empty());
}

/// A 7-node ensemble serves through 3 crashes, freezes at 4 down, resumes
/// when one node returns — the textbook 2f+1 availability boundary,
/// realized on the simulated backbone.
#[test]
fn seven_nodes_tolerate_exactly_three_failures() {
    let mut cluster =
        ConsensusCluster::new(Topology::multinational(7), ClusterConfig::default(), 47);
    cluster.run_until(secs(4));
    let leader = cluster.current_leader().expect("leader");
    // Crash three non-leader nodes.
    let victims: Vec<u32> = (0..7u32).filter(|i| *i != leader.0).take(3).collect();
    for (k, v) in victims.iter().enumerate() {
        cluster.schedule_crash(secs(5) + ms(200 * k as u64), *v);
    }
    let origin = (0..7u32)
        .find(|i| *i != leader.0 && !victims.contains(i))
        .unwrap();
    for i in 0..10u64 {
        cluster.submit_write_at(secs(8) + ms(300 * i), origin, SubscriberUid(i), None);
    }
    let report = cluster.run_until(secs(20));
    assert_eq!(report.committed(), 10, "4 of 7 is a working majority");
    assert!(report.violations.is_empty());

    // Fourth crash (4 of 7 down, 3 live): freeze.
    let fourth = (0..7u32)
        .find(|i| *i != leader.0 && !victims.contains(i) && *i != origin)
        .unwrap();
    cluster.schedule_crash(secs(21), fourth);
    for i in 10..15u64 {
        cluster.submit_write_at(secs(25) + ms(300 * i), origin, SubscriberUid(i), None);
    }
    let frozen = cluster.run_until(secs(40));
    assert_eq!(frozen.committed(), 10, "3 of 7 must not commit");

    // One victim returns: service resumes and the queue drains.
    cluster.schedule_restart(secs(41), victims[0]);
    let resumed = cluster.run_until(secs(80));
    assert_eq!(resumed.committed(), 15);
    assert!(resumed.violations.is_empty());
}

/// Partition flapping: the same island cut and healed five times in quick
/// succession while writes flow from both sides. Safety must hold through
/// every flap and all majority-side writes commit.
#[test]
fn partition_flapping_preserves_safety() {
    let mut cluster =
        ConsensusCluster::new(Topology::multinational(3), ClusterConfig::default(), 53);
    cluster.run_until(secs(3));
    for flap in 0..5u64 {
        let start = secs(5 + 6 * flap);
        cluster.schedule_partition(start, SimDuration::from_secs(3), [2u32]);
    }
    let mut majority_ids = Vec::new();
    for i in 0..60u64 {
        let at = secs(5) + ms(500 * i);
        majority_ids.push(cluster.submit_write_at(at, 0, SubscriberUid(i), None));
        cluster.submit_write_at(at + ms(250), 2, SubscriberUid(1000 + i), None);
    }
    let report = cluster.run_until(secs(90));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    // Every write eventually commits (island writes drain in heal windows).
    assert_eq!(report.committed(), report.fates.len());
    // And the logs converge to a single watermark.
    let max = report.final_committed.iter().max().unwrap();
    for wm in &report.final_committed {
        assert_eq!(wm, max, "watermarks diverged: {:?}", report.final_committed);
    }
}
