//! Property tests: the wire codec must round-trip every representable
//! request/response exactly.

use proptest::prelude::*;

use udr_ldap::{decode_request, decode_response, encode_request, encode_response};
use udr_ldap::{Dn, LdapOp, LdapRequest, LdapResponse, ResultCode};
use udr_model::attrs::{AttrId, AttrMod, AttrValue, Entry};
use udr_model::identity::{Identity, Impi, Impu, Imsi, Msisdn};

fn identity_strategy() -> impl Strategy<Value = Identity> {
    prop_oneof![
        (0u64..=99_999_999).prop_map(|n| Imsi::new(format!("21401{n:08}")).unwrap().into()),
        (0u64..=999_999).prop_map(|n| Msisdn::new(format!("34600{n:06}")).unwrap().into()),
        "[a-z]{1,12}".prop_map(|s| Impu::new(format!("sip:{s}@ims.example.com"))
            .unwrap()
            .into()),
        "[a-z]{1,12}".prop_map(|s| Impi::new(format!("{s}@ims.example.com")).unwrap().into()),
    ]
}

fn attr_id_strategy() -> impl Strategy<Value = AttrId> {
    prop::sample::select(AttrId::ALL.to_vec())
}

fn attr_value_strategy() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        "[ -~]{0,40}".prop_map(AttrValue::Str),
        any::<u64>().prop_map(AttrValue::U64),
        any::<bool>().prop_map(AttrValue::Bool),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(AttrValue::Bytes),
        prop::collection::vec("[ -~]{0,16}".prop_map(String::from), 0..6)
            .prop_map(AttrValue::StrList),
    ]
}

fn entry_strategy() -> impl Strategy<Value = Entry> {
    prop::collection::vec((attr_id_strategy(), attr_value_strategy()), 0..12)
        .prop_map(|pairs| pairs.into_iter().collect())
}

fn op_strategy() -> impl Strategy<Value = LdapOp> {
    prop_oneof![
        (
            identity_strategy(),
            prop::collection::vec(any::<u8>(), 0..32)
        )
            .prop_map(|(id, password)| LdapOp::Bind {
                dn: Dn::for_identity(id),
                password
            }),
        (
            identity_strategy(),
            attr_id_strategy(),
            attr_value_strategy()
        )
            .prop_map(|(id, attr, value)| LdapOp::Compare {
                dn: Dn::for_identity(id),
                attr,
                value
            }),
        (
            identity_strategy(),
            prop::collection::vec(attr_id_strategy(), 0..6)
        )
            .prop_map(|(id, attrs)| LdapOp::Search {
                base: Dn::for_identity(id),
                attrs
            }),
        (identity_strategy(), entry_strategy()).prop_map(|(id, entry)| LdapOp::Add {
            dn: Dn::for_identity(id),
            entry
        }),
        (
            identity_strategy(),
            prop::collection::vec(
                prop_oneof![
                    (attr_id_strategy(), attr_value_strategy())
                        .prop_map(|(a, v)| AttrMod::Set(a, v)),
                    attr_id_strategy().prop_map(AttrMod::Delete),
                ],
                0..8
            )
        )
            .prop_map(|(id, mods)| LdapOp::Modify {
                dn: Dn::for_identity(id),
                mods
            }),
        identity_strategy().prop_map(|id| LdapOp::Delete {
            dn: Dn::for_identity(id)
        }),
        (
            identity_strategy(),
            filter_strategy(),
            prop::collection::vec(attr_id_strategy(), 0..6)
        )
            .prop_map(|(id, filter, attrs)| LdapOp::SearchFilter {
                base: Dn::for_identity(id),
                filter,
                attrs
            }),
    ]
}

proptest! {
    #[test]
    fn request_round_trip(message_id in any::<u32>(), op in op_strategy()) {
        let req = LdapRequest { message_id, op };
        let bytes = encode_request(&req);
        let decoded = decode_request(&bytes).unwrap();
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn response_round_trip(
        message_id in any::<u32>(),
        code_idx in 0usize..7,
        entry in prop::option::of(entry_strategy()),
    ) {
        let codes = [
            ResultCode::Success,
            ResultCode::NoSuchObject,
            ResultCode::Busy,
            ResultCode::Unavailable,
            ResultCode::UnwillingToPerform,
            ResultCode::EntryAlreadyExists,
            ResultCode::Other,
        ];
        let resp = LdapResponse { message_id, code: codes[code_idx], entry };
        let bytes = encode_response(&resp);
        let decoded = decode_response(&bytes).unwrap();
        prop_assert_eq!(decoded, resp);
    }

    /// The decoder never panics on arbitrary bytes — it returns errors.
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }
}

// ---------------------------------------------------------------------------
// Filter properties
// ---------------------------------------------------------------------------

use udr_ldap::Filter;

/// Random filter ASTs, depth-bounded.
fn filter_strategy() -> impl Strategy<Value = Filter> {
    let fragment = "[a-zA-Z0-9 :@.+-]{1,12}".prop_map(String::from);
    let leaf = prop_oneof![
        attr_id_strategy().prop_map(Filter::Present),
        (attr_id_strategy(), "[ -~]{0,20}".prop_map(String::from))
            .prop_map(|(a, v)| Filter::Equality(a, v)),
        (attr_id_strategy(), any::<u64>()).prop_map(|(a, n)| Filter::GreaterOrEqual(a, n)),
        (attr_id_strategy(), any::<u64>()).prop_map(|(a, n)| Filter::LessOrEqual(a, n)),
        (
            attr_id_strategy(),
            prop::option::of(fragment.clone()),
            prop::collection::vec(fragment.clone(), 0..3),
            prop::option::of(fragment),
        )
            .prop_filter_map(
                "degenerate substring is a presence filter",
                |(attr, initial, any, fin)| {
                    if initial.is_none() && any.is_empty() && fin.is_none() {
                        None
                    } else {
                        Some(Filter::Substring {
                            attr,
                            initial,
                            any,
                            fin,
                        })
                    }
                }
            ),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Filter::And),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Filter::Or),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

proptest! {
    /// Every filter prints to a string that parses back to the same AST.
    #[test]
    fn filter_string_form_round_trips(f in filter_strategy()) {
        let s = f.to_string();
        let back: Filter = s.parse().unwrap_or_else(|e| panic!("{s:?}: {e}"));
        prop_assert_eq!(back, f);
    }

    /// Evaluation is total: any filter against any entry terminates with a
    /// boolean and double negation is the identity.
    #[test]
    fn filter_evaluation_is_total_and_involutive(
        f in filter_strategy(),
        attrs in prop::collection::vec((attr_id_strategy(), attr_value_strategy()), 0..8),
    ) {
        let entry: Entry = attrs.into_iter().collect();
        let direct = f.matches(&entry);
        let double_not = Filter::Not(Box::new(Filter::Not(Box::new(f)))).matches(&entry);
        prop_assert_eq!(direct, double_not);
    }
}
