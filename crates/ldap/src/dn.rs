//! Distinguished names for the UDR's LDAP view (§1: UDC "is mandated to
//! support an LDAP-based interface to read/write subscriber data").
//!
//! The directory layout follows common HLR/HSS practice: one subscriber
//! entry per identity index, all under `ou=subscribers,dc=udr`:
//!
//! ```text
//! imsi=214011234567890,ou=subscribers,dc=udr
//! msisdn=34600123456,ou=subscribers,dc=udr
//! impu=sip:alice@ims.example.com,ou=subscribers,dc=udr
//! ```

use std::fmt;

use udr_model::error::{UdrError, UdrResult};
use udr_model::identity::{Identity, IdentityKind, Impi, Impu, Imsi, Msisdn};

/// The fixed suffix all subscriber entries share.
pub const SUBSCRIBER_BASE: &str = "ou=subscribers,dc=udr";

/// A (restricted) distinguished name: a leading identity RDN plus the fixed
/// subscriber base.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dn {
    identity: Identity,
}

impl Dn {
    /// The DN of the entry keyed by `identity`.
    pub fn for_identity(identity: Identity) -> Self {
        Dn { identity }
    }

    /// The identity in the leading RDN.
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    /// Parse a DN of the restricted shape `<kind>=<value>,ou=subscribers,dc=udr`.
    pub fn parse(s: &str) -> UdrResult<Self> {
        let err = || UdrError::Codec(format!("malformed DN {s:?}"));
        let (rdn, base) = s.split_once(',').ok_or_else(err)?;
        if base != SUBSCRIBER_BASE {
            return Err(UdrError::Codec(format!(
                "DN base {base:?} is not {SUBSCRIBER_BASE:?}"
            )));
        }
        let (attr, value) = rdn.split_once('=').ok_or_else(err)?;
        let identity = match attr.to_ascii_lowercase().as_str() {
            "imsi" => Identity::Imsi(Imsi::new(value)?),
            "msisdn" => Identity::Msisdn(Msisdn::new(value)?),
            // IMPU values contain '=' never, but do contain ':'.
            "impu" => Identity::Impu(Impu::new(value)?),
            "impi" => Identity::Impi(Impi::new(value)?),
            _ => return Err(err()),
        };
        Ok(Dn { identity })
    }

    /// The RDN attribute name for an identity kind.
    pub fn rdn_attr(kind: IdentityKind) -> &'static str {
        match kind {
            IdentityKind::Imsi => "imsi",
            IdentityKind::Msisdn => "msisdn",
            IdentityKind::Impu => "impu",
            IdentityKind::Impi => "impi",
        }
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}={},{}",
            Dn::rdn_attr(self.identity.kind()),
            self.identity.as_str(),
            SUBSCRIBER_BASE
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_and_parse_round_trip() {
        let cases = [
            Identity::Imsi(Imsi::new("214011234567890").unwrap()),
            Identity::Msisdn(Msisdn::new("34600123456").unwrap()),
            Identity::Impu(Impu::new("sip:alice@ims.example.com").unwrap()),
            Identity::Impi(Impi::new("alice@ims.example.com").unwrap()),
        ];
        for id in cases {
            let dn = Dn::for_identity(id);
            let parsed = Dn::parse(&dn.to_string()).unwrap();
            assert_eq!(parsed.identity(), &id);
        }
    }

    #[test]
    fn specific_formats() {
        let dn = Dn::for_identity(Identity::Imsi(Imsi::new("214011234567890").unwrap()));
        assert_eq!(dn.to_string(), "imsi=214011234567890,ou=subscribers,dc=udr");
    }

    #[test]
    fn rejects_wrong_base() {
        assert!(Dn::parse("imsi=214011234567890,ou=other,dc=udr").is_err());
    }

    #[test]
    fn rejects_unknown_rdn_attr() {
        assert!(Dn::parse("cn=alice,ou=subscribers,dc=udr").is_err());
    }

    #[test]
    fn rejects_invalid_identity_value() {
        assert!(Dn::parse("imsi=abc,ou=subscribers,dc=udr").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Dn::parse("").is_err());
        assert!(Dn::parse("nocomma").is_err());
        assert!(Dn::parse("imsi214,ou=subscribers,dc=udr").is_err());
    }

    #[test]
    fn parse_accepts_uppercase_attr() {
        assert!(Dn::parse("IMSI=214011234567890,ou=subscribers,dc=udr").is_ok());
    }
}
