//! The LDAP operation subset the UDR's clients use (RFC 2251 §4, reduced to
//! what HLR-FE/HSS-FE and the PS actually issue: indexed single-entry
//! search, add, modify, delete).

use udr_model::attrs::{AttrId, AttrMod, AttrValue, Entry};

use crate::dn::Dn;
use crate::filter::Filter;

/// Result codes (RFC 2251 §4.1.10 subset, plus `Busy`/`Unavailable` used
/// for overload and partition failures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ResultCode {
    /// The operation completed.
    Success = 0,
    /// The entry does not exist.
    NoSuchObject = 32,
    /// The server is overloaded.
    Busy = 51,
    /// The backing store (or its master copy) is unreachable.
    Unavailable = 52,
    /// The server is unwilling (e.g. write addressed to a slave).
    UnwillingToPerform = 53,
    /// Compare matched (RFC 2251 compareTrue).
    CompareTrue = 6,
    /// Compare did not match (RFC 2251 compareFalse).
    CompareFalse = 5,
    /// Add of an existing entry.
    EntryAlreadyExists = 68,
    /// Anything else.
    Other = 80,
}

impl ResultCode {
    /// Inverse of the numeric tag.
    pub fn from_u8(v: u8) -> Option<ResultCode> {
        Some(match v {
            0 => ResultCode::Success,
            5 => ResultCode::CompareFalse,
            6 => ResultCode::CompareTrue,
            32 => ResultCode::NoSuchObject,
            51 => ResultCode::Busy,
            52 => ResultCode::Unavailable,
            53 => ResultCode::UnwillingToPerform,
            68 => ResultCode::EntryAlreadyExists,
            80 => ResultCode::Other,
            _ => return None,
        })
    }
}

/// A request operation.
#[derive(Debug, Clone, PartialEq)]
pub enum LdapOp {
    /// Simple bind: authenticate a client against the directory (FEs and
    /// the PS bind once per connection; RFC 2251 §4.2).
    Bind {
        /// The authenticating entity's DN.
        dn: Dn,
        /// Simple-authentication credentials.
        password: Vec<u8>,
    },
    /// Indexed single-entry search: fetch (a projection of) the entry named
    /// by the DN. Empty `attrs` means "all attributes".
    Search {
        /// The entry to fetch.
        base: Dn,
        /// Attribute projection (empty = all).
        attrs: Vec<AttrId>,
    },
    /// Filtered search (RFC 2251 §4.5 with an RFC 4515 filter): fetch the
    /// entry named by the DN only if it satisfies the filter. This is the
    /// operation the §1/§2.2 business-intelligence clients issue; the
    /// indexed [`LdapOp::Search`] remains the FE fast path.
    SearchFilter {
        /// The entry (or scan anchor) addressed.
        base: Dn,
        /// The RFC 4515 filter the entry must satisfy.
        filter: Filter,
        /// Attribute projection (empty = all).
        attrs: Vec<AttrId>,
    },
    /// Compare one attribute of the entry against an asserted value
    /// (RFC 2251 §4.10 — e.g. barring-flag checks without fetching).
    Compare {
        /// The entry to test.
        dn: Dn,
        /// The attribute asserted.
        attr: AttrId,
        /// The asserted value.
        value: AttrValue,
    },
    /// Create the entry named by the DN.
    Add {
        /// Where to create it.
        dn: Dn,
        /// Initial attributes.
        entry: Entry,
    },
    /// Apply attribute modifications to the entry named by the DN.
    Modify {
        /// The entry to change.
        dn: Dn,
        /// Ordered modifications.
        mods: Vec<AttrMod>,
    },
    /// Remove the entry named by the DN.
    Delete {
        /// The entry to remove.
        dn: Dn,
    },
}

impl LdapOp {
    /// Whether the operation writes subscriber data.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            LdapOp::Add { .. } | LdapOp::Modify { .. } | LdapOp::Delete { .. }
        )
    }

    /// The DN the operation addresses.
    pub fn dn(&self) -> &Dn {
        match self {
            LdapOp::Bind { dn, .. } => dn,
            LdapOp::Search { base, .. } => base,
            LdapOp::SearchFilter { base, .. } => base,
            LdapOp::Compare { dn, .. } => dn,
            LdapOp::Add { dn, .. } => dn,
            LdapOp::Modify { dn, .. } => dn,
            LdapOp::Delete { dn } => dn,
        }
    }
}

/// A full request message.
#[derive(Debug, Clone, PartialEq)]
pub struct LdapRequest {
    /// Client-assigned message id (echoed in the response).
    pub message_id: u32,
    /// The operation.
    pub op: LdapOp,
}

/// A response message.
#[derive(Debug, Clone, PartialEq)]
pub struct LdapResponse {
    /// Echoed message id.
    pub message_id: u32,
    /// Outcome code.
    pub code: ResultCode,
    /// For successful searches, the (projected) entry.
    pub entry: Option<Entry>,
}

impl LdapResponse {
    /// A success response without payload.
    pub fn success(message_id: u32) -> Self {
        LdapResponse {
            message_id,
            code: ResultCode::Success,
            entry: None,
        }
    }

    /// A success response carrying an entry.
    pub fn with_entry(message_id: u32, entry: Entry) -> Self {
        LdapResponse {
            message_id,
            code: ResultCode::Success,
            entry: Some(entry),
        }
    }

    /// An error response.
    pub fn error(message_id: u32, code: ResultCode) -> Self {
        LdapResponse {
            message_id,
            code,
            entry: None,
        }
    }

    /// Whether the response reports success.
    pub fn is_success(&self) -> bool {
        self.code == ResultCode::Success
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::identity::{Identity, Imsi};

    fn dn() -> Dn {
        Dn::for_identity(Identity::Imsi(Imsi::new("214011234567890").unwrap()))
    }

    #[test]
    fn write_classification() {
        assert!(!LdapOp::Search {
            base: dn(),
            attrs: vec![]
        }
        .is_write());
        assert!(!LdapOp::SearchFilter {
            base: dn(),
            filter: Filter::Present(AttrId::CallBarring),
            attrs: vec![]
        }
        .is_write());
        assert!(!LdapOp::Bind {
            dn: dn(),
            password: vec![1, 2]
        }
        .is_write());
        assert!(!LdapOp::Compare {
            dn: dn(),
            attr: AttrId::CallBarring,
            value: AttrValue::Bool(true)
        }
        .is_write());
        assert!(LdapOp::Add {
            dn: dn(),
            entry: Entry::new()
        }
        .is_write());
        assert!(LdapOp::Modify {
            dn: dn(),
            mods: vec![]
        }
        .is_write());
        assert!(LdapOp::Delete { dn: dn() }.is_write());
    }

    #[test]
    fn result_code_round_trip() {
        for code in [
            ResultCode::Success,
            ResultCode::CompareTrue,
            ResultCode::CompareFalse,
            ResultCode::NoSuchObject,
            ResultCode::Busy,
            ResultCode::Unavailable,
            ResultCode::UnwillingToPerform,
            ResultCode::EntryAlreadyExists,
            ResultCode::Other,
        ] {
            assert_eq!(ResultCode::from_u8(code as u8), Some(code));
        }
        assert_eq!(ResultCode::from_u8(99), None);
    }

    #[test]
    fn response_constructors() {
        assert!(LdapResponse::success(1).is_success());
        assert!(!LdapResponse::error(1, ResultCode::Busy).is_success());
        let r = LdapResponse::with_entry(7, Entry::new());
        assert_eq!(r.message_id, 7);
        assert!(r.entry.is_some());
    }

    #[test]
    fn op_dn_accessor() {
        let op = LdapOp::Delete { dn: dn() };
        assert_eq!(op.dn(), &dn());
    }
}
