//! Framed request batches: many same-station operations in one message.
//!
//! §3.3.3's Provisioning System streams bulk work over a single
//! connection; per-operation message framing (TLV header parse, dispatch,
//! response framing) is pure overhead once operations share a
//! destination. A [`FramedBatch`] coalesces consecutive operations bound
//! for the same LDAP server into **one** wire frame carrying per-op
//! requests and returning per-op results, and the server's CPU model
//! charges the framing share once per frame instead of once per op.
//!
//! Two invariants keep batching semantically invisible (the e12
//! batch-glitch experiment asserts both end to end):
//!
//! * **Per-op admission.** Every operation is admitted individually, at
//!   its own arrival instant, under the same queue-bound rule as the
//!   unbatched path — a frame never turns k admission decisions into
//!   one.
//! * **Per-op results.** A frame's response carries one result per
//!   operation, in order; a failed op fails alone.
//!
//! What batching *does* change is cost: ops after the first on a station
//! pay `service_time(op) − frame_share()`, so access-stage latency and
//! station occupancy drop without any semantic drift.

use bytes::{BufMut, Bytes, BytesMut};

use udr_model::error::{UdrError, UdrResult};
use udr_model::ids::LdapServerId;
use udr_model::time::SimDuration;

use crate::codec::{decode_request, decode_response, encode_request, encode_response};
use crate::proto::{LdapRequest, LdapResponse};

/// The fraction of the base service time spent on per-message framing:
/// `frame_share = base / FRAME_SHARE_DIVISOR`. A quarter of the 1 µs
/// nominal op matches the §3.5 framing/dispatch share of protocol work.
pub const FRAME_SHARE_DIVISOR: u64 = 4;

/// The per-message framing cost a batch amortises, for a station whose
/// base service time is `base`.
pub fn frame_share(base: SimDuration) -> SimDuration {
    base / FRAME_SHARE_DIVISOR
}

/// A batch of requests framed as one message for one station.
#[derive(Debug, Clone, PartialEq)]
pub struct FramedBatch {
    /// The requests, in submission order.
    pub requests: Vec<LdapRequest>,
}

/// Per-op results of one framed batch, in request order.
#[derive(Debug, Clone, PartialEq)]
pub struct FramedResults {
    /// One response per request, in order.
    pub responses: Vec<LdapResponse>,
}

/// Frame tag for a batch envelope (private-use application class).
const FRAME_TAG: u8 = 0x7F;

fn put_frame(buf: &mut BytesMut, body: &[u8]) {
    buf.put_u8(FRAME_TAG);
    if body.len() <= 0xFFFF {
        buf.put_u8(0x82);
        buf.put_u16(body.len() as u16);
    } else {
        buf.put_u8(0x84);
        buf.put_u32(body.len() as u32);
    }
    buf.put_slice(body);
}

fn take_frame(bytes: &[u8]) -> UdrResult<(&[u8], &[u8])> {
    let err = || UdrError::Codec("truncated batch frame".into());
    let (&tag, rest) = bytes.split_first().ok_or_else(err)?;
    if tag != FRAME_TAG {
        return Err(UdrError::Codec(format!("bad batch frame tag {tag:#x}")));
    }
    let (&len_form, rest) = rest.split_first().ok_or_else(err)?;
    let (len, rest) = match len_form {
        0x82 => {
            if rest.len() < 2 {
                return Err(err());
            }
            (u16::from_be_bytes([rest[0], rest[1]]) as usize, &rest[2..])
        }
        0x84 => {
            if rest.len() < 4 {
                return Err(err());
            }
            (
                u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize,
                &rest[4..],
            )
        }
        _ => return Err(UdrError::Codec("bad batch frame length form".into())),
    };
    if rest.len() < len {
        return Err(err());
    }
    Ok((&rest[..len], &rest[len..]))
}

impl FramedBatch {
    /// Frame `requests` as one batch.
    pub fn new(requests: Vec<LdapRequest>) -> Self {
        FramedBatch { requests }
    }

    /// Number of operations in the frame.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the frame carries no operations.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Encode the whole batch as one wire message: a batch envelope
    /// holding each request as its own inner frame.
    pub fn encode(&self) -> Bytes {
        let mut inner = BytesMut::new();
        for req in &self.requests {
            put_frame(&mut inner, &encode_request(req));
        }
        let mut buf = BytesMut::new();
        put_frame(&mut buf, &inner);
        buf.freeze()
    }

    /// Decode a wire message produced by [`FramedBatch::encode`].
    pub fn decode(bytes: &[u8]) -> UdrResult<Self> {
        let (mut body, trailer) = take_frame(bytes)?;
        if !trailer.is_empty() {
            return Err(UdrError::Codec("trailing bytes after batch".into()));
        }
        let mut requests = Vec::new();
        while !body.is_empty() {
            let (one, rest) = take_frame(body)?;
            requests.push(decode_request(one)?);
            body = rest;
        }
        Ok(FramedBatch { requests })
    }
}

impl FramedResults {
    /// Encode the per-op results as one response message.
    pub fn encode(&self) -> Bytes {
        let mut inner = BytesMut::new();
        for resp in &self.responses {
            put_frame(&mut inner, &encode_response(resp));
        }
        let mut buf = BytesMut::new();
        put_frame(&mut buf, &inner);
        buf.freeze()
    }

    /// Decode a wire message produced by [`FramedResults::encode`].
    pub fn decode(bytes: &[u8]) -> UdrResult<Self> {
        let (mut body, trailer) = take_frame(bytes)?;
        if !trailer.is_empty() {
            return Err(UdrError::Codec("trailing bytes after results".into()));
        }
        let mut responses = Vec::new();
        while !body.is_empty() {
            let (one, rest) = take_frame(body)?;
            responses.push(decode_response(one)?);
            body = rest;
        }
        Ok(FramedResults { responses })
    }
}

/// Client-side cursor over the stations an in-flight frame already
/// covers: the first op bound for a station opens that station's frame
/// (full service cost); later ops in the same batch that land on the
/// same station continue it (framing share amortised).
#[derive(Debug, Clone, Default)]
pub struct FrameCursor {
    open: Vec<LdapServerId>,
}

impl FrameCursor {
    /// A cursor with no open frames (start of a batch).
    pub fn new() -> Self {
        FrameCursor::default()
    }

    /// Whether `server` already has an open frame — an op routed there
    /// now would *continue* it (framing share amortised).
    pub fn contains(&self, server: LdapServerId) -> bool {
        self.open.contains(&server)
    }

    /// Record that an op was actually served by `server`, opening its
    /// frame if it had none. Called only on successful admission — a
    /// rejected op never opens a frame.
    pub fn record(&mut self, server: LdapServerId) {
        if !self.open.contains(&server) {
            self.open.push(server);
        }
    }

    /// Record that the batch routed an op to `server`; returns whether
    /// that op *continues* an already-open frame on the station (true ⇒
    /// the framing share is amortised). Combined
    /// [`contains`](Self::contains) + [`record`](Self::record) for
    /// callers that admit unconditionally.
    pub fn continues(&mut self, server: LdapServerId) -> bool {
        let cont = self.contains(server);
        self.record(server);
        cont
    }

    /// Stations with an open frame.
    pub fn open_frames(&self) -> usize {
        self.open.len()
    }

    /// Close every open frame (end of the batch window).
    pub fn reset(&mut self) {
        self.open.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dn::Dn;
    use crate::proto::LdapOp;
    use udr_model::attrs::Entry;
    use udr_model::identity::{Identity, Imsi};

    fn dn(n: u64) -> Dn {
        Dn::for_identity(Identity::Imsi(
            Imsi::new(format!("21401{:010}", n)).unwrap(),
        ))
    }

    #[test]
    fn batch_roundtrips_with_per_op_results() {
        let batch = FramedBatch::new(vec![
            LdapRequest {
                message_id: 1,
                op: LdapOp::Search {
                    base: dn(1),
                    attrs: vec![],
                },
            },
            LdapRequest {
                message_id: 2,
                op: LdapOp::Add {
                    dn: dn(2),
                    entry: Entry::new(),
                },
            },
        ]);
        let decoded = FramedBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded, batch);

        let results = FramedResults {
            responses: vec![LdapResponse::success(1), LdapResponse::success(2)],
        };
        assert_eq!(FramedResults::decode(&results.encode()).unwrap(), results);
    }

    #[test]
    fn batch_encoding_beats_per_op_overhead() {
        // One frame of k requests must be smaller than k framed singles:
        // that byte saving is what the frame_share CPU discount models.
        let reqs: Vec<LdapRequest> = (0..16)
            .map(|i| LdapRequest {
                message_id: i,
                op: LdapOp::Search {
                    base: dn(u64::from(i)),
                    attrs: vec![],
                },
            })
            .collect();
        let singles: usize = reqs
            .iter()
            .map(|r| FramedBatch::new(vec![r.clone()]).encode().len())
            .sum();
        let one = FramedBatch::new(reqs).encode().len();
        assert!(one < singles, "batch {one} >= singles {singles}");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(FramedBatch::decode(&[]).is_err());
        assert!(FramedBatch::decode(&[0x30, 0x00]).is_err());
        let good = FramedBatch::new(vec![]).encode();
        let mut bad = good.to_vec();
        bad.push(0xFF);
        assert!(FramedBatch::decode(&bad).is_err());
    }

    #[test]
    fn cursor_opens_then_continues_per_station() {
        let mut cur = FrameCursor::new();
        assert!(!cur.continues(LdapServerId(0)));
        assert!(!cur.continues(LdapServerId(1)));
        assert!(cur.continues(LdapServerId(0)));
        assert!(cur.continues(LdapServerId(1)));
        assert_eq!(cur.open_frames(), 2);
        cur.reset();
        assert!(!cur.continues(LdapServerId(0)));
    }
}
