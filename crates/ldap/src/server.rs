//! Stateless LDAP server processes and their CPU model.
//!
//! §3.4.1: "the UDR NF runs a distributed, state-less LDAP server providing
//! the northbound interface… LDAP server processes are processor-hungry".
//! §3.5 sizes one server at 10⁶ indexed read/write queries per second on a
//! state-of-the-art blade; we model that as a processing station whose
//! service time is 1 µs/op, with admission control that surfaces overload
//! as `Busy` (the PS back-log scenario of §3.3).

use udr_model::ids::{ClusterId, LdapServerId, SiteId};
use udr_model::time::{SimDuration, SimTime};
use udr_sim::service::Station;

use crate::proto::LdapOp;

/// Throughput of one LDAP server process on the paper's reference blade.
pub const PAPER_OPS_PER_SERVER_PER_SEC: f64 = 1_000_000.0;

/// One stateless LDAP server process.
#[derive(Debug)]
pub struct LdapServer {
    id: LdapServerId,
    site: SiteId,
    cluster: ClusterId,
    station: Station,
    /// Operations served, by class.
    pub reads: u64,
    /// Write operations served.
    pub writes: u64,
}

impl LdapServer {
    /// A server with the paper's nominal 1M ops/s capacity and a 5 ms
    /// admission bound.
    pub fn new(id: LdapServerId, site: SiteId, cluster: ClusterId) -> Self {
        Self::with_rate(id, site, cluster, PAPER_OPS_PER_SERVER_PER_SEC)
    }

    /// A server with an explicit per-second rate (capacity experiments
    /// de-rate it to laptop scale).
    pub fn with_rate(id: LdapServerId, site: SiteId, cluster: ClusterId, ops_per_sec: f64) -> Self {
        LdapServer {
            id,
            site,
            cluster,
            station: Station::with_rate(1, ops_per_sec, SimDuration::from_millis(5)),
            reads: 0,
            writes: 0,
        }
    }

    /// Server identity.
    pub fn id(&self) -> LdapServerId {
        self.id
    }

    /// Hosting site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Hosting cluster.
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// Service time for one operation. Writes cost ~1.5× a read (lock +
    /// log work on the engine side is accounted separately; this is the
    /// protocol/CPU share); filtered searches add one read-share per
    /// filter assertion (parse + evaluate).
    pub fn service_time(&self, op: &LdapOp) -> SimDuration {
        let base = self.station.service_time();
        match op {
            LdapOp::SearchFilter { filter, .. } => base * (1 + filter.assertion_count() as u64),
            _ if op.is_write() => base + base / 2,
            _ => base,
        }
    }

    /// The queueing delay an operation arriving at `now` would suffer
    /// before protocol processing starts — the overload signal the QoS
    /// admission controller sheds on.
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.station.backlog_delay(now)
    }

    /// Admit one operation at `now`; returns when protocol processing
    /// completes, or `None` on overload (`Busy`).
    pub fn admit(&mut self, op: &LdapOp, now: SimTime) -> Option<SimTime> {
        self.admit_framed(op, now, false)
    }

    /// The per-message framing share this server amortises when an op
    /// continues an open [`crate::batch::FramedBatch`] on its station.
    pub fn frame_share(&self) -> SimDuration {
        crate::batch::frame_share(self.station.service_time())
    }

    /// Admit one operation at `now` as part of a framed batch. When
    /// `continues` is true the op rides an already-open frame on this
    /// station and skips the per-message framing share of its service
    /// time; the admission rule (queue bound) and arrival instant are
    /// identical to [`LdapServer::admit`], so batching can never change
    /// *whether* an op is served — only how fast.
    pub fn admit_framed(&mut self, op: &LdapOp, now: SimTime, continues: bool) -> Option<SimTime> {
        let mut service = self.service_time(op);
        if continues {
            service -= self.frame_share().min(service);
        }
        match self.station.admit_with(now, service) {
            Ok(done) => {
                if op.is_write() {
                    self.writes += 1;
                } else {
                    self.reads += 1;
                }
                Some(done)
            }
            Err(_) => None,
        }
    }

    /// CPU utilisation over the elapsed horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.station.utilization(horizon)
    }

    /// Operations rejected for overload.
    pub fn rejected(&self) -> u64 {
        self.station.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::attrs::Entry;
    use udr_model::identity::{Identity, Imsi};

    use crate::dn::Dn;

    fn dn() -> Dn {
        Dn::for_identity(Identity::Imsi(Imsi::new("214011234567890").unwrap()))
    }

    fn search() -> LdapOp {
        LdapOp::Search {
            base: dn(),
            attrs: vec![],
        }
    }

    fn add() -> LdapOp {
        LdapOp::Add {
            dn: dn(),
            entry: Entry::new(),
        }
    }

    #[test]
    fn paper_rate_service_time_is_one_microsecond() {
        let s = LdapServer::new(LdapServerId(0), SiteId(0), ClusterId(0));
        assert_eq!(s.service_time(&search()), SimDuration::from_micros(1));
        assert!(s.service_time(&add()) > s.service_time(&search()));
    }

    #[test]
    fn filtered_search_costs_per_assertion() {
        use crate::filter::Filter;
        let s = LdapServer::new(LdapServerId(0), SiteId(0), ClusterId(0));
        let filter: Filter = "(&(callBarring=TRUE)(odbMask>=4))".parse().unwrap();
        let op = LdapOp::SearchFilter {
            base: dn(),
            filter,
            attrs: vec![],
        };
        assert_eq!(s.service_time(&op), SimDuration::from_micros(3));
    }

    #[test]
    fn admit_counts_classes() {
        let mut s = LdapServer::new(LdapServerId(0), SiteId(0), ClusterId(0));
        s.admit(&search(), SimTime::ZERO).unwrap();
        s.admit(&add(), SimTime::ZERO).unwrap();
        assert_eq!((s.reads, s.writes), (1, 1));
    }

    #[test]
    fn framed_continuation_saves_exactly_the_frame_share() {
        let mut per_op = LdapServer::new(LdapServerId(0), SiteId(0), ClusterId(0));
        let mut framed = LdapServer::new(LdapServerId(0), SiteId(0), ClusterId(0));
        // First op of a frame pays full cost — identical to per-op mode.
        let a = per_op.admit(&search(), SimTime::ZERO).unwrap();
        let b = framed
            .admit_framed(&search(), SimTime::ZERO, false)
            .unwrap();
        assert_eq!(a, b);
        // A continuation finishes exactly frame_share earlier.
        let a2 = per_op.admit(&search(), SimTime::ZERO).unwrap();
        let b2 = framed.admit_framed(&search(), SimTime::ZERO, true).unwrap();
        assert_eq!(a2 - b2, framed.frame_share());
        assert_eq!(framed.frame_share(), SimDuration::from_nanos(250));
        assert_eq!((framed.reads, framed.writes), (2, 0));
    }

    #[test]
    fn framed_admission_keeps_the_queue_bound() {
        // Continuations still queue and still reject past the 5 ms bound;
        // only the service time changes, never the admission rule.
        let mut s = LdapServer::with_rate(LdapServerId(0), SiteId(0), ClusterId(0), 1000.0);
        let mut accepted = 0;
        for i in 0..20 {
            if s.admit_framed(&search(), SimTime::ZERO, i > 0).is_some() {
                accepted += 1;
            }
        }
        // 1 full op (1 ms) + continuations at 0.75 ms under a 5 ms wait
        // bound: one more fits than the 6 of the per-op path.
        assert_eq!(accepted, 7);
        assert!(s.rejected() > 0);
    }

    #[test]
    fn sustained_overload_rejects() {
        // A 1000 ops/s server (1 ms/op, 5 ms queue bound) takes ≤ 6
        // simultaneous arrivals, then rejects.
        let mut s = LdapServer::with_rate(LdapServerId(0), SiteId(0), ClusterId(0), 1000.0);
        let mut accepted = 0;
        for _ in 0..20 {
            if s.admit(&search(), SimTime::ZERO).is_some() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 6);
        assert_eq!(s.rejected(), 14);
    }

    #[test]
    fn throughput_matches_rate() {
        // Feed a server arrivals exactly at its service rate: all admitted.
        let mut s = LdapServer::with_rate(LdapServerId(0), SiteId(0), ClusterId(0), 1000.0);
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            assert!(s.admit(&search(), t).is_some());
            t += SimDuration::from_millis(1);
        }
        assert_eq!(s.rejected(), 0);
        let u = s.utilization(t);
        assert!(u > 0.95, "utilization {u}");
    }
}
