//! # udr-ldap
//!
//! The UDR's northbound interface: the LDAP subset that HLR-FE/HSS-FE and
//! the Provisioning System issue against subscriber data (§1: UDC mandates
//! an LDAP-based interface; the data model itself is left open and realised
//! as attribute maps in `udr-model`).
//!
//! * [`dn`] — distinguished names, one entry per subscriber identity;
//! * [`proto`] — search/add/modify/delete requests and responses;
//! * [`filter`] — RFC 4515 search filters for the business-intelligence
//!   queries that motivate consolidation (§1, §2.2);
//! * [`codec`] — a BER-style TLV wire codec (encode/decode is part of the
//!   per-operation CPU cost in the capacity experiments);
//! * [`batch`] — framed request batches that coalesce same-station
//!   operations into one message with per-op results, amortising the
//!   per-message framing share of the service time;
//! * [`server`] — stateless, processor-hungry server processes with the
//!   paper's 10⁶ ops/s nominal rate and admission control;
//! * [`poa`] — the L4-balancer Point of Access with automatic backend
//!   detection and health-based routing.

#![warn(missing_docs)]

pub mod batch;
pub mod codec;
pub mod dn;
pub mod filter;
pub mod poa;
pub mod proto;
pub mod server;

pub use batch::{frame_share, FrameCursor, FramedBatch, FramedResults, FRAME_SHARE_DIVISOR};
pub use codec::{decode_request, decode_response, encode_request, encode_response};
pub use dn::{Dn, SUBSCRIBER_BASE};
pub use filter::{attr_by_name, attr_name, Filter, FilterParseError};
pub use poa::{BackendHealth, PointOfAccess};
pub use proto::{LdapOp, LdapRequest, LdapResponse, ResultCode};
pub use server::{LdapServer, PAPER_OPS_PER_SERVER_PER_SEC};
