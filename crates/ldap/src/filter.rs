//! LDAP search filters (RFC 2254/4515 subset) over subscriber entries.
//!
//! The paper's second motivation for UDC (§1) is that with silo'd HLR/HSS
//! nodes "performing business intelligence and operative research over
//! subscriber data becomes a formidable task, since there's no standardized
//! way of fetching subscriber data from the silos" — and §2.2 notes that
//! "data mining over the subscriber data stored in the UDR is propelling
//! service providers to move to a DLA telecom network." The standardized
//! way is an LDAP search filter: this module implements the filter grammar
//! ANDs/ORs/NOTs of equality, presence, ordering and substring assertions —
//! parsed from and printed in the RFC 4515 string form, and evaluated
//! against [`Entry`] attribute maps.
//!
//! Matching-rule choices (the subset the subscriber schema needs):
//!
//! * string attributes match case-insensitively (`caseIgnoreMatch`);
//! * multi-valued attributes (IMPU lists, teleservices) match if *any*
//!   value matches;
//! * assertion values are strings, coerced per the attribute value's
//!   actual type — integers numerically, booleans as `TRUE`/`FALSE`,
//!   octet strings as lowercase hex;
//! * `>=`/`<=` apply numerically and never match non-numeric values.
//!
//! ```
//! use udr_ldap::filter::Filter;
//! use udr_model::attrs::{AttrId, Entry};
//!
//! let barred_roamers: Filter = "(&(callBarring=TRUE)(!(vlrAddress=*)))".parse().unwrap();
//! let mut e = Entry::new();
//! e.set(AttrId::CallBarring, true);
//! assert!(barred_roamers.matches(&e));
//! ```

use std::fmt;
use std::str::FromStr;

use udr_model::attrs::{AttrId, AttrValue, Entry};

/// All schema attributes with their LDAP short names (lowerCamelCase of the
/// Rust variant, the usual directory convention).
const ATTR_NAMES: [(AttrId, &str); 22] = [
    (AttrId::Imsi, "imsi"),
    (AttrId::Msisdn, "msisdn"),
    (AttrId::ImpuList, "impuList"),
    (AttrId::Impi, "impi"),
    (AttrId::AuthKi, "authKi"),
    (AttrId::AuthAmf, "authAmf"),
    (AttrId::AuthSqn, "authSqn"),
    (AttrId::SubscriberStatus, "subscriberStatus"),
    (AttrId::OdbMask, "odbMask"),
    (AttrId::CallBarring, "callBarring"),
    (AttrId::CallForwarding, "callForwarding"),
    (AttrId::Teleservices, "teleservices"),
    (AttrId::ApnProfiles, "apnProfiles"),
    (AttrId::CamelCsi, "camelCsi"),
    (AttrId::ChargingProfile, "chargingProfile"),
    (AttrId::VlrAddress, "vlrAddress"),
    (AttrId::SgsnAddress, "sgsnAddress"),
    (AttrId::MmeAddress, "mmeAddress"),
    (AttrId::ImsRegState, "imsRegState"),
    (AttrId::ScscfName, "scscfName"),
    (AttrId::HomeRegion, "homeRegion"),
    (AttrId::ProvisioningGen, "provisioningGen"),
];

/// The LDAP short name of an attribute.
pub fn attr_name(attr: AttrId) -> &'static str {
    ATTR_NAMES
        .iter()
        .find(|(a, _)| *a == attr)
        .map(|(_, n)| *n)
        .expect("every AttrId has a name")
}

/// Resolve an LDAP short name (ASCII-case-insensitively, per directory
/// convention) to the schema attribute.
pub fn attr_by_name(name: &str) -> Option<AttrId> {
    ATTR_NAMES
        .iter()
        .find(|(_, n)| n.eq_ignore_ascii_case(name))
        .map(|(a, _)| *a)
}

/// A search filter.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Every sub-filter matches. `(&)` is the RFC 4526 absolute-true filter.
    And(Vec<Filter>),
    /// At least one sub-filter matches. `(|)` is absolute-false.
    Or(Vec<Filter>),
    /// The sub-filter does not match.
    Not(Box<Filter>),
    /// The attribute is present, any value: `(attr=*)`.
    Present(AttrId),
    /// The attribute has this value: `(attr=value)`.
    Equality(AttrId, String),
    /// The attribute is numerically ≥ the assertion: `(attr>=n)`.
    GreaterOrEqual(AttrId, u64),
    /// The attribute is numerically ≤ the assertion: `(attr<=n)`.
    LessOrEqual(AttrId, u64),
    /// Substring match `(attr=init*any*…*fin)`; each component optional.
    Substring {
        /// The attribute tested.
        attr: AttrId,
        /// Leading fragment (before the first `*`).
        initial: Option<String>,
        /// Fragments between `*`s, in order.
        any: Vec<String>,
        /// Trailing fragment (after the last `*`).
        fin: Option<String>,
    },
}

impl Filter {
    /// The absolute-true filter `(&)`.
    pub fn always() -> Filter {
        Filter::And(Vec::new())
    }

    /// Convenience equality on anything displayable.
    pub fn eq(attr: AttrId, value: impl fmt::Display) -> Filter {
        Filter::Equality(attr, value.to_string())
    }

    /// Evaluate against an entry.
    pub fn matches(&self, entry: &Entry) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(entry)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(entry)),
            Filter::Not(f) => !f.matches(entry),
            Filter::Present(attr) => entry.contains(*attr),
            Filter::Equality(attr, assertion) => entry
                .get(*attr)
                .is_some_and(|v| value_matches(v, assertion)),
            Filter::GreaterOrEqual(attr, n) => {
                entry.get(*attr).and_then(numeric).is_some_and(|v| v >= *n)
            }
            Filter::LessOrEqual(attr, n) => {
                entry.get(*attr).and_then(numeric).is_some_and(|v| v <= *n)
            }
            Filter::Substring {
                attr,
                initial,
                any,
                fin,
            } => entry
                .get(*attr)
                .is_some_and(|v| substring_matches(v, initial, any, fin)),
        }
    }

    /// How many attribute assertions the filter contains (a cost proxy for
    /// the analytics experiments: one assertion ≈ one attribute probe).
    pub fn assertion_count(&self) -> usize {
        match self {
            Filter::And(fs) | Filter::Or(fs) => fs.iter().map(Filter::assertion_count).sum(),
            Filter::Not(f) => f.assertion_count(),
            _ => 1,
        }
    }
}

/// Coerce an attribute value to a number for ordering assertions.
fn numeric(v: &AttrValue) -> Option<u64> {
    match v {
        AttrValue::U64(n) => Some(*n),
        AttrValue::Str(s) => s.parse().ok(),
        _ => None,
    }
}

/// Equality assertion against one attribute value.
fn value_matches(v: &AttrValue, assertion: &str) -> bool {
    match v {
        AttrValue::Str(s) => s.eq_ignore_ascii_case(assertion),
        AttrValue::U64(n) => assertion.parse::<u64>() == Ok(*n),
        AttrValue::Bool(b) => match *b {
            true => assertion.eq_ignore_ascii_case("true"),
            false => assertion.eq_ignore_ascii_case("false"),
        },
        AttrValue::Bytes(bytes) => {
            let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
            hex.eq_ignore_ascii_case(assertion)
        }
        AttrValue::StrList(list) => list.iter().any(|s| s.eq_ignore_ascii_case(assertion)),
    }
}

fn substring_str(s: &str, initial: &Option<String>, any: &[String], fin: &Option<String>) -> bool {
    let lower = s.to_ascii_lowercase();
    let mut pos = 0usize;
    if let Some(init) = initial {
        if !lower.starts_with(&init.to_ascii_lowercase()) {
            return false;
        }
        pos = init.len();
    }
    for frag in any {
        let frag = frag.to_ascii_lowercase();
        match lower[pos..].find(&frag) {
            Some(i) => pos += i + frag.len(),
            None => return false,
        }
    }
    if let Some(fin) = fin {
        let fin = fin.to_ascii_lowercase();
        return lower.len() >= pos + fin.len() && lower.ends_with(&fin);
    }
    true
}

fn substring_matches(
    v: &AttrValue,
    initial: &Option<String>,
    any: &[String],
    fin: &Option<String>,
) -> bool {
    match v {
        AttrValue::Str(s) => substring_str(s, initial, any, fin),
        AttrValue::StrList(list) => list.iter().any(|s| substring_str(s, initial, any, fin)),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// RFC 4515 string form
// ---------------------------------------------------------------------------

/// Escape a value fragment for the string form (RFC 4515 §3: `( ) * \` and
/// NUL must be hex-escaped).
fn escape(s: &str, out: &mut String) {
    for b in s.bytes() {
        match b {
            b'(' | b')' | b'*' | b'\\' | 0 => {
                out.push('\\');
                out.push_str(&format!("{b:02x}"));
            }
            _ => out.push(b as char),
        }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::And(fs) => {
                write!(f, "(&")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Filter::Or(fs) => {
                write!(f, "(|")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Filter::Not(sub) => write!(f, "(!{sub})"),
            Filter::Present(attr) => write!(f, "({}=*)", attr_name(*attr)),
            Filter::Equality(attr, v) => {
                let mut buf = String::new();
                escape(v, &mut buf);
                write!(f, "({}={})", attr_name(*attr), buf)
            }
            Filter::GreaterOrEqual(attr, n) => write!(f, "({}>={n})", attr_name(*attr)),
            Filter::LessOrEqual(attr, n) => write!(f, "({}<={n})", attr_name(*attr)),
            Filter::Substring {
                attr,
                initial,
                any,
                fin,
            } => {
                write!(f, "({}=", attr_name(*attr))?;
                let mut buf = String::new();
                if let Some(init) = initial {
                    escape(init, &mut buf);
                }
                buf.push('*');
                for frag in any {
                    escape(frag, &mut buf);
                    buf.push('*');
                }
                if let Some(fin) = fin {
                    escape(fin, &mut buf);
                }
                write!(f, "{buf})")
            }
        }
    }
}

/// A filter-string parse error with position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for FilterParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "filter parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for FilterParseError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, FilterParseError> {
        Err(FilterParseError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), FilterParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn filter(&mut self) -> Result<Filter, FilterParseError> {
        self.expect(b'(')?;
        let f = match self.peek() {
            Some(b'&') => {
                self.pos += 1;
                Filter::And(self.filter_list()?)
            }
            Some(b'|') => {
                self.pos += 1;
                Filter::Or(self.filter_list()?)
            }
            Some(b'!') => {
                self.pos += 1;
                Filter::Not(Box::new(self.filter()?))
            }
            Some(_) => self.item()?,
            None => return self.err("unexpected end of filter"),
        };
        self.expect(b')')?;
        Ok(f)
    }

    fn filter_list(&mut self) -> Result<Vec<Filter>, FilterParseError> {
        let mut list = Vec::new();
        while self.peek() == Some(b'(') {
            list.push(self.filter()?);
        }
        Ok(list)
    }

    fn item(&mut self) -> Result<Filter, FilterParseError> {
        let name_start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.src[name_start..self.pos])
            .expect("ascii subset is valid utf-8");
        if name.is_empty() {
            return self.err("empty attribute name");
        }
        let attr = match attr_by_name(name) {
            Some(a) => a,
            None => return self.err(format!("unknown attribute '{name}'")),
        };
        match self.peek() {
            Some(b'>') => {
                self.pos += 1;
                self.expect(b'=')?;
                let n = self.number()?;
                Ok(Filter::GreaterOrEqual(attr, n))
            }
            Some(b'<') => {
                self.pos += 1;
                self.expect(b'=')?;
                let n = self.number()?;
                Ok(Filter::LessOrEqual(attr, n))
            }
            Some(b'=') => {
                self.pos += 1;
                self.value_side(attr)
            }
            _ => self.err("expected '=', '>=' or '<='"),
        }
    }

    fn number(&mut self) -> Result<u64, FilterParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected a number");
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("digits are valid utf-8")
            .parse()
            .or_else(|_| self.err("number out of range"))
    }

    /// Parse everything after `attr=`: plain value, `*` presence, or a
    /// substring pattern. Fragments may contain `\xx` escapes.
    fn value_side(&mut self, attr: AttrId) -> Result<Filter, FilterParseError> {
        let mut fragments: Vec<String> = Vec::new();
        let mut stars = 0usize;
        let mut current = String::new();
        loop {
            match self.peek() {
                Some(b')') | None => break,
                Some(b'*') => {
                    self.pos += 1;
                    stars += 1;
                    fragments.push(std::mem::take(&mut current));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let hi = self.hex_digit()?;
                    let lo = self.hex_digit()?;
                    current.push((hi * 16 + lo) as char);
                }
                Some(b'(') => return self.err("unescaped '(' in value"),
                Some(b) => {
                    self.pos += 1;
                    current.push(b as char);
                }
            }
        }
        fragments.push(current);

        if stars == 0 {
            return Ok(Filter::Equality(
                attr,
                fragments.pop().expect("one fragment"),
            ));
        }
        // `(attr=*)` is a presence test.
        if stars == 1 && fragments.iter().all(String::is_empty) {
            return Ok(Filter::Present(attr));
        }
        // Substring: first fragment is `initial`, last is `final`, the rest
        // are `any` components (empty interior fragments collapse, matching
        // RFC 4515's `**`).
        let fin = match fragments.pop() {
            Some(f) if f.is_empty() => None,
            Some(f) => Some(f),
            None => None,
        };
        let initial = match fragments.first() {
            Some(f) if f.is_empty() => None,
            Some(f) => Some(f.clone()),
            None => None,
        };
        let any: Vec<String> = fragments
            .into_iter()
            .skip(1)
            .filter(|f| !f.is_empty())
            .collect();
        Ok(Filter::Substring {
            attr,
            initial,
            any,
            fin,
        })
    }

    fn hex_digit(&mut self) -> Result<u8, FilterParseError> {
        match self.peek().and_then(|b| (b as char).to_digit(16)) {
            Some(d) => {
                self.pos += 1;
                Ok(d as u8)
            }
            None => self.err("expected hex digit after '\\'"),
        }
    }
}

impl FromStr for Filter {
    type Err = FilterParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut p = Parser {
            src: s.as_bytes(),
            pos: 0,
        };
        let f = p.filter()?;
        if p.pos != s.len() {
            return p.err("trailing input after filter");
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Entry {
        let mut e = Entry::new();
        e.set(AttrId::Imsi, "214011234567890");
        e.set(AttrId::Msisdn, "34600123456");
        e.set(AttrId::OdbMask, 6u64);
        e.set(AttrId::CallBarring, true);
        e.set(AttrId::HomeRegion, 2u64);
        e.set(
            AttrId::ImpuList,
            vec![
                "sip:alice@ims.example".to_owned(),
                "tel:+34600123456".to_owned(),
            ],
        );
        e
    }

    #[test]
    fn attr_names_round_trip() {
        for (attr, name) in ATTR_NAMES {
            assert_eq!(attr_name(attr), name);
            assert_eq!(attr_by_name(name), Some(attr));
            assert_eq!(attr_by_name(&name.to_ascii_uppercase()), Some(attr));
        }
        assert_eq!(attr_by_name("noSuchAttr"), None);
    }

    #[test]
    fn equality_matching_by_type() {
        let e = entry();
        assert!(Filter::eq(AttrId::Msisdn, "34600123456").matches(&e));
        assert!(!Filter::eq(AttrId::Msisdn, "34600000000").matches(&e));
        assert!(Filter::eq(AttrId::OdbMask, 6).matches(&e));
        assert!(Filter::eq(AttrId::CallBarring, "TRUE").matches(&e));
        assert!(Filter::eq(AttrId::CallBarring, "true").matches(&e));
        // Multi-valued: any member matches.
        assert!(Filter::eq(AttrId::ImpuList, "tel:+34600123456").matches(&e));
        assert!(!Filter::eq(AttrId::ImpuList, "tel:+34999").matches(&e));
        // Absent attribute never matches.
        assert!(!Filter::eq(AttrId::VlrAddress, "x").matches(&e));
    }

    #[test]
    fn string_equality_is_case_insensitive() {
        let mut e = Entry::new();
        e.set(AttrId::ScscfName, "SCSCF1.ims.Example");
        assert!(Filter::eq(AttrId::ScscfName, "scscf1.IMS.example").matches(&e));
    }

    #[test]
    fn presence_and_negation() {
        let e = entry();
        assert!(Filter::Present(AttrId::Imsi).matches(&e));
        assert!(!Filter::Present(AttrId::VlrAddress).matches(&e));
        assert!(Filter::Not(Box::new(Filter::Present(AttrId::VlrAddress))).matches(&e));
    }

    #[test]
    fn ordering_assertions_are_numeric_only() {
        let e = entry();
        assert!(Filter::GreaterOrEqual(AttrId::OdbMask, 6).matches(&e));
        assert!(Filter::GreaterOrEqual(AttrId::OdbMask, 5).matches(&e));
        assert!(!Filter::GreaterOrEqual(AttrId::OdbMask, 7).matches(&e));
        assert!(Filter::LessOrEqual(AttrId::OdbMask, 6).matches(&e));
        assert!(!Filter::LessOrEqual(AttrId::OdbMask, 5).matches(&e));
        // Numeric digit-strings order too (MSISDN prefixes by range).
        assert!(Filter::GreaterOrEqual(AttrId::Msisdn, 34_000_000_000).matches(&e));
        // Booleans never satisfy ordering.
        assert!(!Filter::GreaterOrEqual(AttrId::CallBarring, 0).matches(&e));
    }

    #[test]
    fn substring_matching() {
        let e = entry();
        let f: Filter = "(impuList=sip:*@ims.example)".parse().unwrap();
        assert!(f.matches(&e));
        let f: Filter = "(msisdn=346*)".parse().unwrap();
        assert!(f.matches(&e));
        let f: Filter = "(msisdn=*456)".parse().unwrap();
        assert!(f.matches(&e));
        let f: Filter = "(msisdn=34*01*6)".parse().unwrap();
        assert!(f.matches(&e));
        let f: Filter = "(msisdn=34*99*6)".parse().unwrap();
        assert!(!f.matches(&e));
        // Substring on a non-string attribute never matches.
        let f: Filter = "(odbMask=1*)".parse().unwrap();
        assert!(!f.matches(&e));
    }

    #[test]
    fn boolean_connectives() {
        let e = entry();
        let f: Filter = "(&(callBarring=TRUE)(homeRegion=2))".parse().unwrap();
        assert!(f.matches(&e));
        let f: Filter = "(&(callBarring=TRUE)(homeRegion=1))".parse().unwrap();
        assert!(!f.matches(&e));
        let f: Filter = "(|(homeRegion=1)(homeRegion=2))".parse().unwrap();
        assert!(f.matches(&e));
        let f: Filter = "(!(callBarring=TRUE))".parse().unwrap();
        assert!(!f.matches(&e));
        // RFC 4526 absolute true/false.
        assert!("(&)".parse::<Filter>().unwrap().matches(&e));
        assert!(!"(|)".parse::<Filter>().unwrap().matches(&e));
    }

    #[test]
    fn parse_rejects_malformed_filters() {
        for bad in [
            "",
            "(",
            "()",
            "(msisdn)",
            "(msisdn=1",
            "(unknownAttr=1)",
            "(msisdn>=abc)",
            "(msisdn=1)(extra=2)",
            "(&(msisdn=1)",
            "(msisdn=\\zz)",
        ] {
            assert!(bad.parse::<Filter>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let f = Filter::eq(AttrId::ScscfName, "weird(*)\\name");
        let s = f.to_string();
        assert_eq!(s, r"(scscfName=weird\28\2a\29\5cname)");
        let back: Filter = s.parse().unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn display_parse_round_trip() {
        let filters = [
            "(&(callBarring=TRUE)(homeRegion=2))",
            "(|(odbMask>=4)(odbMask<=1))",
            "(!(vlrAddress=*))",
            "(imsi=214011234567890)",
            "(impuList=sip:*@ims.example)",
            "(msisdn=34*01*6)",
            "(&)",
            "(|)",
            "(&(|(homeRegion=0)(homeRegion=1))(!(subscriberStatus=barred)))",
        ];
        for s in filters {
            let f: Filter = s.parse().unwrap();
            assert_eq!(f.to_string(), s, "canonical form differs");
            let again: Filter = f.to_string().parse().unwrap();
            assert_eq!(again, f);
        }
    }

    #[test]
    fn assertion_count_counts_leaves() {
        let f: Filter = "(&(|(homeRegion=0)(homeRegion=1))(!(callBarring=TRUE)))"
            .parse()
            .unwrap();
        assert_eq!(f.assertion_count(), 3);
        assert_eq!(Filter::always().assertion_count(), 0);
    }

    #[test]
    fn bytes_match_as_hex() {
        let mut e = Entry::new();
        e.set(AttrId::AuthKi, vec![0xde, 0xad, 0xbe, 0xef]);
        assert!(Filter::eq(AttrId::AuthKi, "deadbeef").matches(&e));
        assert!(Filter::eq(AttrId::AuthKi, "DEADBEEF").matches(&e));
        assert!(!Filter::eq(AttrId::AuthKi, "deadbeee").matches(&e));
    }
}
