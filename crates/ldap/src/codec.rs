//! BER-style TLV codec for the LDAP subset.
//!
//! Real BER (as RFC 2251 mandates) with definite lengths, restricted to the
//! structures our operations need. Every value is a `tag, length, body`
//! triple; constructed values nest. The codec is exercised by the capacity
//! experiment (E6) — protocol encode/decode is part of the per-operation
//! CPU cost a 1M ops/s LDAP server must absorb.

use bytes::{BufMut, Bytes, BytesMut};

use udr_model::attrs::{AttrId, AttrMod, AttrValue, Entry};
use udr_model::error::{UdrError, UdrResult};

use crate::dn::Dn;
use crate::filter::Filter;
use crate::proto::{LdapOp, LdapRequest, LdapResponse, ResultCode};

// Universal tags.
const TAG_INT: u8 = 0x02;
const TAG_OCTET: u8 = 0x04;
const TAG_ENUM: u8 = 0x0A;
const TAG_SEQ: u8 = 0x30;
// Application tags (RFC 2251 operation numbers).
const APP_BIND: u8 = 0x60;
const APP_SEARCH: u8 = 0x63;
const APP_MODIFY: u8 = 0x66;
const APP_ADD: u8 = 0x68;
const APP_DELETE: u8 = 0x4A;
const APP_COMPARE: u8 = 0x6E;
const APP_RESPONSE: u8 = 0x65;
// Filter tags (RFC 4511 §4.5.1 Filter CHOICE).
const FLT_AND: u8 = 0xA0;
const FLT_OR: u8 = 0xA1;
const FLT_NOT: u8 = 0xA2;
const FLT_EQ: u8 = 0xA3;
const FLT_SUBSTR: u8 = 0xA4;
const FLT_GE: u8 = 0xA5;
const FLT_LE: u8 = 0xA6;
const FLT_PRESENT: u8 = 0x87;
// Substring component tags (RFC 4511 SubstringFilter.substrings CHOICE).
const SUB_INITIAL: u8 = 0x80;
const SUB_ANY: u8 = 0x81;
const SUB_FINAL: u8 = 0x82;
/// Recursion bound for nested filters (defense against hostile input).
const MAX_FILTER_DEPTH: u32 = 32;
// Context tags for attribute values.
const CTX_STR: u8 = 0x80;
const CTX_U64: u8 = 0x81;
const CTX_BOOL: u8 = 0x82;
const CTX_BYTES: u8 = 0x83;
const CTX_STRLIST: u8 = 0xA4; // constructed

fn put_len(buf: &mut BytesMut, len: usize) {
    if len < 0x80 {
        buf.put_u8(len as u8);
    } else if len <= 0xFF {
        buf.put_u8(0x81);
        buf.put_u8(len as u8);
    } else if len <= 0xFFFF {
        buf.put_u8(0x82);
        buf.put_u16(len as u16);
    } else {
        buf.put_u8(0x84);
        buf.put_u32(len as u32);
    }
}

fn put_tlv(buf: &mut BytesMut, tag: u8, body: &[u8]) {
    buf.put_u8(tag);
    put_len(buf, body.len());
    buf.put_slice(body);
}

fn put_u64(buf: &mut BytesMut, tag: u8, v: u64) {
    // Minimal big-endian encoding (no leading zero octets except for 0).
    let be = v.to_be_bytes();
    let skip = be.iter().take_while(|b| **b == 0).count().min(7);
    put_tlv(buf, tag, &be[skip..]);
}

fn encode_attr_value(buf: &mut BytesMut, value: &AttrValue) {
    match value {
        AttrValue::Str(s) => put_tlv(buf, CTX_STR, s.as_bytes()),
        AttrValue::U64(v) => put_u64(buf, CTX_U64, *v),
        AttrValue::Bool(b) => put_tlv(buf, CTX_BOOL, &[u8::from(*b)]),
        AttrValue::Bytes(b) => put_tlv(buf, CTX_BYTES, b),
        AttrValue::StrList(items) => {
            let mut inner = BytesMut::new();
            for item in items {
                put_tlv(&mut inner, TAG_OCTET, item.as_bytes());
            }
            put_tlv(buf, CTX_STRLIST, &inner);
        }
    }
}

fn encode_entry(entry: &Entry) -> BytesMut {
    let mut body = BytesMut::new();
    for (attr, value) in entry.iter() {
        let mut pair = BytesMut::new();
        put_u64(&mut pair, TAG_INT, u64::from(attr.tag()));
        encode_attr_value(&mut pair, value);
        put_tlv(&mut body, TAG_SEQ, &pair);
    }
    let mut out = BytesMut::new();
    put_tlv(&mut out, TAG_SEQ, &body);
    out
}

fn encode_filter(buf: &mut BytesMut, filter: &Filter) {
    match filter {
        Filter::And(fs) => {
            let mut inner = BytesMut::new();
            for f in fs {
                encode_filter(&mut inner, f);
            }
            put_tlv(buf, FLT_AND, &inner);
        }
        Filter::Or(fs) => {
            let mut inner = BytesMut::new();
            for f in fs {
                encode_filter(&mut inner, f);
            }
            put_tlv(buf, FLT_OR, &inner);
        }
        Filter::Not(f) => {
            let mut inner = BytesMut::new();
            encode_filter(&mut inner, f);
            put_tlv(buf, FLT_NOT, &inner);
        }
        Filter::Present(attr) => {
            let mut inner = BytesMut::new();
            put_u64(&mut inner, TAG_INT, u64::from(attr.tag()));
            put_tlv(buf, FLT_PRESENT, &inner);
        }
        Filter::Equality(attr, value) => {
            let mut inner = BytesMut::new();
            put_u64(&mut inner, TAG_INT, u64::from(attr.tag()));
            put_tlv(&mut inner, TAG_OCTET, value.as_bytes());
            put_tlv(buf, FLT_EQ, &inner);
        }
        Filter::GreaterOrEqual(attr, n) => {
            let mut inner = BytesMut::new();
            put_u64(&mut inner, TAG_INT, u64::from(attr.tag()));
            put_u64(&mut inner, TAG_INT, *n);
            put_tlv(buf, FLT_GE, &inner);
        }
        Filter::LessOrEqual(attr, n) => {
            let mut inner = BytesMut::new();
            put_u64(&mut inner, TAG_INT, u64::from(attr.tag()));
            put_u64(&mut inner, TAG_INT, *n);
            put_tlv(buf, FLT_LE, &inner);
        }
        Filter::Substring {
            attr,
            initial,
            any,
            fin,
        } => {
            let mut inner = BytesMut::new();
            put_u64(&mut inner, TAG_INT, u64::from(attr.tag()));
            let mut parts = BytesMut::new();
            if let Some(init) = initial {
                put_tlv(&mut parts, SUB_INITIAL, init.as_bytes());
            }
            for frag in any {
                put_tlv(&mut parts, SUB_ANY, frag.as_bytes());
            }
            if let Some(f) = fin {
                put_tlv(&mut parts, SUB_FINAL, f.as_bytes());
            }
            put_tlv(&mut inner, TAG_SEQ, &parts);
            put_tlv(buf, FLT_SUBSTR, &inner);
        }
    }
}

/// Encode a request to wire bytes.
pub fn encode_request(req: &LdapRequest) -> Bytes {
    let mut payload = BytesMut::new();
    match &req.op {
        LdapOp::Bind { dn, password } => {
            let mut body = BytesMut::new();
            put_tlv(&mut body, TAG_OCTET, dn.to_string().as_bytes());
            put_tlv(&mut body, TAG_OCTET, password);
            put_tlv(&mut payload, APP_BIND, &body);
        }
        LdapOp::Compare { dn, attr, value } => {
            let mut body = BytesMut::new();
            put_tlv(&mut body, TAG_OCTET, dn.to_string().as_bytes());
            put_u64(&mut body, TAG_INT, u64::from(attr.tag()));
            encode_attr_value(&mut body, value);
            put_tlv(&mut payload, APP_COMPARE, &body);
        }
        LdapOp::Search { base, attrs } => {
            let mut body = BytesMut::new();
            put_tlv(&mut body, TAG_OCTET, base.to_string().as_bytes());
            let mut list = BytesMut::new();
            for a in attrs {
                put_u64(&mut list, TAG_INT, u64::from(a.tag()));
            }
            put_tlv(&mut body, TAG_SEQ, &list);
            put_tlv(&mut payload, APP_SEARCH, &body);
        }
        LdapOp::SearchFilter {
            base,
            filter,
            attrs,
        } => {
            // Same application tag as Search (both are RFC 2251
            // searchRequests); the element after the DN disambiguates —
            // a filter CHOICE tag here, an attribute SEQUENCE there.
            let mut body = BytesMut::new();
            put_tlv(&mut body, TAG_OCTET, base.to_string().as_bytes());
            encode_filter(&mut body, filter);
            let mut list = BytesMut::new();
            for a in attrs {
                put_u64(&mut list, TAG_INT, u64::from(a.tag()));
            }
            put_tlv(&mut body, TAG_SEQ, &list);
            put_tlv(&mut payload, APP_SEARCH, &body);
        }
        LdapOp::Add { dn, entry } => {
            let mut body = BytesMut::new();
            put_tlv(&mut body, TAG_OCTET, dn.to_string().as_bytes());
            body.extend_from_slice(&encode_entry(entry));
            put_tlv(&mut payload, APP_ADD, &body);
        }
        LdapOp::Modify { dn, mods } => {
            let mut body = BytesMut::new();
            put_tlv(&mut body, TAG_OCTET, dn.to_string().as_bytes());
            let mut list = BytesMut::new();
            for m in mods {
                let mut one = BytesMut::new();
                match m {
                    AttrMod::Set(attr, value) => {
                        put_u64(&mut one, TAG_ENUM, 0);
                        put_u64(&mut one, TAG_INT, u64::from(attr.tag()));
                        encode_attr_value(&mut one, value);
                    }
                    AttrMod::Delete(attr) => {
                        put_u64(&mut one, TAG_ENUM, 1);
                        put_u64(&mut one, TAG_INT, u64::from(attr.tag()));
                    }
                }
                put_tlv(&mut list, TAG_SEQ, &one);
            }
            put_tlv(&mut body, TAG_SEQ, &list);
            put_tlv(&mut payload, APP_MODIFY, &body);
        }
        LdapOp::Delete { dn } => {
            put_tlv(&mut payload, APP_DELETE, dn.to_string().as_bytes());
        }
    }

    let mut msg = BytesMut::new();
    put_u64(&mut msg, TAG_INT, u64::from(req.message_id));
    msg.extend_from_slice(&payload);
    let mut out = BytesMut::new();
    put_tlv(&mut out, TAG_SEQ, &msg);
    out.freeze()
}

/// Encode a response to wire bytes.
pub fn encode_response(resp: &LdapResponse) -> Bytes {
    let mut body = BytesMut::new();
    put_u64(&mut body, TAG_ENUM, resp.code as u64);
    if let Some(entry) = &resp.entry {
        body.extend_from_slice(&encode_entry(entry));
    }
    let mut payload = BytesMut::new();
    put_tlv(&mut payload, APP_RESPONSE, &body);

    let mut msg = BytesMut::new();
    put_u64(&mut msg, TAG_INT, u64::from(resp.message_id));
    msg.extend_from_slice(&payload);
    let mut out = BytesMut::new();
    put_tlv(&mut out, TAG_SEQ, &msg);
    out.freeze()
}

// ---- decoding --------------------------------------------------------------

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn err(msg: &str) -> UdrError {
        UdrError::Codec(msg.to_owned())
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn byte(&mut self) -> UdrResult<u8> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| Self::err("truncated"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> UdrResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(Self::err("truncated body"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn length(&mut self) -> UdrResult<usize> {
        let first = self.byte()?;
        if first < 0x80 {
            return Ok(first as usize);
        }
        let n = (first & 0x7F) as usize;
        if n == 0 || n > 4 {
            return Err(Self::err("unsupported length form"));
        }
        let mut len = 0usize;
        for _ in 0..n {
            len = (len << 8) | self.byte()? as usize;
        }
        Ok(len)
    }

    /// Read one TLV; returns (tag, body reader).
    fn tlv(&mut self) -> UdrResult<(u8, Reader<'a>)> {
        let tag = self.byte()?;
        let len = self.length()?;
        let body = self.take(len)?;
        Ok((tag, Reader::new(body)))
    }

    fn expect_tlv(&mut self, expected: u8) -> UdrResult<Reader<'a>> {
        let (tag, body) = self.tlv()?;
        if tag != expected {
            return Err(Self::err(&format!(
                "expected tag {expected:#x}, got {tag:#x}"
            )));
        }
        Ok(body)
    }

    fn u64_body(body: &Reader<'a>) -> UdrResult<u64> {
        if body.data.len() > 8 {
            return Err(Self::err("integer too large"));
        }
        let mut v = 0u64;
        for &b in body.data {
            v = (v << 8) | u64::from(b);
        }
        Ok(v)
    }

    fn expect_u64(&mut self, tag: u8) -> UdrResult<u64> {
        let body = self.expect_tlv(tag)?;
        Self::u64_body(&body)
    }

    fn str_body(body: &Reader<'a>) -> UdrResult<String> {
        String::from_utf8(body.data.to_vec()).map_err(|_| Self::err("invalid UTF-8"))
    }

    fn at_end(&self) -> bool {
        self.remaining() == 0
    }

    /// The tag of the next TLV without consuming it.
    fn peek_tag(&self) -> Option<u8> {
        self.data.get(self.pos).copied()
    }
}

fn decode_attr_value(reader: &mut Reader<'_>) -> UdrResult<AttrValue> {
    let (tag, body) = reader.tlv()?;
    Ok(match tag {
        CTX_STR => AttrValue::Str(Reader::str_body(&body)?),
        CTX_U64 => AttrValue::U64(Reader::u64_body(&body)?),
        CTX_BOOL => {
            let b = *body.data.first().ok_or_else(|| Reader::err("empty bool"))?;
            AttrValue::Bool(b != 0)
        }
        CTX_BYTES => AttrValue::Bytes(body.data.to_vec()),
        CTX_STRLIST => {
            let mut items = Vec::new();
            let mut inner = body;
            while !inner.at_end() {
                let item = inner.expect_tlv(TAG_OCTET)?;
                items.push(Reader::str_body(&item)?);
            }
            AttrValue::StrList(items)
        }
        _ => return Err(Reader::err(&format!("unknown value tag {tag:#x}"))),
    })
}

fn decode_entry(reader: &mut Reader<'_>) -> UdrResult<Entry> {
    let mut seq = reader.expect_tlv(TAG_SEQ)?;
    let mut entry = Entry::new();
    while !seq.at_end() {
        let mut pair = seq.expect_tlv(TAG_SEQ)?;
        let tag = pair.expect_u64(TAG_INT)?;
        let attr = AttrId::from_tag(tag as u16)
            .ok_or_else(|| Reader::err(&format!("unknown attribute tag {tag}")))?;
        let value = decode_attr_value(&mut pair)?;
        entry.set(attr, value);
    }
    Ok(entry)
}

fn decode_attr_id(v: u64) -> UdrResult<AttrId> {
    AttrId::from_tag(v as u16).ok_or_else(|| Reader::err(&format!("unknown attribute tag {v}")))
}

fn is_filter_tag(tag: u8) -> bool {
    matches!(
        tag,
        FLT_AND | FLT_OR | FLT_NOT | FLT_EQ | FLT_SUBSTR | FLT_GE | FLT_LE | FLT_PRESENT
    )
}

fn decode_filter(reader: &mut Reader<'_>, depth: u32) -> UdrResult<Filter> {
    if depth > MAX_FILTER_DEPTH {
        return Err(Reader::err("filter nested too deeply"));
    }
    let (tag, mut body) = reader.tlv()?;
    Ok(match tag {
        FLT_AND | FLT_OR => {
            let mut subs = Vec::new();
            while !body.at_end() {
                subs.push(decode_filter(&mut body, depth + 1)?);
            }
            if tag == FLT_AND {
                Filter::And(subs)
            } else {
                Filter::Or(subs)
            }
        }
        FLT_NOT => Filter::Not(Box::new(decode_filter(&mut body, depth + 1)?)),
        FLT_PRESENT => Filter::Present(decode_attr_id(body.expect_u64(TAG_INT)?)?),
        FLT_EQ => {
            let attr = decode_attr_id(body.expect_u64(TAG_INT)?)?;
            let value = Reader::str_body(&body.expect_tlv(TAG_OCTET)?)?;
            Filter::Equality(attr, value)
        }
        FLT_GE => {
            let attr = decode_attr_id(body.expect_u64(TAG_INT)?)?;
            Filter::GreaterOrEqual(attr, body.expect_u64(TAG_INT)?)
        }
        FLT_LE => {
            let attr = decode_attr_id(body.expect_u64(TAG_INT)?)?;
            Filter::LessOrEqual(attr, body.expect_u64(TAG_INT)?)
        }
        FLT_SUBSTR => {
            let attr = decode_attr_id(body.expect_u64(TAG_INT)?)?;
            let mut parts = body.expect_tlv(TAG_SEQ)?;
            let (mut initial, mut any, mut fin) = (None, Vec::new(), None);
            while !parts.at_end() {
                let (part_tag, part) = parts.tlv()?;
                let text = Reader::str_body(&part)?;
                match part_tag {
                    SUB_INITIAL if initial.is_none() && any.is_empty() && fin.is_none() => {
                        initial = Some(text)
                    }
                    SUB_ANY if fin.is_none() => any.push(text),
                    SUB_FINAL if fin.is_none() => fin = Some(text),
                    _ => return Err(Reader::err("malformed substring components")),
                }
            }
            Filter::Substring {
                attr,
                initial,
                any,
                fin,
            }
        }
        other => return Err(Reader::err(&format!("unknown filter tag {other:#x}"))),
    })
}

/// Decode a request from wire bytes.
pub fn decode_request(bytes: &[u8]) -> UdrResult<LdapRequest> {
    let mut top = Reader::new(bytes);
    let mut msg = top.expect_tlv(TAG_SEQ)?;
    let message_id = msg.expect_u64(TAG_INT)? as u32;
    let (tag, mut body) = msg.tlv()?;
    let op = match tag {
        APP_BIND => {
            let dn = Dn::parse(&Reader::str_body(&body.expect_tlv(TAG_OCTET)?)?)?;
            let password = body.expect_tlv(TAG_OCTET)?.data.to_vec();
            LdapOp::Bind { dn, password }
        }
        APP_COMPARE => {
            let dn = Dn::parse(&Reader::str_body(&body.expect_tlv(TAG_OCTET)?)?)?;
            let attr = decode_attr_id(body.expect_u64(TAG_INT)?)?;
            let value = decode_attr_value(&mut body)?;
            LdapOp::Compare { dn, attr, value }
        }
        APP_SEARCH => {
            let dn = Dn::parse(&Reader::str_body(&body.expect_tlv(TAG_OCTET)?)?)?;
            let filter = match body.peek_tag() {
                Some(tag) if is_filter_tag(tag) => Some(decode_filter(&mut body, 0)?),
                _ => None,
            };
            let mut list = body.expect_tlv(TAG_SEQ)?;
            let mut attrs = Vec::new();
            while !list.at_end() {
                attrs.push(decode_attr_id(list.expect_u64(TAG_INT)?)?);
            }
            match filter {
                Some(filter) => LdapOp::SearchFilter {
                    base: dn,
                    filter,
                    attrs,
                },
                None => LdapOp::Search { base: dn, attrs },
            }
        }
        APP_ADD => {
            let dn = Dn::parse(&Reader::str_body(&body.expect_tlv(TAG_OCTET)?)?)?;
            let entry = decode_entry(&mut body)?;
            LdapOp::Add { dn, entry }
        }
        APP_MODIFY => {
            let dn = Dn::parse(&Reader::str_body(&body.expect_tlv(TAG_OCTET)?)?)?;
            let mut list = body.expect_tlv(TAG_SEQ)?;
            let mut mods = Vec::new();
            while !list.at_end() {
                let mut one = list.expect_tlv(TAG_SEQ)?;
                let kind = one.expect_u64(TAG_ENUM)?;
                let attr = decode_attr_id(one.expect_u64(TAG_INT)?)?;
                mods.push(match kind {
                    0 => AttrMod::Set(attr, decode_attr_value(&mut one)?),
                    1 => AttrMod::Delete(attr),
                    other => return Err(Reader::err(&format!("unknown mod kind {other}"))),
                });
            }
            LdapOp::Modify { dn, mods }
        }
        APP_DELETE => {
            let dn = Dn::parse(&Reader::str_body(&body)?)?;
            LdapOp::Delete { dn }
        }
        other => return Err(Reader::err(&format!("unknown op tag {other:#x}"))),
    };
    Ok(LdapRequest { message_id, op })
}

/// Decode a response from wire bytes.
pub fn decode_response(bytes: &[u8]) -> UdrResult<LdapResponse> {
    let mut top = Reader::new(bytes);
    let mut msg = top.expect_tlv(TAG_SEQ)?;
    let message_id = msg.expect_u64(TAG_INT)? as u32;
    let mut body = msg.expect_tlv(APP_RESPONSE)?;
    let code_raw = body.expect_u64(TAG_ENUM)?;
    let code = ResultCode::from_u8(code_raw as u8)
        .ok_or_else(|| Reader::err(&format!("unknown result code {code_raw}")))?;
    let entry = if body.at_end() {
        None
    } else {
        Some(decode_entry(&mut body)?)
    };
    Ok(LdapResponse {
        message_id,
        code,
        entry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::identity::{Identity, Imsi, Msisdn};

    fn dn() -> Dn {
        Dn::for_identity(Identity::Imsi(Imsi::new("214011234567890").unwrap()))
    }

    fn rich_entry() -> Entry {
        let mut e = Entry::new();
        e.set(AttrId::Imsi, "214011234567890");
        e.set(AttrId::AuthSqn, 123456789u64);
        e.set(AttrId::CallBarring, true);
        e.set(AttrId::AuthKi, vec![0u8, 1, 2, 255]);
        e.set(
            AttrId::Teleservices,
            vec!["telephony".to_owned(), "sms-mt".to_owned()],
        );
        e
    }

    #[test]
    fn search_round_trip() {
        let req = LdapRequest {
            message_id: 7,
            op: LdapOp::Search {
                base: dn(),
                attrs: vec![AttrId::AuthKi, AttrId::AuthSqn],
            },
        };
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn filtered_search_round_trip() {
        use crate::filter::Filter;
        let filter: Filter = "(&(callBarring=TRUE)(|(odbMask>=4)(msisdn=346*))(!(vlrAddress=*)))"
            .parse()
            .unwrap();
        let req = LdapRequest {
            message_id: 9,
            op: LdapOp::SearchFilter {
                base: dn(),
                filter,
                attrs: vec![AttrId::Msisdn, AttrId::OdbMask],
            },
        };
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn indexed_and_filtered_search_share_the_application_tag() {
        use crate::filter::Filter;
        // Both encode as RFC 2251 searchRequest; the decoder tells them
        // apart by the element after the DN.
        let indexed = LdapRequest {
            message_id: 1,
            op: LdapOp::Search {
                base: dn(),
                attrs: vec![],
            },
        };
        let filtered = LdapRequest {
            message_id: 2,
            op: LdapOp::SearchFilter {
                base: dn(),
                filter: Filter::Present(AttrId::Imsi),
                attrs: vec![],
            },
        };
        assert_eq!(encode_request(&indexed)[2 + 3], 0x63, "APPLICATION 3");
        assert_eq!(decode_request(&encode_request(&indexed)).unwrap(), indexed);
        assert_eq!(
            decode_request(&encode_request(&filtered)).unwrap(),
            filtered
        );
    }

    #[test]
    fn hostile_filter_nesting_is_bounded() {
        use crate::filter::Filter;
        // 40 nested NOTs exceed MAX_FILTER_DEPTH: decode must error out,
        // not blow the stack.
        let mut f = Filter::Present(AttrId::Imsi);
        for _ in 0..40 {
            f = Filter::Not(Box::new(f));
        }
        let req = LdapRequest {
            message_id: 3,
            op: LdapOp::SearchFilter {
                base: dn(),
                filter: f,
                attrs: vec![],
            },
        };
        let bytes = encode_request(&req);
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn add_round_trip() {
        let req = LdapRequest {
            message_id: 1,
            op: LdapOp::Add {
                dn: dn(),
                entry: rich_entry(),
            },
        };
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn modify_round_trip() {
        let req = LdapRequest {
            message_id: u32::MAX,
            op: LdapOp::Modify {
                dn: Dn::for_identity(Identity::Msisdn(Msisdn::new("34600123456").unwrap())),
                mods: vec![
                    AttrMod::Set(AttrId::OdbMask, AttrValue::U64(0)),
                    AttrMod::Set(AttrId::CallBarring, AttrValue::Bool(false)),
                    AttrMod::Delete(AttrId::CallForwarding),
                ],
            },
        };
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn bind_round_trip() {
        let req = LdapRequest {
            message_id: 5,
            op: LdapOp::Bind {
                dn: dn(),
                password: b"hss-fe-secret".to_vec(),
            },
        };
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn compare_round_trip() {
        let req = LdapRequest {
            message_id: 6,
            op: LdapOp::Compare {
                dn: dn(),
                attr: AttrId::CallBarring,
                value: AttrValue::Bool(true),
            },
        };
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn delete_round_trip() {
        let req = LdapRequest {
            message_id: 2,
            op: LdapOp::Delete { dn: dn() },
        };
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn response_round_trips() {
        for resp in [
            LdapResponse::success(1),
            LdapResponse::with_entry(2, rich_entry()),
            LdapResponse::error(3, ResultCode::Unavailable),
            LdapResponse::error(4, ResultCode::EntryAlreadyExists),
        ] {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn long_lengths_use_long_form() {
        let mut e = Entry::new();
        e.set(AttrId::AuthKi, vec![0xABu8; 300]); // > 255 bytes forces 0x82 form
        let req = LdapRequest {
            message_id: 1,
            op: LdapOp::Add { dn: dn(), entry: e },
        };
        let bytes = encode_request(&req);
        assert!(bytes.len() > 300);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn zero_and_max_integers() {
        let mut e = Entry::new();
        e.set(AttrId::AuthSqn, 0u64);
        e.set(AttrId::OdbMask, u64::MAX);
        let req = LdapRequest {
            message_id: 0,
            op: LdapOp::Add { dn: dn(), entry: e },
        };
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn truncated_input_rejected() {
        let req = LdapRequest {
            message_id: 7,
            op: LdapOp::Delete { dn: dn() },
        };
        let bytes = encode_request(&req);
        for cut in [0, 1, 2, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_request(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode_request(&[0xFF, 0x03, 1, 2, 3]).is_err());
        assert!(decode_response(&[0x30, 0x00]).is_err());
    }

    #[test]
    fn wire_is_compact() {
        // A single-attribute search should be well under 100 bytes — the
        // capacity model assumes small control-plane messages.
        let req = LdapRequest {
            message_id: 1,
            op: LdapOp::Search {
                base: dn(),
                attrs: vec![AttrId::VlrAddress],
            },
        };
        assert!(encode_request(&req).len() < 100);
    }
}
