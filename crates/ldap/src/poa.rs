//! The Point of Access: an L4 balancer in front of a cluster's LDAP
//! servers (§3.4.1).
//!
//! "The PoA to the UDR might be provided by a L4-capable IP balancer
//! running in a few blades of the cluster. The balancer spreads LDAP
//! traffic over all the LDAP servers available in the local blade cluster…
//! The IP balancer realizing the PoA automatically detects new LDAP server
//! instances deployed to the blade cluster so growth in LDAP processing
//! capacity is automatic."

use udr_model::ids::{LdapServerId, PoaId, SiteId};

/// Health as seen by the balancer's L4 checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendHealth {
    /// Responding to health checks.
    Healthy,
    /// Failing health checks; skipped by the balancer.
    Unhealthy,
}

#[derive(Debug, Clone)]
struct Backend {
    id: LdapServerId,
    health: BackendHealth,
}

/// The L4 balancer fronting one blade cluster.
#[derive(Debug)]
pub struct PointOfAccess {
    id: PoaId,
    site: SiteId,
    backends: Vec<Backend>,
    next: usize,
    /// Operations dispatched.
    pub dispatched: u64,
    /// Operations refused because no healthy backend existed.
    pub refused: u64,
}

impl PointOfAccess {
    /// A PoA with no backends yet.
    pub fn new(id: PoaId, site: SiteId) -> Self {
        PointOfAccess {
            id,
            site,
            backends: Vec::new(),
            next: 0,
            dispatched: 0,
            refused: 0,
        }
    }

    /// PoA identity.
    pub fn id(&self) -> PoaId {
        self.id
    }

    /// Hosting site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Auto-detection of a new LDAP server (idempotent).
    pub fn register(&mut self, server: LdapServerId) {
        if !self.backends.iter().any(|b| b.id == server) {
            self.backends.push(Backend {
                id: server,
                health: BackendHealth::Healthy,
            });
        }
    }

    /// Remove a server (scale-in).
    pub fn deregister(&mut self, server: LdapServerId) {
        self.backends.retain(|b| b.id != server);
    }

    /// Health-check transition for a server.
    pub fn set_health(&mut self, server: LdapServerId, health: BackendHealth) {
        if let Some(b) = self.backends.iter_mut().find(|b| b.id == server) {
            b.health = health;
        }
    }

    /// Round-robin pick of the next healthy backend.
    pub fn pick(&mut self) -> Option<LdapServerId> {
        if self.backends.is_empty() {
            self.refused += 1;
            return None;
        }
        let n = self.backends.len();
        for i in 0..n {
            let idx = (self.next + i) % n;
            if self.backends[idx].health == BackendHealth::Healthy {
                self.next = (idx + 1) % n;
                self.dispatched += 1;
                return Some(self.backends[idx].id);
            }
        }
        self.refused += 1;
        None
    }

    /// Registered backends.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// Healthy backends.
    pub fn healthy_count(&self) -> usize {
        self.backends
            .iter()
            .filter(|b| b.health == BackendHealth::Healthy)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poa() -> PointOfAccess {
        let mut p = PointOfAccess::new(PoaId(0), SiteId(0));
        for i in 0..3 {
            p.register(LdapServerId(i));
        }
        p
    }

    #[test]
    fn round_robin_cycles_evenly() {
        let mut p = poa();
        let picks: Vec<_> = (0..6).map(|_| p.pick().unwrap().0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(p.dispatched, 6);
    }

    #[test]
    fn register_is_idempotent_and_auto_detected() {
        let mut p = poa();
        p.register(LdapServerId(1));
        assert_eq!(p.backend_count(), 3);
        // A newly deployed server starts receiving traffic automatically.
        p.register(LdapServerId(3));
        let picks: Vec<_> = (0..4).map(|_| p.pick().unwrap().0).collect();
        assert!(picks.contains(&3));
    }

    #[test]
    fn unhealthy_backends_are_skipped() {
        let mut p = poa();
        p.set_health(LdapServerId(1), BackendHealth::Unhealthy);
        let picks: Vec<_> = (0..4).map(|_| p.pick().unwrap().0).collect();
        assert!(!picks.contains(&1));
        assert_eq!(p.healthy_count(), 2);
        // Recovery puts it back in rotation.
        p.set_health(LdapServerId(1), BackendHealth::Healthy);
        let picks: Vec<_> = (0..3).map(|_| p.pick().unwrap().0).collect();
        assert!(picks.contains(&1));
    }

    #[test]
    fn no_healthy_backend_refuses() {
        let mut p = poa();
        for i in 0..3 {
            p.set_health(LdapServerId(i), BackendHealth::Unhealthy);
        }
        assert_eq!(p.pick(), None);
        assert_eq!(p.refused, 1);
    }

    #[test]
    fn empty_poa_refuses() {
        let mut p = PointOfAccess::new(PoaId(1), SiteId(0));
        assert_eq!(p.pick(), None);
    }

    #[test]
    fn deregister_removes() {
        let mut p = poa();
        p.deregister(LdapServerId(0));
        assert_eq!(p.backend_count(), 2);
        for _ in 0..4 {
            assert_ne!(p.pick(), Some(LdapServerId(0)));
        }
    }
}
