//! Token buckets: per-class rate ceilings with strict-priority borrowing.

use udr_model::qos::PriorityClass;
use udr_model::time::SimTime;

/// A classic token bucket over virtual time: `burst` tokens capacity,
/// refilled continuously at `rate` tokens per second. Admitted work over
/// any window `[t, t+w)` can never exceed `rate × w + burst` operations —
/// a property test enforces it.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    refilled_at: SimTime,
}

impl TokenBucket {
    /// A bucket admitting `rate` ops/s sustained with `burst` ops of
    /// headroom, starting full.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is not positive or `burst < 1` (a bucket that
    /// can never hold one whole token admits nothing).
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0, "token rate must be positive");
        assert!(burst >= 1.0, "burst must hold at least one token");
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            refilled_at: SimTime::ZERO,
        }
    }

    /// Sustained rate (tokens per second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Burst capacity (tokens).
    pub fn burst(&self) -> f64 {
        self.burst
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.refilled_at {
            let dt = now.duration_since(self.refilled_at).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
            self.refilled_at = now;
        }
    }

    /// Take one token at `now`; `false` means the budget is exhausted.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Whether a token would be available at `now`, without taking it.
    pub fn peek(&self, now: SimTime) -> bool {
        // `duration_since` saturates, so a peek into the past sees the
        // current token count.
        let dt = now.duration_since(self.refilled_at).as_secs_f64();
        (self.tokens + dt * self.rate).min(self.burst) >= 1.0
    }
}

/// The per-class bucket stack with strict-priority borrowing.
///
/// A class with no bucket of its own is not rate-limited. A class whose
/// bucket is empty walks *down* the priority order and takes the first
/// available token from a lower class's bucket (sacrificing bulk budget
/// to urgent traffic); it is only rate-shed when every class at or below
/// it is both bucketed and exhausted. That walk is what makes priority
/// inversion impossible by construction: if a high class is rate-shed,
/// every lower class's walk covers a subset of the same exhausted
/// buckets, so the lower class is shed too.
#[derive(Debug, Clone, Default)]
pub struct ClassBuckets {
    by_rank: [Option<TokenBucket>; PriorityClass::ALL.len()],
}

impl ClassBuckets {
    /// A stack with no buckets: nothing is rate-limited.
    pub fn unlimited() -> Self {
        ClassBuckets::default()
    }

    /// Install a bucket for `class`.
    pub fn set(&mut self, class: PriorityClass, bucket: TokenBucket) {
        self.by_rank[class.rank()] = Some(bucket);
    }

    /// The bucket of `class`, when one is installed.
    pub fn get(&self, class: PriorityClass) -> Option<&TokenBucket> {
        self.by_rank[class.rank()].as_ref()
    }

    /// Admit one `class` operation at `now`: take a token from the
    /// class's own bucket, else borrow from the first lower-priority
    /// class that has one; an unbucketed class on the walk admits
    /// unconditionally. `false` = rate-shed.
    pub fn admit(&mut self, class: PriorityClass, now: SimTime) -> bool {
        for slot in self.by_rank[class.rank()..].iter_mut() {
            match slot {
                None => return true,
                Some(bucket) => {
                    if bucket.try_take(now) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Whether `class` would be admitted at `now`, without consuming
    /// anything (the priority-inversion audit uses this).
    pub fn would_admit(&self, class: PriorityClass, now: SimTime) -> bool {
        self.by_rank[class.rank()..]
            .iter()
            .any(|slot| slot.as_ref().is_none_or(|bucket| bucket.peek(now)))
    }

    /// Admit one `class` operation at `now` consulting *only* the class's
    /// own bucket — no downward borrowing, and an absent bucket means the
    /// class is uncapped. Per-tenant budgets use this: a tenant's budget
    /// is a contractual ceiling per class, not a priority ordering, so a
    /// tenant whose registration budget is dry must not drain its own
    /// (or anyone else's) lower-class buckets to keep storming.
    pub fn admit_isolated(&mut self, class: PriorityClass, now: SimTime) -> bool {
        match &mut self.by_rank[class.rank()] {
            None => true,
            Some(bucket) => bucket.try_take(now),
        }
    }

    /// Whether [`ClassBuckets::admit_isolated`] would admit `class` at
    /// `now`, without consuming anything.
    pub fn would_admit_isolated(&self, class: PriorityClass, now: SimTime) -> bool {
        self.by_rank[class.rank()]
            .as_ref()
            .is_none_or(|bucket| bucket.peek(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::time::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn bucket_admits_burst_then_refills_at_rate() {
        // 10 ops/s, burst 3.
        let mut b = TokenBucket::new(10.0, 3.0);
        assert!(b.try_take(at(0)));
        assert!(b.try_take(at(0)));
        assert!(b.try_take(at(0)));
        assert!(!b.try_take(at(0)), "burst exhausted");
        assert!(!b.try_take(at(50)), "half a token refilled");
        assert!(b.try_take(at(100)), "one token refilled after 100 ms");
        assert!(!b.try_take(at(100)));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut b = TokenBucket::new(1000.0, 2.0);
        // A long idle period must not bank more than `burst` tokens.
        assert!(b.try_take(at(10_000)));
        assert!(b.try_take(at(10_000)));
        assert!(!b.try_take(at(10_000)));
    }

    #[test]
    fn peek_matches_take() {
        let mut b = TokenBucket::new(10.0, 1.0);
        assert!(b.peek(at(0)));
        assert!(b.try_take(at(0)));
        assert!(!b.peek(at(0)));
        assert!(b.peek(at(100)));
    }

    #[test]
    fn unbucketed_class_is_unlimited() {
        let mut stack = ClassBuckets::unlimited();
        for _ in 0..10_000 {
            assert!(stack.admit(PriorityClass::Provisioning, at(0)));
        }
    }

    #[test]
    fn starved_high_class_borrows_downward() {
        let mut stack = ClassBuckets::unlimited();
        stack.set(PriorityClass::CallSetup, TokenBucket::new(10.0, 1.0));
        stack.set(PriorityClass::Registration, TokenBucket::new(10.0, 1.0));
        stack.set(PriorityClass::Query, TokenBucket::new(10.0, 1.0));
        stack.set(PriorityClass::Provisioning, TokenBucket::new(10.0, 1.0));
        // Four call setups at t=0: own token, then borrowed from each
        // lower class in priority order; the fifth is rate-shed.
        for _ in 0..4 {
            assert!(stack.admit(PriorityClass::CallSetup, at(0)));
        }
        assert!(!stack.admit(PriorityClass::CallSetup, at(0)));
        // Every lower class is exhausted too — no inversion.
        for class in [
            PriorityClass::Registration,
            PriorityClass::Query,
            PriorityClass::Provisioning,
        ] {
            assert!(!stack.would_admit(class, at(0)));
            assert!(!stack.admit(class, at(0)));
        }
        // Emergency has no bucket: still admitted.
        assert!(stack.admit(PriorityClass::Emergency, at(0)));
    }

    #[test]
    fn isolated_admission_never_borrows() {
        let mut stack = ClassBuckets::unlimited();
        stack.set(PriorityClass::Registration, TokenBucket::new(10.0, 1.0));
        stack.set(PriorityClass::Query, TokenBucket::new(10.0, 1.0));
        assert!(stack.admit_isolated(PriorityClass::Registration, at(0)));
        // Registration budget is dry; the borrowing walk would have
        // taken Query's token, the isolated check must not.
        assert!(!stack.would_admit_isolated(PriorityClass::Registration, at(0)));
        assert!(!stack.admit_isolated(PriorityClass::Registration, at(0)));
        assert!(stack.would_admit_isolated(PriorityClass::Query, at(0)));
        assert!(stack.admit_isolated(PriorityClass::Query, at(0)));
        // An unbucketed class stays uncapped.
        assert!(stack.admit_isolated(PriorityClass::Emergency, at(0)));
    }

    #[test]
    fn lower_classes_cannot_borrow_upward() {
        let mut stack = ClassBuckets::unlimited();
        stack.set(PriorityClass::Provisioning, TokenBucket::new(10.0, 1.0));
        assert!(stack.admit(PriorityClass::Provisioning, at(0)));
        // Provisioning is exhausted; CallSetup (unbucketed) is not
        // affected, and Provisioning cannot reach upward for tokens.
        assert!(!stack.admit(PriorityClass::Provisioning, at(0)));
        assert!(stack.admit(PriorityClass::CallSetup, at(0)));
    }
}
