//! The QoS knob set of one deployment.

use udr_model::error::{UdrError, UdrResult};
use udr_model::procedures::ProcedureKind;
use udr_model::qos::PriorityClass;
use udr_model::time::SimDuration;

use crate::admission::AdmissionController;
use crate::bucket::{ClassBuckets, TokenBucket};

/// A per-class rate ceiling: `rate` ops/s sustained, `burst` ops of
/// headroom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained admission rate (ops per second).
    pub rate: f64,
    /// Burst capacity (ops).
    pub burst: f64,
}

/// Admission-control configuration of one deployment. The default is
/// [`QosConfig::disabled`]: the controller admits everything and the
/// system behaves exactly as it did before the subsystem existed.
#[derive(Debug, Clone, PartialEq)]
pub struct QosConfig {
    /// Master switch; everything below is inert while `false`.
    pub enabled: bool,
    /// Per-procedure-kind priority overrides (e.g. promote `CallSetupMo`
    /// to [`PriorityClass::Emergency`] for an emergency-call FE). Kinds
    /// not listed use [`PriorityClass::for_procedure`].
    pub overrides: Vec<(ProcedureKind, PriorityClass)>,
    /// Per-class rate ceilings, indexed by [`PriorityClass::rank`];
    /// `None` = not rate-limited. A starved class borrows from
    /// lower-priority buckets before being shed (see
    /// [`ClassBuckets::admit`]).
    pub rates: [Option<RateLimit>; PriorityClass::ALL.len()],
    /// Queue-delay target of the *lowest* class (CoDel's `target`): the
    /// station queueing delay above which provisioning traffic starts
    /// being shed. Each class up the order tolerates twice the delay of
    /// the class below it (see [`QosConfig::class_target`]).
    pub shed_target: SimDuration,
    /// How long the measured delay must stay above a class's target
    /// before that class is actually shed (CoDel's `interval` — absorbs
    /// transient bursts that would drain on their own).
    pub shed_interval: SimDuration,
    /// Whether sustained overload may downgrade guarded read policies
    /// (`BoundedStaleness`/`SessionConsistent`) to `NearestCopy` — the
    /// PACELC "else" leg flipped live, always recorded in
    /// `GuaranteeTracker` as an explicit policy downgrade.
    pub adaptive_degradation: bool,
    /// How long the controller must have been shedding before the
    /// degradation kicks in.
    pub degrade_after: SimDuration,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig::disabled()
    }
}

impl QosConfig {
    /// Admission control off: every operation admitted, no degradation.
    pub fn disabled() -> Self {
        QosConfig {
            enabled: false,
            overrides: Vec::new(),
            rates: [None, None, None, None, None],
            shed_target: SimDuration::from_micros(500),
            shed_interval: SimDuration::from_millis(100),
            adaptive_degradation: false,
            degrade_after: SimDuration::from_secs(2),
        }
    }

    /// Overload protection on with the default targets, no rate
    /// ceilings, and adaptive degradation enabled.
    pub fn protective() -> Self {
        QosConfig {
            enabled: true,
            adaptive_degradation: true,
            ..QosConfig::disabled()
        }
    }

    /// Builder: install a rate ceiling for `class`.
    pub fn with_rate_limit(mut self, class: PriorityClass, rate: f64, burst: f64) -> Self {
        self.rates[class.rank()] = Some(RateLimit { rate, burst });
        self
    }

    /// Builder: override the priority class of a procedure kind.
    pub fn with_override(mut self, kind: ProcedureKind, class: PriorityClass) -> Self {
        self.overrides.retain(|(k, _)| *k != kind);
        self.overrides.push((kind, class));
        self
    }

    /// The priority class of a front-end procedure under this
    /// configuration (override, else the built-in mapping).
    pub fn class_for(&self, kind: ProcedureKind) -> PriorityClass {
        self.overrides
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, class)| *class)
            .unwrap_or_else(|| PriorityClass::for_procedure(kind))
    }

    /// The queue-delay target of a class: [`QosConfig::shed_target`] for
    /// the lowest class, scaled up the priority order — provisioning 1×,
    /// query 2×, registration 4×, call setup 16×, emergency 64×. Targets
    /// are strictly monotone (the lowest classes are always cut first),
    /// and the deliberately wide gap between registration and call setup
    /// keeps established-service traffic clear of the delay band where a
    /// registration storm is being shed.
    pub fn class_target(&self, class: PriorityClass) -> SimDuration {
        const MULTIPLIERS: [u64; PriorityClass::ALL.len()] = [64, 16, 4, 2, 1];
        self.shed_target * MULTIPLIERS[class.rank()]
    }

    /// Validate the knob set.
    pub fn validate(&self) -> UdrResult<()> {
        if !self.enabled {
            return Ok(());
        }
        if self.shed_target.is_zero() {
            return Err(UdrError::Config("qos shed_target must be non-zero".into()));
        }
        if self.shed_interval.is_zero() {
            return Err(UdrError::Config(
                "qos shed_interval must be non-zero".into(),
            ));
        }
        if self.adaptive_degradation && self.degrade_after.is_zero() {
            return Err(UdrError::Config(
                "qos degrade_after must be non-zero when adaptive degradation is on".into(),
            ));
        }
        for (rank, limit) in self.rates.iter().enumerate() {
            if let Some(RateLimit { rate, burst }) = limit {
                let rate_ok = rate.is_finite() && *rate > 0.0;
                let burst_ok = burst.is_finite() && *burst >= 1.0;
                if !rate_ok || !burst_ok {
                    return Err(UdrError::Config(format!(
                        "qos rate limit for {} needs rate > 0 and burst >= 1 (got {rate}, {burst})",
                        PriorityClass::ALL[rank]
                    )));
                }
            }
        }
        Ok(())
    }

    /// Build the per-class bucket stack this configuration describes.
    pub(crate) fn buckets(&self) -> ClassBuckets {
        let mut stack = ClassBuckets::unlimited();
        for (rank, limit) in self.rates.iter().enumerate() {
            if let Some(RateLimit { rate, burst }) = limit {
                stack.set(PriorityClass::ALL[rank], TokenBucket::new(*rate, *burst));
            }
        }
        stack
    }

    /// Build an [`AdmissionController`] for one cluster.
    pub fn controller(&self) -> AdmissionController {
        AdmissionController::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_valid() {
        let cfg = QosConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn class_targets_grow_strictly_up_the_order() {
        let cfg = QosConfig::protective();
        let t = |c| cfg.class_target(c);
        assert_eq!(t(PriorityClass::Provisioning), cfg.shed_target);
        assert_eq!(t(PriorityClass::Query), cfg.shed_target * 2);
        assert_eq!(t(PriorityClass::Registration), cfg.shed_target * 4);
        assert_eq!(t(PriorityClass::CallSetup), cfg.shed_target * 16);
        assert_eq!(t(PriorityClass::Emergency), cfg.shed_target * 64);
        // Strict monotonicity is what makes inversion impossible.
        for pair in PriorityClass::ALL.windows(2) {
            assert!(t(pair[0]) > t(pair[1]), "{} vs {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn overrides_beat_the_builtin_mapping() {
        let cfg = QosConfig::protective()
            .with_override(ProcedureKind::CallSetupMo, PriorityClass::Emergency)
            .with_override(ProcedureKind::CallSetupMo, PriorityClass::Emergency);
        assert_eq!(
            cfg.class_for(ProcedureKind::CallSetupMo),
            PriorityClass::Emergency
        );
        assert_eq!(
            cfg.class_for(ProcedureKind::CallSetupMt),
            PriorityClass::CallSetup
        );
        assert_eq!(cfg.overrides.len(), 1, "re-override replaces, not stacks");
    }

    #[test]
    fn validation_catches_bad_knobs() {
        let mut cfg = QosConfig::protective();
        cfg.shed_target = SimDuration::ZERO;
        assert!(cfg.validate().is_err());

        let bad_rate = QosConfig::protective().with_rate_limit(PriorityClass::Query, 0.0, 4.0);
        assert!(bad_rate.validate().is_err());

        let bad_burst = QosConfig::protective().with_rate_limit(PriorityClass::Query, 100.0, 0.5);
        assert!(bad_burst.validate().is_err());

        // Disabled configs are never rejected: the knobs are inert.
        let mut off = QosConfig::disabled();
        off.shed_target = SimDuration::ZERO;
        assert!(off.validate().is_ok());
    }
}
