//! # udr-qos
//!
//! Admission control and overload protection for the UDR front door.
//!
//! The paper's availability story assumes the UDR stays *up* under
//! telecom signalling load, but real HLR/HSS deployments die to overload,
//! not to partitions: a site outage triggers mass re-registration, the
//! retry traffic of failed procedures re-enters the offered load, and the
//! system settles into a metastable state where it spends all capacity on
//! work that times out anyway. This crate is the missing layer between
//! the workload and the four-stage pipeline:
//!
//! * [`PriorityClass`] — per-procedure-kind priority (re-exported from
//!   `udr-model`, where `UdrError::Shed` carries it): emergency traffic
//!   outranks call setup outranks registration outranks queries outranks
//!   provisioning;
//! * [`TokenBucket`] / [`ClassBuckets`] — per-class rate ceilings where a
//!   starved high-priority class borrows budget downward before ever
//!   being shed (no priority inversion by construction);
//! * [`AdmissionController`] — one per blade cluster: combines the rate
//!   ceilings with CoDel-style queue-delay shedding (measure the LDAP
//!   station's queueing delay against per-class targets; sustained
//!   excess sheds the lowest classes first) and drives the adaptive
//!   consistency degradation of sustained overload;
//! * [`QosConfig`] — the knob set, disabled by default so existing
//!   deployments behave exactly as before.

#![warn(missing_docs)]

pub mod admission;
pub mod bucket;
pub mod config;

pub use admission::AdmissionController;
pub use bucket::{ClassBuckets, TokenBucket};
pub use config::{QosConfig, RateLimit};
pub use udr_model::qos::{PriorityClass, ShedReason};
