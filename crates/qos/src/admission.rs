//! The per-cluster admission controller: rate ceilings + CoDel-style
//! queue-delay shedding + the sustained-overload degradation signal.

use udr_model::qos::{PriorityClass, ShedReason};
use udr_model::time::SimTime;

use crate::bucket::ClassBuckets;
use crate::config::QosConfig;

/// One cluster's admission controller.
///
/// Every operation entering the access stage presents its priority class
/// and the queueing delay the serving LDAP station would impose. The
/// controller decides admit/shed in two steps:
///
/// 1. **Delay shedding** — CoDel-flavoured: while the measured delay
///    stays at or below the lowest class's target the queue is healthy
///    and all state clears. Once it exceeds a class's own target *and*
///    has been above the base target for longer than the grace interval,
///    that class is shed ([`ShedReason::QueueDelay`]). Targets grow
///    strictly up the priority order, so the lowest classes are always
///    cut first and a class is never shed at a delay a lower class
///    would survive. A delay-shed op consumes **no** rate budget.
/// 2. **Rate ceilings** — the class takes a token from its
///    [`ClassBuckets`] stack (borrowing downward when starved); an
///    exhausted stack is [`ShedReason::RateLimit`].
///
/// Sustained shedding (longer than `degrade_after`) raises the
/// [`AdmissionController::degraded`] signal, which the replication stage
/// uses to downgrade guarded read policies to nearest-copy — trading
/// consistency for latency *under load*, the PACELC "else" leg applied
/// dynamically.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    cfg: QosConfig,
    buckets: ClassBuckets,
    /// Since when the measured delay has been exceeding the base
    /// (lowest-class) target; `None` = queue healthy.
    above_since: Option<SimTime>,
    /// Since when the measured delay has been at/below the base target —
    /// the exit hysteresis: one low sample (an op that raced ahead of
    /// the backlog, a momentary dip) must not clear an overload episode;
    /// the queue has to stay drained for a full grace interval.
    below_since: Option<SimTime>,
    /// Since when the controller has actually been delay-shedding.
    shedding_since: Option<SimTime>,
    /// Since when rate ceilings have been refusing tokens; cleared the
    /// moment a bucket admit succeeds again.
    rate_shed_since: Option<SimTime>,
    /// Instant of the last observed sample (admitted or shed). Seeds
    /// `below_since` so that an idle gap — no traffic at all — counts as
    /// drained time: the first low sample after a long gap clears the
    /// episode instead of restarting the hysteresis clock from scratch.
    last_sample: Option<SimTime>,
}

impl AdmissionController {
    /// A controller for one cluster under `cfg`.
    pub fn new(cfg: QosConfig) -> Self {
        let buckets = cfg.buckets();
        AdmissionController {
            cfg,
            buckets,
            above_since: None,
            below_since: None,
            shedding_since: None,
            rate_shed_since: None,
            last_sample: None,
        }
    }

    /// The configuration the controller runs under.
    pub fn config(&self) -> &QosConfig {
        &self.cfg
    }

    /// Decide admission for one `class` operation arriving at `now` that
    /// would wait `queue_delay` at the serving station.
    pub fn admit(
        &mut self,
        class: PriorityClass,
        queue_delay: udr_model::time::SimDuration,
        now: SimTime,
    ) -> Result<(), ShedReason> {
        if !self.cfg.enabled {
            return Ok(());
        }
        let prev_sample = self.last_sample.replace(now);
        // Delay shedding first: an op the queue is about to refuse must
        // not consume rate budget (its own, or budget borrowed from a
        // lower class's bucket).
        if queue_delay <= self.cfg.shed_target {
            // Low sample: the overload episode only ends once the queue
            // stays drained for a full grace interval (exit hysteresis —
            // a lone op that raced ahead of the backlog must not reset
            // the episode). The drain clock seeds from the *previous*
            // sample instant: nothing was queued across an idle gap, so
            // the gap itself counts as drained time and the first low
            // sample after it can clear the episode outright.
            let below = *self.below_since.get_or_insert(prev_sample.unwrap_or(now));
            if now.duration_since(below) >= self.cfg.shed_interval {
                self.above_since = None;
                self.shedding_since = None;
            }
        } else {
            self.below_since = None;
            let since = *self.above_since.get_or_insert(now);
            let in_grace = now.duration_since(since) < self.cfg.shed_interval;
            if queue_delay > self.cfg.class_target(class) && !in_grace {
                self.shedding_since.get_or_insert(now);
                return Err(ShedReason::QueueDelay);
            }
        }
        if !self.buckets.admit(class, now) {
            self.rate_shed_since.get_or_insert(now);
            return Err(ShedReason::RateLimit);
        }
        self.rate_shed_since = None;
        Ok(())
    }

    /// Whether `class` would currently be admitted, without consuming a
    /// token or advancing any state — the priority-inversion audit: after
    /// shedding class `c`, no class `c` outranks may answer `true` here.
    pub fn would_admit(
        &self,
        class: PriorityClass,
        queue_delay: udr_model::time::SimDuration,
        now: SimTime,
    ) -> bool {
        if !self.cfg.enabled {
            return true;
        }
        if !self.buckets.would_admit(class, now) {
            return false;
        }
        if queue_delay <= self.cfg.shed_target || queue_delay <= self.cfg.class_target(class) {
            return true;
        }
        match self.above_since {
            None => true,
            Some(since) => now.duration_since(since) < self.cfg.shed_interval,
        }
    }

    /// Whether the controller is currently shedding at all — by queue
    /// delay *or* by rate ceiling. A pure rate-limit storm (healthy
    /// queue, exhausted buckets) is overload too.
    pub fn is_shedding(&self) -> bool {
        self.shedding_since.is_some() || self.rate_shed_since.is_some()
    }

    /// Since when the controller has been shedding for any reason.
    fn shedding_start(&self) -> Option<SimTime> {
        match (self.shedding_since, self.rate_shed_since) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Whether sustained overload has reached the point where guarded
    /// read policies downgrade to nearest-copy. Rate-limit shedding
    /// counts: a retry storm held off purely by token buckets is still
    /// sustained overload.
    pub fn degraded(&self, now: SimTime) -> bool {
        self.cfg.enabled
            && self.cfg.adaptive_degradation
            && self
                .shedding_start()
                .is_some_and(|since| now.duration_since(since) >= self.cfg.degrade_after)
    }

    /// Compact label of the controller's overload state at `now` —
    /// `"healthy"`, `"shedding"` or `"degraded"`. Pure inspection (a
    /// deterministic function of the admit history), used to annotate
    /// trace records without exposing the internal clocks.
    pub fn pressure_label(&self, now: SimTime) -> &'static str {
        if self.degraded(now) {
            "degraded"
        } else if self.is_shedding() {
            "shedding"
        } else {
            "healthy"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udr_model::time::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// Protective config with a 1 ms base target and 10 ms grace.
    fn controller() -> AdmissionController {
        let mut cfg = QosConfig::protective();
        cfg.shed_target = ms(1);
        cfg.shed_interval = ms(10);
        cfg.degrade_after = ms(50);
        cfg.controller()
    }

    #[test]
    fn disabled_controller_admits_everything() {
        let mut c = QosConfig::disabled().controller();
        for class in PriorityClass::ALL {
            assert!(c.admit(class, ms(10_000), at(0)).is_ok());
        }
        assert!(!c.degraded(at(1_000_000)));
    }

    #[test]
    fn healthy_queue_admits_all_classes() {
        let mut c = controller();
        for class in PriorityClass::ALL {
            assert!(c.admit(class, ms(1), at(0)).is_ok());
        }
        assert!(!c.is_shedding());
    }

    #[test]
    fn sustained_delay_sheds_lowest_classes_first() {
        let mut c = controller();
        // 3 ms delay: above provisioning (1 ms) and query (2 ms) targets,
        // below registration (4 ms). Grace absorbs the first 10 ms.
        assert!(c.admit(PriorityClass::Provisioning, ms(3), at(0)).is_ok());
        assert!(c.admit(PriorityClass::Provisioning, ms(3), at(5)).is_ok());
        // Past the grace interval: provisioning and query shed,
        // registration and above still admitted.
        assert_eq!(
            c.admit(PriorityClass::Provisioning, ms(3), at(12)),
            Err(ShedReason::QueueDelay)
        );
        assert_eq!(
            c.admit(PriorityClass::Query, ms(3), at(12)),
            Err(ShedReason::QueueDelay)
        );
        assert!(c.admit(PriorityClass::Registration, ms(3), at(12)).is_ok());
        assert!(c.admit(PriorityClass::CallSetup, ms(3), at(12)).is_ok());
        assert!(c.admit(PriorityClass::Emergency, ms(3), at(12)).is_ok());
        assert!(c.is_shedding());
        // One low sample is admitted but does NOT end the episode (exit
        // hysteresis): the queue must stay drained for a grace interval.
        assert!(c.admit(PriorityClass::Provisioning, ms(1), at(20)).is_ok());
        assert!(c.is_shedding());
        assert!(c.admit(PriorityClass::Provisioning, ms(1), at(31)).is_ok());
        assert!(
            !c.is_shedding(),
            "11 ms of drained queue clears the episode"
        );
    }

    #[test]
    fn lone_low_sample_does_not_reset_the_episode() {
        let mut c = controller();
        let _ = c.admit(PriorityClass::Provisioning, ms(8), at(0));
        assert_eq!(
            c.admit(PriorityClass::Provisioning, ms(8), at(12)),
            Err(ShedReason::QueueDelay)
        );
        // An op that raced ahead of the backlog sees a momentary 0 —
        // overload continues around it.
        assert!(c.admit(PriorityClass::Provisioning, ms(0), at(13)).is_ok());
        assert_eq!(
            c.admit(PriorityClass::Provisioning, ms(8), at(14)),
            Err(ShedReason::QueueDelay),
            "the episode must survive a lone low sample"
        );
        assert!(c.is_shedding());
    }

    #[test]
    fn no_priority_inversion_across_the_delay_sweep() {
        let mut c = controller();
        // Drive the controller into shedding.
        let _ = c.admit(PriorityClass::Provisioning, ms(20), at(0));
        for delay_ms in [1u64, 2, 3, 5, 9, 17, 33] {
            let now = at(50 + delay_ms);
            for (hi_idx, hi) in PriorityClass::ALL.iter().enumerate() {
                if !c.would_admit(*hi, ms(delay_ms), now) {
                    for lo in &PriorityClass::ALL[hi_idx + 1..] {
                        assert!(
                            !c.would_admit(*lo, ms(delay_ms), now),
                            "{lo} admitted at {delay_ms} ms while {hi} shed"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degradation_needs_sustained_shedding() {
        let mut c = controller();
        let _ = c.admit(PriorityClass::Provisioning, ms(20), at(0));
        // Shedding starts once the grace interval elapses.
        assert_eq!(
            c.admit(PriorityClass::Provisioning, ms(20), at(15)),
            Err(ShedReason::QueueDelay)
        );
        assert!(!c.degraded(at(16)), "degradation has its own fuse");
        assert!(c.degraded(at(70)), "sustained shedding degrades");
        // Keep traffic continuous so the drain clock starts at the last
        // overloaded sample: a sustained drain (low samples spanning the
        // grace interval) then clears the degradation too.
        let _ = c.admit(PriorityClass::Provisioning, ms(20), at(75));
        assert!(c.admit(PriorityClass::Provisioning, ms(0), at(80)).is_ok());
        assert!(c.degraded(at(81)), "one low sample is not a drain");
        assert!(c.admit(PriorityClass::Provisioning, ms(0), at(95)).is_ok());
        assert!(!c.degraded(at(96)));
    }

    #[test]
    fn idle_gap_counts_as_drained_time() {
        let mut c = controller();
        // Drive the controller into shedding, then go completely idle.
        let _ = c.admit(PriorityClass::Provisioning, ms(20), at(0));
        assert_eq!(
            c.admit(PriorityClass::Provisioning, ms(20), at(12)),
            Err(ShedReason::QueueDelay)
        );
        assert!(c.is_shedding());
        // Nothing was queued for 500 ms — the first low sample after the
        // gap proves the queue drained long ago and ends the episode
        // immediately, instead of demanding another full grace interval
        // of post-gap traffic.
        assert!(c.admit(PriorityClass::Provisioning, ms(0), at(512)).is_ok());
        assert!(!c.is_shedding(), "idle gap must clear the episode");
        assert!(!c.degraded(at(512)));
    }

    #[test]
    fn rate_limit_storms_count_as_shedding_and_degrade() {
        let mut cfg =
            QosConfig::protective().with_rate_limit(PriorityClass::Provisioning, 1.0, 1.0);
        cfg.degrade_after = ms(50);
        let mut c = cfg.controller();
        assert!(c.admit(PriorityClass::Provisioning, ms(0), at(0)).is_ok());
        assert!(!c.is_shedding());
        // The bucket is dry: every refusal from here on is overload even
        // though the queue itself is healthy.
        assert_eq!(
            c.admit(PriorityClass::Provisioning, ms(0), at(1)),
            Err(ShedReason::RateLimit)
        );
        assert!(c.is_shedding(), "rate-limit shedding is shedding");
        assert!(!c.degraded(at(2)), "degradation still has its fuse");
        assert_eq!(
            c.admit(PriorityClass::Provisioning, ms(0), at(40)),
            Err(ShedReason::RateLimit)
        );
        assert!(c.degraded(at(60)), "a sustained token drought degrades");
        // One refill later the bucket admits again and the episode ends.
        assert!(c
            .admit(PriorityClass::Provisioning, ms(0), at(2_000))
            .is_ok());
        assert!(!c.is_shedding());
        assert!(!c.degraded(at(2_000)));
    }

    #[test]
    fn delay_shed_consumes_no_rate_budget() {
        let mut cfg = QosConfig::protective()
            .with_rate_limit(PriorityClass::Registration, 10.0, 1.0)
            .with_rate_limit(PriorityClass::Query, 10.0, 1.0)
            .with_rate_limit(PriorityClass::Provisioning, 10.0, 1.0);
        cfg.shed_target = ms(1);
        cfg.shed_interval = ms(10);
        let mut c = cfg.controller();
        // Drive registration into delay shedding; none of these may take
        // a token from any bucket.
        let _ = c.admit(PriorityClass::Registration, ms(30), at(0));
        for i in 0..20 {
            assert_eq!(
                c.admit(PriorityClass::Registration, ms(30), at(12 + i)),
                Err(ShedReason::QueueDelay)
            );
        }
        // The budgets are intact up to the one grace-period admit at
        // t=0: borrowed query and provisioning tokens still admit at a
        // healthy delay, then the stack is genuinely dry.
        assert!(c.admit(PriorityClass::Registration, ms(0), at(33)).is_ok());
        assert!(c.admit(PriorityClass::Registration, ms(0), at(33)).is_ok());
        assert_eq!(
            c.admit(PriorityClass::Registration, ms(0), at(33)),
            Err(ShedReason::RateLimit)
        );
    }

    #[test]
    fn rate_limits_report_their_own_reason() {
        let cfg = QosConfig::protective()
            .with_rate_limit(PriorityClass::Provisioning, 10.0, 1.0)
            .with_rate_limit(PriorityClass::Query, 10.0, 1.0);
        let mut c = cfg.controller();
        assert!(c.admit(PriorityClass::Provisioning, ms(0), at(0)).is_ok());
        assert_eq!(
            c.admit(PriorityClass::Provisioning, ms(0), at(0)),
            Err(ShedReason::RateLimit)
        );
        // Query borrows nothing from above but still has its own token.
        assert!(c.admit(PriorityClass::Query, ms(0), at(0)).is_ok());
        // CallSetup (unbucketed) is never rate-shed.
        assert!(c.admit(PriorityClass::CallSetup, ms(0), at(0)).is_ok());
    }
}
