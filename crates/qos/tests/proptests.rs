//! Property tests for the admission-control subsystem.
//!
//! The two invariants the ISSUE demands:
//! 1. a [`TokenBucket`] never admits more than `rate × window + burst`
//!    operations over *any* window, for arbitrary arrival patterns;
//! 2. a starved high-priority class is never shed while a lower class is
//!    admitted — no priority inversion, for arbitrary bucket layouts,
//!    delays and arrival orders.

use proptest::prelude::*;

use udr_model::time::{SimDuration, SimTime};
use udr_qos::{AdmissionController, ClassBuckets, PriorityClass, QosConfig, TokenBucket};

proptest! {
    /// Over any window of the arrival sequence, admitted ops never
    /// exceed `rate × window + burst` (+1 for the token that may have
    /// been whole at the window's opening instant boundary).
    #[test]
    fn bucket_rate_bound_holds_on_every_window(
        rate in 1.0f64..500.0,
        burst in 1.0f64..20.0,
        // Arrival gaps in 100 µs units; bursts of zero-gap arrivals
        // included.
        gaps in prop::collection::vec(0u64..50, 1..300),
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        let mut admitted_at: Vec<SimTime> = Vec::new();
        let mut now = SimTime::ZERO;
        for gap in &gaps {
            now += SimDuration::from_micros(gap * 100);
            if bucket.try_take(now) {
                admitted_at.push(now);
            }
        }
        // Check the bound over every suffix window starting at an
        // admission instant (the binding windows).
        for (i, start) in admitted_at.iter().enumerate() {
            for (j, end) in admitted_at.iter().enumerate().skip(i) {
                let window = end.duration_since(*start).as_secs_f64();
                let count = (j - i + 1) as f64;
                let bound = rate * window + burst;
                // Float slack: refill accounting is f64 arithmetic.
                prop_assert!(
                    count <= bound + 1e-6,
                    "{count} admitted in a {window}s window; bound {bound}"
                );
            }
        }
    }

    /// The borrowing walk preserves the per-bucket bound: tokens leaving
    /// any single bucket over a window obey that bucket's own budget no
    /// matter which class took them.
    #[test]
    fn class_stack_respects_every_buckets_budget(
        rates in prop::collection::vec(1.0f64..200.0, 5),
        bursts in prop::collection::vec(1.0f64..10.0, 5),
        arrivals in prop::collection::vec((0u64..40, 0usize..5), 1..300),
    ) {
        let mut stack = ClassBuckets::unlimited();
        for (i, class) in PriorityClass::ALL.iter().enumerate() {
            stack.set(*class, TokenBucket::new(rates[i], bursts[i]));
        }
        let mut admitted = 0u64;
        let mut now = SimTime::ZERO;
        let mut first: Option<SimTime> = None;
        for (gap, class_idx) in &arrivals {
            now += SimDuration::from_micros(gap * 100);
            if stack.admit(PriorityClass::ALL[*class_idx], now) {
                admitted += 1;
                first.get_or_insert(now);
            }
        }
        if let Some(first) = first {
            let window = now.duration_since(first).as_secs_f64();
            let total_rate: f64 = rates.iter().sum();
            let total_burst: f64 = bursts.iter().sum();
            prop_assert!(
                admitted as f64 <= total_rate * window + total_burst + 5.0 + 1e-6,
                "{admitted} admitted over {window}s exceeds the aggregate budget"
            );
        }
    }

    /// No priority inversion, ever: whenever the controller sheds class
    /// `c`, every class `c` outranks is shed under the same conditions.
    #[test]
    fn starved_high_class_is_never_shed_while_lower_admitted(
        // Which classes get buckets, and how tight.
        bucketed in prop::collection::vec(any::<bool>(), 5),
        rates in prop::collection::vec(1.0f64..100.0, 5),
        // Arrival stream: (gap ms, class, measured queue delay µs).
        arrivals in prop::collection::vec(
            (0u64..30, 0usize..5, 0u64..20_000),
            1..400,
        ),
    ) {
        let mut cfg = QosConfig::protective();
        cfg.shed_target = SimDuration::from_micros(500);
        cfg.shed_interval = SimDuration::from_millis(20);
        for (i, class) in PriorityClass::ALL.iter().enumerate() {
            if bucketed[i] {
                cfg = cfg.with_rate_limit(*class, rates[i], 2.0);
            }
        }
        let mut controller: AdmissionController = cfg.controller();
        let mut now = SimTime::ZERO;
        for (gap, class_idx, delay_us) in &arrivals {
            now += SimDuration::from_millis(*gap);
            let class = PriorityClass::ALL[*class_idx];
            let delay = SimDuration::from_micros(*delay_us);
            // Audit BEFORE the mutating admit: at one instant, a class
            // being refused implies every lower class is refused too.
            let verdicts: Vec<bool> = PriorityClass::ALL
                .iter()
                .map(|c| controller.would_admit(*c, delay, now))
                .collect();
            for hi in 0..verdicts.len() {
                for lo in hi + 1..verdicts.len() {
                    prop_assert!(
                        verdicts[hi] || !verdicts[lo],
                        "inversion: {} shed while {} admitted (delay {delay_us} µs)",
                        PriorityClass::ALL[hi],
                        PriorityClass::ALL[lo],
                    );
                }
            }
            // The real decision must agree with its own peek.
            let decided = controller.admit(class, delay, now).is_ok();
            prop_assert_eq!(
                decided, verdicts[*class_idx],
                "would_admit disagreed with admit for {}", class
            );
        }
    }

    /// Per-tenant budget stacks never lend across tenants: tenant B's
    /// isolated admissions are byte-identical whether or not tenant A
    /// hammers its own stack in between. (The shared-cluster `admit`
    /// borrows downward; `admit_isolated` must not, and one tenant's
    /// stack must never see another's arrivals at all.)
    #[test]
    fn tenant_buckets_never_lend_across_tenants(
        rates in prop::collection::vec(1.0f64..200.0, 5),
        bursts in prop::collection::vec(1.0f64..10.0, 5),
        // Arrival stream: (gap 100µs units, class, which tenant).
        arrivals in prop::collection::vec(
            (0u64..40, 0usize..5, any::<bool>()),
            1..300,
        ),
    ) {
        let build = || {
            let mut stack = ClassBuckets::unlimited();
            for (i, class) in PriorityClass::ALL.iter().enumerate() {
                stack.set(*class, TokenBucket::new(rates[i], bursts[i]));
            }
            stack
        };
        // Interleaved run: two tenants, each with its own stack.
        let mut stack_a = build();
        let mut stack_b = build();
        let mut b_interleaved = Vec::new();
        let mut now = SimTime::ZERO;
        for (gap, class_idx, is_b) in &arrivals {
            now += SimDuration::from_micros(gap * 100);
            let class = PriorityClass::ALL[*class_idx];
            if *is_b {
                let peek = stack_b.would_admit_isolated(class, now);
                let decided = stack_b.admit_isolated(class, now);
                prop_assert_eq!(peek, decided, "peek must agree with the decision");
                b_interleaved.push(decided);
            } else {
                stack_a.admit_isolated(class, now);
            }
        }
        // Solo run: tenant B alone sees the identical verdict sequence.
        let mut solo_b = build();
        let mut b_solo = Vec::new();
        let mut now = SimTime::ZERO;
        for (gap, class_idx, is_b) in &arrivals {
            now += SimDuration::from_micros(gap * 100);
            if *is_b {
                b_solo.push(solo_b.admit_isolated(PriorityClass::ALL[*class_idx], now));
            }
        }
        prop_assert_eq!(b_solo, b_interleaved, "tenant A's arrivals leaked into B's budget");
    }
}
