//! Cross-crate integration tests through the umbrella crate: workload
//! generators driving the assembled UDR, checked against the paper's
//! qualitative claims.

use udr::core::{OpRequest, Udr, UdrConfig};
use udr::model::ids::SiteId;
use udr::model::{
    AttrId, AttrMod, AttrValue, Identity, ProcedureKind, ReplicationMode, SimDuration, SimTime,
    TxnClass,
};
use udr::sim::{FaultSchedule, SimRng};
use udr::workload::{OutageProcess, PopulationBuilder, TrafficModel};

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// Build a Figure 2 UDR with a provisioned population.
fn system(n: u64, seed: u64) -> (Udr, Vec<udr::workload::Subscriber>) {
    let mut cfg = UdrConfig::figure2();
    cfg.seed = seed;
    let mut udr = Udr::build(cfg).unwrap();
    let mut rng = SimRng::seed_from_u64(seed);
    let population = PopulationBuilder::new(3).build(n, &mut rng);
    let mut at = t(0) + SimDuration::from_millis(1);
    for sub in &population {
        let out = udr.provision_subscriber(&sub.ids, sub.home_region, SiteId(0), at);
        assert!(out.is_ok(), "{:?}", out.op.result);
        at += SimDuration::from_millis(2);
    }
    (udr, population)
}

#[test]
fn generated_traffic_runs_clean_on_healthy_network() {
    let (mut udr, population) = system(120, 1);
    let model = TrafficModel::flat(0.02, 3);
    let mut rng = SimRng::seed_from_u64(2);
    let events = model.generate(&population, t(10), t(70), &mut rng);
    assert!(events.len() > 50);
    for ev in &events {
        let sub = &population[ev.subscriber];
        let out = udr
            .execute(
                OpRequest::procedure(ev.kind, &sub.ids)
                    .site(ev.fe_site)
                    .at(ev.at),
            )
            .into_procedure();
        assert!(out.success, "{} failed: {:?}", ev.kind, out.failure);
    }
    // §2.3 requirement 4: sub-10 ms average for indexed queries.
    assert!(udr.metrics.fe_latency.mean() < SimDuration::from_millis(10));
    // Replication settles: no stale data remains after the run.
    udr.advance_to(t(200));
    let stale_before = udr.metrics.staleness.stale_reads;
    for sub in population.iter().take(20) {
        let out = udr
            .execute(
                OpRequest::procedure(ProcedureKind::CallSetupMo, &sub.ids)
                    .site(SiteId((sub.home_region + 1) % 3))
                    .at(t(201)),
            )
            .into_procedure();
        assert!(out.success);
    }
    assert_eq!(udr.metrics.staleness.stale_reads, stale_before);
}

#[test]
fn five_nines_under_realistic_outage_process() {
    // SE MTBF 2 h, MTTR 2 min, RF 3: structural data availability should
    // far exceed a single element's ~98.4 %.
    let (mut udr, _) = system(60, 3);
    let process = OutageProcess {
        mtbf: SimDuration::from_hours(2),
        mttr: SimDuration::from_mins(2),
    };
    let mut rng = SimRng::seed_from_u64(4);
    let horizon = t(24 * 3600);
    udr.schedule_faults(process.schedule(3, horizon, &mut rng));

    // Integrate structural readability in 60 s steps.
    let mut readable_seconds = 0.0f64;
    let mut total_seconds = 0.0f64;
    let mut at = t(0);
    while at < horizon {
        udr.advance_to(at);
        readable_seconds += 60.0 * udr.readable_subscriber_fraction(SiteId(0));
        total_seconds += 60.0;
        at += SimDuration::from_secs(60);
    }
    let availability = readable_seconds / total_seconds;
    assert!(
        availability > 0.99999,
        "replicated availability {availability} below five nines"
    );
}

#[test]
fn multimaster_traffic_through_partition_converges_everywhere() {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.replication = ReplicationMode::MultiMaster;
    cfg.seed = 5;
    let mut udr = Udr::build(cfg).unwrap();
    let mut rng = SimRng::seed_from_u64(5);
    let population = PopulationBuilder::new(3).build(60, &mut rng);
    let mut at = t(0) + SimDuration::from_millis(1);
    for sub in &population {
        assert!(udr
            .provision_subscriber(&sub.ids, sub.home_region, SiteId(0), at)
            .is_ok());
        at += SimDuration::from_millis(2);
    }
    udr.schedule_faults(FaultSchedule::new().partition(
        t(50),
        SimDuration::from_secs(60),
        [SiteId(2)],
    ));

    // Writes from both sides during the partition, to the same subscribers.
    let mut at = t(60);
    for (i, sub) in population.iter().enumerate().take(30) {
        let id = Identity::Imsi(sub.ids.imsi);
        let w0 = udr.modify_services(
            &id,
            vec![AttrMod::Set(
                AttrId::OdbMask,
                AttrValue::U64(1000 + i as u64),
            )],
            SiteId(0),
            at,
        );
        assert!(w0.is_ok(), "majority write failed: {:?}", w0.result);
        let w2 = udr.modify_services(
            &id,
            vec![AttrMod::Set(
                AttrId::OdbMask,
                AttrValue::U64(2000 + i as u64),
            )],
            SiteId(2),
            at + SimDuration::from_millis(500),
        );
        assert!(w2.is_ok(), "island write failed: {:?}", w2.result);
        at += SimDuration::from_millis(1000);
    }

    udr.advance_to(t(300));
    assert!(udr.metrics.merges > 0);
    assert!(
        udr.metrics.merge_conflicts >= 30,
        "conflicts: {}",
        udr.metrics.merge_conflicts
    );

    // Convergence: every replica of every touched partition agrees.
    for sub in population.iter().take(30) {
        let id = Identity::Imsi(sub.ids.imsi);
        let loc = udr.lookup_authority(&id).unwrap();
        let values: Vec<_> = udr
            .group(loc.partition)
            .members()
            .iter()
            .map(|se| {
                udr.se(*se)
                    .read_committed(loc.partition, loc.uid)
                    .unwrap()
                    .and_then(|e| e.get(AttrId::OdbMask).and_then(AttrValue::as_u64))
            })
            .collect();
        assert!(
            values.windows(2).all(|w| w[0] == w[1]),
            "divergent: {values:?}"
        );
        // LWW: the island write (later timestamp) won.
        assert!(values[0].unwrap() >= 2000, "unexpected winner {values:?}");
    }
}

#[test]
fn procedure_mix_is_read_mostly_and_partitions_split_by_class() {
    // §4.1's asymmetry driven by the generated mix itself.
    let (mut udr, population) = system(90, 7);
    udr.schedule_faults(FaultSchedule::new().partition(
        t(100),
        SimDuration::from_secs(100),
        [SiteId(2)],
    ));
    let model = TrafficModel::flat(0.02, 3);
    let mut rng = SimRng::seed_from_u64(8);
    let events = model.generate(&population, t(100), t(200), &mut rng);

    // Count only the partition window (drop the setup-phase provisioning).
    udr.metrics.ps_ops = Default::default();
    udr.metrics.fe_ops = Default::default();

    let mut prov_at = t(100);
    let mut prov_idx = 0usize;
    for ev in &events {
        while prov_at <= ev.at {
            let sub = &population[prov_idx % population.len()];
            udr.modify_services(
                &Identity::Imsi(sub.ids.imsi),
                vec![AttrMod::Set(
                    AttrId::CallForwarding,
                    AttrValue::Str("34600".into()),
                )],
                SiteId(0),
                prov_at,
            );
            prov_idx += 1;
            prov_at += SimDuration::from_secs(2);
        }
        let sub = &population[ev.subscriber];
        udr.execute(
            OpRequest::procedure(ev.kind, &sub.ids)
                .site(ev.fe_site)
                .at(ev.at),
        )
        .into_procedure();
    }
    let fe = udr.metrics.ops(TxnClass::FrontEnd);
    let ps = udr.metrics.ops(TxnClass::Provisioning);
    // FE ops mostly succeed; PS writes fail at roughly the share of
    // subscribers homed in the island (~1/3).
    assert!(
        fe.operational_availability() > 0.90,
        "fe {}",
        fe.operational_availability()
    );
    assert!(
        ps.operational_availability() < 0.85,
        "ps availability {} suspiciously high during partition",
        ps.operational_availability()
    );
    assert!(fe.operational_availability() > ps.operational_availability());
}

#[test]
fn deterministic_runs_with_same_seed() {
    let run = || {
        let (mut udr, population) = system(40, 11);
        let model = TrafficModel::flat(0.05, 3);
        let mut rng = SimRng::seed_from_u64(11);
        let events = model.generate(&population, t(5), t(25), &mut rng);
        for ev in &events {
            let sub = &population[ev.subscriber];
            udr.execute(
                OpRequest::procedure(ev.kind, &sub.ids)
                    .site(ev.fe_site)
                    .at(ev.at),
            )
            .into_procedure();
        }
        (
            udr.metrics.fe_ops.ok,
            udr.metrics.fe_latency.mean(),
            udr.metrics.staleness.total_reads(),
            udr.net.stats.delivered,
        )
    };
    assert_eq!(run(), run(), "same seed must reproduce the run exactly");
}

#[test]
fn umbrella_crate_reexports_are_usable() {
    // Compile-time check that the public facade exposes every layer.
    let _cfg = udr::core::UdrConfig::default();
    let _hist = udr::metrics::Histogram::new();
    let _ring = udr::dls::ConsistentHashRing::new((0..4).map(udr::model::ids::PartitionId), 8);
    let _dn = udr::ldap::Dn::parse("imsi=214011234567890,ou=subscribers,dc=udr").unwrap();
    let _rng = udr::sim::SimRng::seed_from_u64(0);
    let _cap = udr::core::CapacityModel::default();
    let engine = udr::storage::Engine::new(udr::model::ids::SeId(0));
    assert_eq!(engine.live_records(), 0);
}
