//! Integration tests for the §6 evolution path: the Paxos replication
//! substrate compared, through the umbrella crate, against the behaviour
//! of the paper's first-realization master/slave design under the same
//! partition geometry.

use udr::consensus::runtime::{ClusterConfig, ConsensusCluster};
use udr::consensus::{NodeId, Payload};
use udr::core::{Udr, UdrConfig};
use udr::model::attrs::{AttrId, AttrMod, AttrValue};
use udr::model::ids::{SiteId, SubscriberUid};
use udr::model::{Identity, SimDuration, SimTime};
use udr::sim::net::Topology;
use udr::sim::{FaultSchedule, SimRng};
use udr::storage::Engine;
use udr::workload::PopulationBuilder;

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// §3.2 vs §6: under the same island, master/slave loses provisioning
/// writes for subscribers mastered across the cut, while consensus keeps
/// the majority side fully writable and salvages the island's writes
/// after heal.
#[test]
fn consensus_beats_master_slave_on_majority_side_availability() {
    // --- master/slave through the assembled UDR -------------------------
    let mut cfg = UdrConfig::figure2();
    cfg.seed = 5;
    let mut udr = Udr::build(cfg).unwrap();
    let mut rng = SimRng::seed_from_u64(5);
    let population = PopulationBuilder::new(3).build(60, &mut rng);
    let mut at = t(0) + SimDuration::from_millis(1);
    for sub in &population {
        for _ in 0..4 {
            let out = udr.provision_subscriber(&sub.ids, sub.home_region, SiteId(0), at);
            at += SimDuration::from_millis(2);
            if out.is_ok() {
                break;
            }
        }
    }
    udr.schedule_faults(FaultSchedule::new().partition(
        t(100),
        SimDuration::from_secs(60),
        [SiteId(2)],
    ));
    let (mut ok, mut n) = (0u64, 0u64);
    let mut w = t(110);
    for (i, sub) in population.iter().enumerate() {
        let out = udr.modify_services(
            &Identity::Imsi(sub.ids.imsi),
            vec![AttrMod::Set(AttrId::OdbMask, AttrValue::U64(i as u64))],
            SiteId(0), // majority-side PS
            w,
        );
        n += 1;
        ok += out.result.is_ok() as u64;
        w += SimDuration::from_millis(200);
    }
    let ms_majority_avail = ok as f64 / n as f64;
    // Some subscribers' masters live on the islanded site: writes fail.
    assert!(
        ms_majority_avail < 0.9,
        "master/slave should lose cross-cut writes, got {ms_majority_avail}"
    );

    // --- consensus over the same 3-site geometry ------------------------
    let mut cluster =
        ConsensusCluster::new(Topology::multinational(3), ClusterConfig::default(), 5);
    cluster.run_until(t(5));
    cluster.schedule_partition(t(100), SimDuration::from_secs(60), [2u32]);
    let mut ids = Vec::new();
    let mut w = t(110);
    for i in 0..60u64 {
        ids.push(cluster.submit_write_at(w, 0, SubscriberUid(i), None));
        w += SimDuration::from_millis(200);
    }
    let report = cluster.run_until(t(200));
    assert!(report.violations.is_empty());
    let committed_during = ids
        .iter()
        .filter(|id| report.fates[id].chosen_at.is_some_and(|c| c <= t(160)))
        .count();
    assert_eq!(
        committed_during,
        ids.len(),
        "every majority-side write must commit during the partition"
    );
}

/// Commands decided by consensus apply to storage engines in slot order,
/// producing identical replica states — the determinism §3.2 demands of
/// replication ("the serialization order of writes replicated to any slave
/// copy is exactly the same"), now without a distinguished master.
#[test]
fn chosen_log_applies_identically_on_every_replica() {
    let mut cluster =
        ConsensusCluster::new(Topology::multinational(3), ClusterConfig::default(), 9);
    for i in 0..40u64 {
        let mut entry = udr::model::Entry::new();
        entry.set(AttrId::OdbMask, i);
        // Write the same three uids over and over: final state depends on
        // application order, so identical states prove identical order.
        cluster.submit_write_at(
            t(2) + SimDuration::from_millis(120 * i),
            (i % 3) as u32,
            SubscriberUid(i % 3),
            Some(entry),
        );
    }
    cluster.schedule_partition(t(3), SimDuration::from_secs(2), [1u32]);
    let report = cluster.run_until(t(60));
    assert!(report.violations.is_empty());
    assert_eq!(report.committed(), 40);

    // Apply each node's effective log to a fresh storage engine.
    let mut states = Vec::new();
    for node in 0..cluster.len() {
        let mut engine = Engine::new(udr::model::ids::SeId(node as u32));
        for (slot, cmd) in cluster.node(node).log().iter_effective() {
            let Payload::Write { uid, entry } = &cmd.payload else {
                continue;
            };
            let txn = engine.begin(udr::model::IsolationLevel::ReadCommitted);
            match entry {
                Some(e) => engine.put(txn, *uid, e.clone()).unwrap(),
                None => engine.delete(txn, *uid).unwrap(),
            }
            engine.commit(txn, SimTime(slot.raw())).unwrap();
        }
        let mut state: Vec<_> = engine
            .iter_committed()
            .map(|view| (view.uid, view.entry.cloned()))
            .collect();
        state.sort_by_key(|(uid, _)| *uid);
        states.push(state);
    }
    for s in &states[1..] {
        assert_eq!(&states[0], s, "replica states diverged");
    }
}

/// The repro's §6 claim end-to-end: a leader-site catastrophe (§3.1's
/// "unforeseen events") interrupts provisioning for seconds, not for the
/// outage duration, and loses nothing.
#[test]
fn leader_site_catastrophe_is_survivable() {
    let mut cluster =
        ConsensusCluster::new(Topology::multinational(5), ClusterConfig::default(), 13);
    cluster.run_until(t(5));
    let leader = cluster.current_leader().expect("leader by t=5");
    let origin = (0..5u32).find(|i| NodeId(*i) != leader).unwrap();

    cluster.schedule_crash(t(20), leader.0);
    let mut ids = Vec::new();
    for i in 0..100u64 {
        ids.push(cluster.submit_write_at(
            t(10) + SimDuration::from_millis(300 * i),
            origin,
            SubscriberUid(i),
            None,
        ));
    }
    let report = cluster.run_until(t(120));
    assert!(report.violations.is_empty());
    assert_eq!(report.committed(), 100, "no write may be lost to the crash");

    // Writes stalled only around the failover: the longest commit latency
    // is bounded by a few election timeouts, not by the outage length.
    let worst = report
        .commit_latencies()
        .into_iter()
        .max()
        .expect("latencies recorded");
    assert!(
        worst < SimDuration::from_secs(10),
        "failover stall too long: {worst}"
    );
}
