//! End-to-end filtered-search (business intelligence) queries through the
//! assembled UDR — the §1/§2.2 motivation for consolidation, exercised on
//! the same FE read path as network procedures.

use udr::core::{Udr, UdrConfig};
use udr::ldap::Filter;
use udr::model::attrs::{AttrId, AttrMod, AttrValue};
use udr::model::ids::SiteId;
use udr::model::{Identity, SimDuration, SimTime};
use udr::sim::SimRng;
use udr::workload::PopulationBuilder;

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

fn provisioned() -> (Udr, Vec<udr::workload::Subscriber>) {
    let mut cfg = UdrConfig::figure2();
    cfg.seed = 31;
    let mut udr = Udr::build(cfg).unwrap();
    let mut rng = SimRng::seed_from_u64(31);
    let population = PopulationBuilder::new(3).build(30, &mut rng);
    let mut at = t(0) + SimDuration::from_millis(1);
    for sub in &population {
        for _ in 0..4 {
            let out = udr.provision_subscriber(&sub.ids, sub.home_region, SiteId(0), at);
            at += SimDuration::from_millis(2);
            if out.is_ok() {
                break;
            }
        }
    }
    (udr, population)
}

#[test]
fn filtered_search_returns_entry_only_on_match() {
    let (mut udr, population) = provisioned();
    let sub = &population[0];
    let id = Identity::Imsi(sub.ids.imsi);

    // Bar the line, then ask two questions about it.
    let out = udr.modify_services(
        &id,
        vec![AttrMod::Set(AttrId::CallBarring, AttrValue::Bool(true))],
        SiteId(0),
        t(10),
    );
    assert!(out.is_ok());

    let barred: Filter = "(callBarring=TRUE)".parse().unwrap();
    let out = udr.search_filtered(&id, barred, vec![], SiteId(sub.home_region), t(20));
    let entry = out.result.expect("query served").expect("filter matches");
    assert_eq!(
        entry.get(AttrId::CallBarring).and_then(AttrValue::as_bool),
        Some(true)
    );

    // A non-matching filter is an empty result, not an error.
    let unbarred: Filter = "(!(callBarring=TRUE))".parse().unwrap();
    let out = udr.search_filtered(&id, unbarred, vec![], SiteId(sub.home_region), t(21));
    assert!(out.result.expect("query served").is_none());
}

#[test]
fn filtered_search_projects_requested_attributes() {
    let (mut udr, population) = provisioned();
    let sub = &population[1];
    let id = Identity::Imsi(sub.ids.imsi);

    let any: Filter = "(imsi=*)".parse().unwrap();
    let out = udr.search_filtered(
        &id,
        any,
        vec![AttrId::Imsi, AttrId::Msisdn],
        SiteId(sub.home_region),
        t(20),
    );
    let entry = out
        .result
        .expect("served")
        .expect("every entry has an imsi");
    assert!(entry.contains(AttrId::Imsi));
    assert!(entry.contains(AttrId::Msisdn));
    // Everything not projected is absent (the BI client asked for two).
    assert_eq!(entry.len(), 2, "projection leaked attributes: {entry:?}");
}

#[test]
fn bi_queries_count_as_front_end_reads() {
    let (mut udr, population) = provisioned();
    let sub = &population[2];
    let id = Identity::Imsi(sub.ids.imsi);
    udr.metrics.fe_ops = Default::default();

    let filter: Filter = "(&(imsi=*)(!(callBarring=TRUE)))".parse().unwrap();
    let out = udr.search_filtered(&id, filter, vec![], SiteId(sub.home_region), t(20));
    assert!(out.is_ok());
    assert_eq!(udr.metrics.fe_ops.ok, 1, "BI shares the FE read path");
    // Same 10 ms envelope as any indexed read from the home region.
    assert!(
        out.latency < SimDuration::from_millis(10),
        "latency {}",
        out.latency
    );
}

#[test]
fn complex_filters_survive_the_wire() {
    // The full client path encodes the request; prove the op that reaches
    // the server equals the op the BI client built.
    use udr::ldap::{decode_request, encode_request, LdapOp, LdapRequest};
    let filter: Filter = "(&(|(homeRegion=0)(homeRegion=1))(odbMask<=3)(impuList=sip:*@ims*))"
        .parse()
        .unwrap();
    let (_, population) = provisioned();
    let dn = udr::ldap::Dn::for_identity(Identity::Imsi(population[0].ids.imsi));
    let req = LdapRequest {
        message_id: 77,
        op: LdapOp::SearchFilter {
            base: dn,
            filter,
            attrs: vec![AttrId::Msisdn],
        },
    };
    let decoded = decode_request(&encode_request(&req)).unwrap();
    assert_eq!(decoded, req);
}
