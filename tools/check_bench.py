#!/usr/bin/env python3
"""Schema check for BENCH_*.json experiment reports.

Every experiment binary that emits a machine-readable report writes it
through ``udr_bench::json::BenchReport``, whose contract is::

    {
      "name":    non-empty string,
      "seed":    integer,
      "config":  object of scalars,
      "metrics": optional object (values may nest: histogram snapshots),
      "rows":    non-empty list of flat objects (scalar cells only)
    }

``config`` and ``rows`` must stay flat — ``tools/bench_compare.py``
diffs them cell-by-cell. The optional ``metrics`` object is the one
place nested values (arrays/objects, e.g. full per-stage latency
histograms) are allowed.

CI runs this over every emitted report so a malformed or silently empty
report fails the experiment cell that produced it, not a downstream
consumer three PRs later.

Usage:
    tools/check_bench.py BENCH_e22.json [BENCH_e19.json ...]
    tools/check_bench.py --glob        # every BENCH_*.json in the CWD
"""

from __future__ import annotations

import glob
import json
import sys

SCALARS = (str, int, float, bool, type(None))


def check(path: str) -> list[str]:
    """Validate one report; returns a list of human-readable problems."""
    problems: list[str] = []
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable or malformed JSON: {exc}"]

    if not isinstance(report, dict):
        return ["top level is not an object"]

    name = report.get("name")
    if not isinstance(name, str) or not name:
        problems.append("`name` must be a non-empty string")
    if not isinstance(report.get("seed"), int):
        problems.append("`seed` must be an integer")

    config = report.get("config")
    if not isinstance(config, dict):
        problems.append("`config` must be an object")
    else:
        for key, value in config.items():
            if not isinstance(value, SCALARS):
                problems.append(f"config[{key!r}] is not a scalar")

    metrics = report.get("metrics")
    if metrics is not None and not isinstance(metrics, dict):
        problems.append("`metrics`, when present, must be an object")

    rows = report.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("`rows` must be a non-empty list")
    else:
        for i, row in enumerate(rows):
            if not isinstance(row, dict) or not row:
                problems.append(f"rows[{i}] is not a non-empty object")
                continue
            for key, value in row.items():
                if not isinstance(value, SCALARS):
                    problems.append(f"rows[{i}][{key!r}] is not a scalar")
    return problems


def main(argv: list[str]) -> int:
    if not argv or argv == ["--help"] or argv == ["-h"]:
        print(__doc__)
        return 2
    if argv == ["--glob"]:
        argv = sorted(glob.glob("BENCH_*.json"))
        if not argv:
            print("no BENCH_*.json files found", file=sys.stderr)
            return 1
    failed = 0
    for path in argv:
        problems = check(path)
        if problems:
            failed += 1
            print(f"FAIL {path}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            with open(path, encoding="utf-8") as handle:
                rows = len(json.load(handle)["rows"])
            print(f"ok   {path} ({rows} rows)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
