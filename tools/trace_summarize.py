#!/usr/bin/env python3
"""Summarize a TRACE_*.jsonl flight-recorder export.

Reads the compact JSONL emitted by ``udr_trace::TraceExport::to_jsonl``
(one object per line; kinds ``meta`` / ``rec`` / ``exemplar`` /
``exrec``) and prints:

- the export header (record counts, drops, deterministic digest);
- a **per-stage critical-path breakdown**: total and mean time spent in
  each ``stage.*`` span across every traced operation, plus each
  stage's share of the summed pipeline time — this reproduces the
  simulator's ``LatencyBreakdown`` accounting from the trace alone;
- totals for every other span/instant family (``consensus.*``,
  ``ship.*``, ``qos.*``, ``fault.*``, ...), so a timeline's shape is
  readable without opening Perfetto;
- the **top-K slowest exemplars** (always-on slow-op capture), each
  with its own stage breakdown.

Usage:
    tools/trace_summarize.py TRACE_e25.jsonl
    tools/trace_summarize.py --top 5 TRACE_e25.jsonl
    tools/trace_summarize.py --check TRACE_e25.jsonl   # schema check only

``--check`` validates the line schema (used by the CI trace-smoke cell)
and exits non-zero on any malformed line, missing meta header, or a
digest field that does not parse as 16 hex digits.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

STAGES = ("stage.access", "stage.location", "stage.replication", "stage.storage")

REC_REQUIRED = {
    "trace": int,
    "span": int,
    "parent": int,
    "name": str,
    "start_ns": int,
    "digest": bool,
}
EXEMPLAR_REQUIRED = {
    "trace": int,
    "name": str,
    "start_ns": int,
    "latency_ns": int,
    "status": str,
}


def fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f} µs"
    return f"{ns:.0f} ns"


def load(path: str) -> tuple[dict, list[dict], list[dict]]:
    """Parse one export; returns (meta, records, exemplar headers).

    ``exrec`` lines are folded into their preceding exemplar header
    under ``"records"``; plain ``rec`` lines land in the record list.
    """
    meta: dict | None = None
    records: list[dict] = []
    exemplars: list[dict] = []
    problems: list[str] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: malformed JSON: {exc}")
                continue
            kind = obj.get("kind")
            if kind == "meta":
                if meta is not None:
                    problems.append(f"line {lineno}: duplicate meta header")
                meta = obj
                digest = obj.get("digest")
                if not (isinstance(digest, str) and len(digest) == 16):
                    problems.append(f"line {lineno}: meta.digest is not 16 hex chars")
                else:
                    try:
                        int(digest, 16)
                    except ValueError:
                        problems.append(f"line {lineno}: meta.digest is not hex")
            elif kind in ("rec", "exrec"):
                for field, ftype in REC_REQUIRED.items():
                    if not isinstance(obj.get(field), ftype):
                        problems.append(f"line {lineno}: {kind}.{field} missing or mistyped")
                        break
                else:
                    dur = obj.get("dur_ns")
                    if dur is not None and not isinstance(dur, int):
                        problems.append(f"line {lineno}: {kind}.dur_ns must be int or null")
                    elif kind == "rec":
                        records.append(obj)
                    elif not exemplars:
                        problems.append(f"line {lineno}: exrec before any exemplar header")
                    else:
                        exemplars[-1]["records"].append(obj)
            elif kind == "exemplar":
                for field, ftype in EXEMPLAR_REQUIRED.items():
                    if not isinstance(obj.get(field), ftype):
                        problems.append(f"line {lineno}: exemplar.{field} missing or mistyped")
                        break
                else:
                    obj["records"] = []
                    exemplars.append(obj)
            else:
                problems.append(f"line {lineno}: unknown kind {kind!r}")
    if meta is None:
        problems.append("no meta header line")
    else:
        if meta.get("records") != len(records):
            problems.append(
                f"meta.records={meta.get('records')} but file holds {len(records)} rec lines"
            )
        if meta.get("exemplars") != len(exemplars):
            problems.append(
                f"meta.exemplars={meta.get('exemplars')} but file holds "
                f"{len(exemplars)} exemplar headers"
            )
    if problems:
        for problem in problems:
            print(f"FAIL {path}: {problem}", file=sys.stderr)
        sys.exit(1)
    assert meta is not None
    return meta, records, exemplars


def stage_breakdown(records: list[dict]) -> dict[str, tuple[int, int]]:
    """name -> (total_ns, span_count) for the four pipeline stages."""
    acc: dict[str, tuple[int, int]] = {s: (0, 0) for s in STAGES}
    for rec in records:
        name = rec["name"]
        if name in acc and rec.get("dur_ns") is not None:
            total, count = acc[name]
            acc[name] = (total + rec["dur_ns"], count + 1)
    return acc


def print_stage_table(records: list[dict], indent: str = "") -> None:
    acc = stage_breakdown(records)
    pipeline_total = sum(total for total, _ in acc.values())
    width = max(len(s) for s in STAGES)
    for stage in STAGES:
        total, count = acc[stage]
        share = (total / pipeline_total * 100.0) if pipeline_total else 0.0
        mean = (total / count) if count else 0.0
        print(
            f"{indent}{stage:<{width}}  total {fmt_ns(total):>12}  "
            f"spans {count:>6}  mean {fmt_ns(mean):>10}  {share:5.1f}%"
        )
    print(f"{indent}{'pipeline total':<{width}}  {fmt_ns(pipeline_total):>18}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Summarize a TRACE_*.jsonl flight-recorder export."
    )
    parser.add_argument("trace", help="TRACE_*.jsonl file to read")
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="slowest exemplars to print (default 10)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="schema-check only: validate every line and exit",
    )
    args = parser.parse_args()

    meta, records, exemplars = load(args.trace)
    if args.check:
        print(
            f"ok   {args.trace} ({len(records)} records, {len(exemplars)} exemplars, "
            f"digest {meta['digest']})"
        )
        return 0

    print(f"{args.trace}")
    print(
        f"  {len(records)} records, {len(exemplars)} exemplars, "
        f"{meta.get('dropped', 0)} dropped, digest {meta['digest']}\n"
    )

    # Per-stage critical path over the whole flight recorder.
    print("per-stage critical path (flight recorder):")
    print_stage_table(records, indent="  ")

    # Everything else, grouped by name family.
    families: dict[str, tuple[int, int]] = defaultdict(lambda: (0, 0))
    for rec in records:
        name = rec["name"]
        if name in STAGES:
            continue
        total, count = families[name]
        families[name] = (total + (rec.get("dur_ns") or 0), count + 1)
    if families:
        print("\nother span/instant families:")
        width = max(len(n) for n in families)
        for name in sorted(families, key=lambda n: -families[n][1]):
            total, count = families[name]
            timing = f"  total {fmt_ns(total):>12}" if total else ""
            print(f"  {name:<{width}}  n {count:>6}{timing}")

    # Slowest exemplars with their own breakdowns.
    if exemplars:
        shown = exemplars[: args.top]
        print(f"\ntop {len(shown)} slowest exemplars (of {len(exemplars)} kept):")
        for ex in shown:
            print(
                f"  {ex['name']}  trace {ex['trace']}  latency "
                f"{fmt_ns(ex['latency_ns'])}  status {ex['status']}  "
                f"start {fmt_ns(ex['start_ns'])}"
            )
            print_stage_table(ex["records"], indent="    ")
    return 0


if __name__ == "__main__":
    sys.exit(main())
