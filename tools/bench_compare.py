#!/usr/bin/env python3
"""Compare two BENCH_*.json runs of the same experiment.

Rows are matched by their identity columns (every string-valued cell,
e.g. ``stage`` for e23 or ``label`` for e24, plus integer knobs like
``lanes`` that appear in both runs with disjoint numeric roles), then
every shared numeric column is diffed. Rate-like columns (``*per_sec``)
count as regressions when they *drop*; latency-like columns (``*_ns``,
``*_ms``, ``*_s``) when they *rise*; everything else is reported but
never flagged.

Usage:
    tools/bench_compare.py OLD.json NEW.json
    tools/bench_compare.py --threshold 10 OLD.json NEW.json
    tools/bench_compare.py --metric per_sec OLD.json NEW.json

``--threshold PCT`` (default 5) sets the regression tolerance; any
flagged metric past it makes the script exit 1, so CI can pin a
baseline report and fail the build on a real slowdown. Timing noise on
shared runners is real — thresholds under ~5 % flag weather, not code.
"""

from __future__ import annotations

import argparse
import json
import sys

RATE_MARKERS = ("per_sec", "per_s", "ops_s", "throughput")
LATENCY_MARKERS = ("_ns", "_us", "_ms", "wall_s", "_s", "latency", "heal")


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"{path}: unreadable or malformed JSON: {exc}")
    for key in ("name", "rows"):
        if key not in report:
            sys.exit(f"{path}: not a BenchReport (missing {key!r})")
    return report


def key_columns(old_rows: list[dict], new_rows: list[dict]) -> list[str]:
    """Columns identifying a row: every string column, extended with
    integer columns (in column order) until rows are unique in both
    files — ``label`` alone does not distinguish e24's per-lane rows,
    ``label`` + ``lanes`` does."""
    sample = old_rows[0] if old_rows else {}
    chosen = [c for c, v in sample.items() if isinstance(v, str)]
    int_cols = [
        c
        for c, v in sample.items()
        if isinstance(v, int) and not isinstance(v, bool)
    ]

    def unique(rows: list[dict]) -> bool:
        keys = [tuple(r.get(c) for c in chosen) for r in rows]
        return len(set(keys)) == len(keys)

    for col in int_cols:
        if unique(old_rows) and unique(new_rows):
            break
        chosen.append(col)
    return chosen


def row_key(row: dict, columns: list[str]) -> tuple:
    return tuple((c, row.get(c)) for c in columns)


def direction(column: str) -> int:
    """+1 = bigger is better (rates), -1 = smaller is better
    (latencies), 0 = informational only."""
    if any(m in column for m in RATE_MARKERS):
        return 1
    if any(m in column for m in LATENCY_MARKERS):
        return -1
    return 0


def fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json runs of the same experiment."
    )
    parser.add_argument("old", help="baseline report")
    parser.add_argument("new", help="candidate report")
    parser.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        metavar="PCT",
        help="regression tolerance in percent (default 5)",
    )
    parser.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="SUBSTR",
        help="only diff columns containing SUBSTR (repeatable; "
        "default: every shared numeric column)",
    )
    args = parser.parse_args()

    old, new = load(args.old), load(args.new)
    if old["name"] != new["name"]:
        sys.exit(
            f"refusing to compare different experiments: "
            f"{old['name']!r} vs {new['name']!r}"
        )

    columns = key_columns(old["rows"], new["rows"])
    old_rows = {row_key(r, columns): r for r in old["rows"]}
    new_rows = {row_key(r, columns): r for r in new["rows"]}
    only_old = [k for k in old_rows if k not in new_rows]
    only_new = [k for k in new_rows if k not in old_rows]

    def label(key: tuple) -> str:
        return "/".join(str(v) for _, v in key) or "<row>"

    print(f"experiment {old['name']}: {args.old} → {args.new}")
    for key in only_old:
        print(f"  - row {label(key)} only in {args.old}")
    for key in only_new:
        print(f"  + row {label(key)} only in {args.new}")

    regressions: list[str] = []
    for key, old_row in old_rows.items():
        new_row = new_rows.get(key)
        if new_row is None:
            continue
        shown = False
        for column, old_val in old_row.items():
            new_val = new_row.get(column)
            if not isinstance(old_val, (int, float)) or isinstance(old_val, bool):
                continue
            if not isinstance(new_val, (int, float)) or isinstance(new_val, bool):
                continue
            if args.metric and not any(m in column for m in args.metric):
                continue
            if old_val == new_val:
                continue
            if not shown:
                print(f"  {label(key)}:")
                shown = True
            delta_pct = (
                (new_val - old_val) / abs(old_val) * 100.0
                if old_val
                else float("inf")
            )
            sign = direction(column)
            regressed = (
                sign != 0
                and -sign * delta_pct > args.threshold
            )
            flag = "  REGRESSION" if regressed else ""
            print(
                f"    {column}: {fmt(old_val)} → {fmt(new_val)} "
                f"({delta_pct:+.1f}%){flag}"
            )
            if regressed:
                regressions.append(f"{label(key)}.{column} {delta_pct:+.1f}%")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) past the "
            f"{args.threshold:g}% threshold:"
        )
        for item in regressions:
            print(f"  {item}")
        return 1
    print(f"\nno regressions past the {args.threshold:g}% threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
