//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names the model crate imports
//! and re-exports the no-op derives from the sibling `serde_derive` shim.
//! Nothing in the repository serializes yet; when a registry becomes
//! available, replace the path dependencies with the real crates — the
//! source code needs no changes.

pub use serde_derive::{Deserialize, Serialize};
