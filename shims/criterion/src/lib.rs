//! Offline stand-in for `criterion`.
//!
//! The registry is unreachable in this build environment, so this crate
//! implements the criterion API surface the benches use — groups,
//! `bench_function`/`bench_with_input`, `iter`/`iter_batched_ref`,
//! throughput annotations, the `criterion_group!`/`criterion_main!`
//! macros — on top of a small wall-clock timing loop. Numbers print as
//! mean ns/iter without statistical machinery; good enough to compare
//! hot paths and to keep bench targets compiling and runnable.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark is measured for.
const MEASURE_TARGET: Duration = Duration::from_millis(200);
/// Warm-up before measuring.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// Batch sizing hints (accepted, not load-bearing here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

/// Timing loop handed to the benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Measure a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_TARGET {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_TARGET {
            black_box(routine());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    /// Measure a routine over fresh setup state each iteration, passing the
    /// state by mutable reference (setup time excluded).
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < MEASURE_TARGET {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            measured += start.elapsed();
            iters += 1;
            drop(input);
        }
        self.total = measured;
        self.iters = iters;
    }
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{group}/{id}: no iterations recorded");
        return;
    }
    let ns = b.total.as_nanos() as f64 / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.0} elem/s", n as f64 * 1e9 / ns)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.0} MiB/s", n as f64 * 1e9 / ns / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{group}/{id}: {ns:.1} ns/iter ({} iters){rate}", b.iters);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the sample count (accepted for compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(&self.name, &id.id, &b, self.throughput);
        self
    }

    /// Benchmark a routine against a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&self.name, &id.id, &b, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report("bench", &id.id, &b, None);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
