//! Offline stand-in for `bytes`, now with real zero-copy semantics.
//!
//! Implements the surface the LDAP codec and the columnar record store use:
//! `BytesMut` with the big-endian `BufMut` putters, `freeze()` into an
//! immutable `Bytes`, and slice access on both. `Bytes` is a reference-counted
//! view (`Arc<[u8]>` + range), so `clone()` and `slice()` share the underlying
//! buffer instead of copying — the property the storage layer's snapshot
//! images rely on.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// Immutable, reference-counted byte buffer view.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copy a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// A sub-view sharing the same underlying storage (no copy). The range
    /// is relative to this view.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end, "slice start past end");
        assert!(self.start + range.end <= self.end, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Whether two views share the same underlying allocation (diagnostic
    /// for zero-copy tests).
    pub fn shares_storage_with(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Convert into an immutable [`Bytes`] (one allocation hand-off, no
    /// copy of the payload beyond the `Arc` conversion).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Big-endian append operations (subset of the upstream trait).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_freeze_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x30);
        buf.put_u16(0x0102);
        buf.put_u32(0x0304_0506);
        buf.put_u64(0x0708_090A_0B0C_0D0E);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        assert_eq!(
            &frozen[..],
            &[0x30, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xA, 0xB, 0xC, 0xD, 0xE, b'x', b'y']
        );
    }

    #[test]
    fn extend_matches_put_slice() {
        let mut a = BytesMut::new();
        let mut b = BytesMut::new();
        a.extend_from_slice(b"abc");
        b.put_slice(b"abc");
        assert_eq!(a, b);
    }

    #[test]
    fn slice_is_zero_copy() {
        let b = Bytes::from(b"hello world".to_vec());
        let hello = b.slice(0..5);
        let world = b.slice(6..11);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(&world[..], b"world");
        assert!(hello.shares_storage_with(&b));
        assert!(world.shares_storage_with(&hello));
        // Sub-slicing a slice composes ranges.
        let ell = hello.slice(1..4);
        assert_eq!(&ell[..], b"ell");
        assert!(ell.shares_storage_with(&b));
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(b"abc".to_vec());
        let b = a.clone();
        assert!(a.shares_storage_with(&b));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_bounds_checked() {
        let b = Bytes::from(b"abc".to_vec());
        let _ = b.slice(0..4);
    }
}
