//! Offline stand-in for `bytes`, backed by plain `Vec<u8>`.
//!
//! Implements the surface the LDAP codec uses: `BytesMut` with the
//! big-endian `BufMut` putters, `freeze()` into an immutable `Bytes`, and
//! slice access on both. No refcount-sharing tricks — `Bytes` clones copy —
//! which is irrelevant for the codec benchmarks' purposes.

use std::ops::Deref;

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Big-endian append operations (subset of the upstream trait).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_freeze_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x30);
        buf.put_u16(0x0102);
        buf.put_u32(0x0304_0506);
        buf.put_u64(0x0708_090A_0B0C_0D0E);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        assert_eq!(
            &frozen[..],
            &[0x30, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xA, 0xB, 0xC, 0xD, 0xE, b'x', b'y']
        );
    }

    #[test]
    fn extend_matches_put_slice() {
        let mut a = BytesMut::new();
        let mut b = BytesMut::new();
        a.extend_from_slice(b"abc");
        b.put_slice(b"abc");
        assert_eq!(a, b);
    }
}
