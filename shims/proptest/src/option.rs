//! `Option` strategies.

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `Some` with probability one half, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64() & 1 == 1 {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}
