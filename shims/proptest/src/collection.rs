//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification: a fixed size or a range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>` with sizes drawn from `size`.
///
/// Key collisions are re-drawn a bounded number of times; with a small key
/// domain the map may come out smaller than the drawn size, matching
/// upstream's behaviour of treating size as a target, not a guarantee.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0usize;
        while map.len() < target && attempts < target * 4 + 8 {
            attempts += 1;
            map.insert(self.key.sample(rng), self.value.sample(rng));
        }
        map
    }
}

/// Strategy for `BTreeSet<T>` with sizes drawn from `size`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 4 + 8 {
            attempts += 1;
            set.insert(self.element.sample(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_in_range() {
        let s = vec(0u64..10, 2..5);
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    #[test]
    fn btree_set_reaches_target_when_domain_allows() {
        let s = btree_set(0u32..100, 3..=3);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng).len(), 3);
        }
    }
}
