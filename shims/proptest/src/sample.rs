//! Sampling from explicit value lists.

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice from a non-empty list of values.
pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select needs at least one item");
    Select { items }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}
