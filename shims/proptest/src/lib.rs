//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the slice of the proptest API the repository's property tests use:
//! the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_filter_map` / `prop_flat_map` / `prop_recursive`, integer-range
//! and char-class string strategies, tuple composition, collections
//! (`vec`, `btree_map`, `btree_set`), `option::of`, `sample::select`,
//! `Just`, `prop_oneof!`, and the `proptest!` test macro with
//! `ProptestConfig`.
//!
//! Differences from upstream, deliberate:
//! * cases are generated from a seed derived from the test name, so runs
//!   are deterministic per test;
//! * failures panic with the offending values' `Debug` form but are **not
//!   shrunk** — rerun with the printed values to debug;
//! * `prop_assume!` rejects the case; an all-rejected test simply runs
//!   fewer cases rather than erroring.

pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// `proptest::arbitrary`-style entry points.
pub mod arbitrary {
    pub use crate::strategy::{any, Arbitrary};
}

/// The prelude glob every property test imports.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Assert inside a `proptest!` body; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!($($fmt)*);
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            a
        );
    }};
}

/// Reject the current case (it does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests.
///
/// Supports the block form with an optional leading
/// `#![proptest_config(...)]` attribute:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn my_property(x in 0u64..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.effective_cases();
                if let Some(seed) = $crate::test_runner::env_seed() {
                    eprintln!(
                        "proptest {}: PROPTEST_RNG_SEED={seed}, {cases} cases",
                        stringify!($name)
                    );
                }
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cases.saturating_add(config.max_global_rejects);
                while accepted < cases && attempts < max_attempts {
                    attempts += 1;
                    $(
                        let $pat =
                            $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}
