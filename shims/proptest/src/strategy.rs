//! The [`Strategy`] trait, primitive strategies and combinators.

use std::fmt::Debug;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// seeded sampler. Failures report the sampled values via `Debug`.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Transform and reject in one step. Values mapped to `None` are
    /// resampled (the `reason` is reported if sampling keeps failing).
    fn prop_filter_map<U: Debug, F: Fn(Self::Value) -> Option<U>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f: Rc::new(f),
            reason,
        }
    }

    /// Keep only values satisfying a predicate.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f: Rc::new(f),
            reason,
        }
    }

    /// Generate a follow-up strategy from each value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Build recursive structures: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into one more level, up to `depth` levels.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        Recursive {
            leaf: self.boxed(),
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// How many times rejection-based combinators resample before giving up.
const MAX_REJECTS: u32 = 64;

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: Rc<F>,
    reason: &'static str,
}

impl<S: Clone, F> Clone for FilterMap<S, F> {
    fn clone(&self) -> Self {
        FilterMap {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
            reason: self.reason,
        }
    }
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected every sample: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: Rc<F>,
    reason: &'static str,
}

impl<S: Clone, F> Clone for Filter<S, F> {
    fn clone(&self) -> Self {
        Filter {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
            reason: self.reason,
        }
    }
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected every sample: {}", self.reason);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for FlatMap<S, F> {
    fn clone(&self) -> Self {
        FlatMap {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            recurse: Rc::clone(&self.recurse),
            depth: self.depth,
        }
    }
}

impl<T: Debug> Strategy for Recursive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut strategy = self.leaf.clone();
        for _ in 0..levels {
            strategy = (self.recurse)(strategy);
        }
        strategy.sample(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Build from the alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

// ---- any::<T>() ------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draw one value from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + rng.below(0x5F) as u8) as char
    }
}

// ---- integer ranges --------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as i128 - *self.start() as i128) as u64;
                let offset = if width == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.below(width + 1)
                };
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Float ranges sample uniformly over the interval (upstream draws from a
// richer distribution with special values; uniform covers what the
// repository's tests need).
macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.f64() as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                self.start() + (self.end() - self.start()) * rng.f64() as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// ---- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---- char-class string patterns --------------------------------------------

/// `&'static str` strategies support the `[class]{m,n}` regex subset used
/// by the test-suite (e.g. `"[a-z]{1,12}"`, `"[ -~]{0,20}"`).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_char_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[class]{m,n}` / `[class]{n}` into (alphabet, min_len, max_len).
fn parse_char_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` is a range unless the `-` is first or last in the class.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            alphabet.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0u32..=4).sample(&mut rng);
            assert!(w <= 4);
        }
    }

    #[test]
    fn map_and_oneof_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = crate::prop_oneof![(0u64..5).prop_map(|x| x * 2), Just(100u64),];
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v == 100 || (v % 2 == 0 && v < 10));
        }
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let s = "[a-c]{2,4}".sample(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        let leaf = (0u64..10).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        fn leaves(t: &Tree) -> u64 {
            match t {
                Tree::Leaf(v) => {
                    assert!(*v < 10);
                    1
                }
                Tree::Node(children) => children.iter().map(leaves).sum(),
            }
        }
        let mut rng = TestRng::from_seed(4);
        let mut total = 0;
        for _ in 0..100 {
            total += leaves(&s.sample(&mut rng));
        }
        assert!(total > 0);
    }
}
