//! The runner substrate: deterministic RNG, configuration, rejection.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Marker returned by `prop_assume!` when a case is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// Runner configuration (subset of upstream's fields).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Global cap on rejected cases before the runner stops early.
    pub max_global_rejects: u32,
    /// Accepted for upstream compatibility; this runner never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 1024,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    /// The case count to actually run: `PROPTEST_CASES` in the environment
    /// overrides the configured value (upstream honours the same variable).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Deterministic generator seeded from the test name, so every test has
/// its own reproducible stream (there is no shrinking; reproducibility is
/// what makes failures debuggable). Set `PROPTEST_RNG_SEED` to perturb
/// every stream and explore fresh cases; the value is mixed into each
/// test's seed and printed by the runner on entry so a failing run can be
/// replayed.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed from a raw 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Seed from a test name (FNV-1a hash), mixed with
    /// `PROPTEST_RNG_SEED` when set.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Some(perturb) = env_seed() {
            h ^= perturb.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        TestRng::from_seed(h)
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The `PROPTEST_RNG_SEED` perturbation, if set and parseable.
pub fn env_seed() -> Option<u64> {
    std::env::var("PROPTEST_RNG_SEED").ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_streams_are_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn cases_override_parses() {
        let cfg = ProptestConfig::with_cases(12);
        // Without the env var the configured count wins.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(cfg.effective_cases(), 12);
        }
    }
}
