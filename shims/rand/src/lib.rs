//! Offline stand-in for `rand` (0.9-style API surface).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods the simulator uses (`random::<T>()`, `random_range(lo..hi)`).
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic,
//! fast, and statistically sound for simulation purposes. It is **not** the
//! real `StdRng` (ChaCha12): streams differ from upstream `rand`, which is
//! fine because every consumer in this repository seeds explicitly and only
//! relies on self-consistency.

/// Random number generators.
pub mod rngs {
    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seedable generators (subset of the upstream trait).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types samplable from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`. Callers guarantee `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "empty range");
                let width = (hi as i128 - lo as i128) as u128;
                // Rejection-free multiply-shift reduction; bias is < 2^-64.
                let hi64 = ((rng.next_u64() as u128 * width) >> 64) as i128;
                (lo as i128 + hi64) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator methods (subset of the upstream trait).
pub trait Rng: RngCore {
    /// Draw a value uniformly over the type's domain.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw a value uniformly from a half-open range.
    #[inline]
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
