//! No-op `Serialize`/`Deserialize` derives.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate stands in for the real `serde_derive`. The repository only uses
//! the derives as markers on model types (nothing serializes yet); the
//! derives therefore expand to nothing. Swap the `[patch]`-free path
//! dependency in the workspace root for the real crates when a registry
//! is available.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
