//! Offline stand-in for `parking_lot` backed by `std::sync`.
//!
//! Exposes the `parking_lot` locking API surface the repository uses
//! (non-poisoning `lock()` without `unwrap`). Internally delegates to the
//! std primitives, recovering from poisoning the way `parking_lot` never
//! poisons in the first place.

use std::fmt;
use std::sync::PoisonError;

/// A mutex whose `lock` never fails (poisoning is swallowed).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
