//! Umbrella crate re-exporting the full UDR reproduction.
pub use udr_consensus as consensus;
pub use udr_core as core;
pub use udr_dls as dls;
pub use udr_ldap as ldap;
pub use udr_metrics as metrics;
pub use udr_model as model;
pub use udr_preudc as preudc;
pub use udr_qos as qos;
pub use udr_replication as replication;
pub use udr_sim as sim;
pub use udr_storage as storage;
pub use udr_workload as workload;
