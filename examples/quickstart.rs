//! Quickstart: build the paper's Figure 2 deployment (three sites, RF 3),
//! provision a handful of subscribers, run network procedures against it,
//! and print what the system measured.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use udr::core::{OpRequest, Udr, UdrConfig};
use udr::metrics::Table;
use udr::model::ids::SiteId;
use udr::model::{ProcedureKind, SimDuration, SimTime, TxnClass};
use udr::sim::SimRng;
use udr::workload::PopulationBuilder;

fn main() {
    // The paper's first realization: async master/slave replication,
    // READ_COMMITTED SEs, periodic snapshots, FE reads on nearest copies,
    // PS reads on masters only, home-region placement.
    let cfg = UdrConfig::figure2();
    println!(
        "deployment: {} sites, {} SEs, {} LDAP servers, RF {}",
        cfg.sites,
        cfg.total_ses(),
        cfg.total_ldap_servers(),
        cfg.frash.replication_factor
    );
    let mut udr = Udr::build(cfg).expect("valid configuration");

    // Provision 60 subscribers, home regions spread over the three sites.
    let mut rng = SimRng::seed_from_u64(7);
    let population = PopulationBuilder::new(3).build(60, &mut rng);
    let mut at = SimTime::ZERO + SimDuration::from_millis(1);
    for sub in &population {
        let out = udr.provision_subscriber(&sub.ids, sub.home_region, SiteId(0), at);
        assert!(out.is_ok(), "provisioning failed: {:?}", out.op.result);
        at += SimDuration::from_millis(2);
    }
    println!("provisioned {} subscribers", udr.total_subscribers());

    // Run every 3GPP procedure once per subscriber from the home region.
    let mut at = SimTime::ZERO + SimDuration::from_secs(10);
    for (i, sub) in population.iter().enumerate() {
        let kind = ProcedureKind::ALL[i % ProcedureKind::ALL.len()];
        let out = udr
            .execute(
                OpRequest::procedure(kind, &sub.ids)
                    .site(SiteId(sub.home_region))
                    .at(at),
            )
            .into_procedure();
        assert!(out.success, "{kind} failed: {:?}", out.failure);
        at += SimDuration::from_millis(25);
    }

    // Report.
    let mut table = Table::new(["class", "ops ok", "ops failed", "mean latency", "p99"])
        .with_title("quickstart results");
    for class in [TxnClass::FrontEnd, TxnClass::Provisioning] {
        let ops = udr.metrics.ops(class);
        let lat = udr.metrics.latency(class);
        table.row([
            class.to_string(),
            ops.ok.to_string(),
            (ops.unavailable + ops.failed_other).to_string(),
            lat.mean().to_string(),
            lat.p99().to_string(),
        ]);
    }
    println!("\n{table}");
    println!(
        "PACELC: front-end = {}, provisioning = {}  (paper §3.6: PA/EL vs PC/EC)",
        udr.pacelc_for(TxnClass::FrontEnd),
        udr.pacelc_for(TxnClass::Provisioning)
    );
    println!(
        "10 ms target (§2.3 req 4): mean FE latency = {} → {}",
        udr.metrics.fe_latency.mean(),
        if udr.metrics.fe_latency.mean() < SimDuration::from_millis(10) {
            "MET"
        } else {
            "MISSED"
        }
    );
}
