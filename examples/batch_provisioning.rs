//! Batch provisioning through a backbone glitch (§4.1): "a network glitch
//! as short as 30 seconds may cause a batch that's been running for hours
//! to fail".
//!
//! Runs the same batch under the paper's first realization (master/slave,
//! PC on partition) and under the §5 evolution (multi-master, PA on
//! partition), with and without PS retries.
//!
//! ```sh
//! cargo run --release --example batch_provisioning
//! ```

use udr::core::{BatchItem, RetryPolicy, Udr, UdrConfig};
use udr::metrics::{pct, Table};
use udr::model::ids::SiteId;
use udr::model::{ReplicationMode, SimDuration, SimTime};
use udr::sim::{FaultSchedule, SimRng};
use udr::workload::PopulationBuilder;

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

fn run(mode: ReplicationMode, retries: u32) -> (String, udr::core::BatchReport, u64, u64) {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.replication = mode;
    cfg.seed = 31;
    let mut udr = Udr::build(cfg).expect("valid configuration");

    let mut rng = SimRng::seed_from_u64(17);
    let population = PopulationBuilder::new(3).build(1200, &mut rng);
    let items: Vec<BatchItem> = population
        .iter()
        .map(|s| BatchItem::Create {
            ids: s.ids.clone(),
            home_region: s.home_region,
        })
        .collect();

    // 10 items/s ⇒ a 120 s batch; the glitch hits at t=40 for 30 s.
    udr.schedule_faults(FaultSchedule::new().glitch(t(40), SimDuration::from_secs(30)));
    let report = udr.run_provisioning_batch(
        items,
        10.0,
        t(0),
        SiteId(0),
        RetryPolicy {
            max_attempts: retries,
            backoff: SimDuration::from_secs(10),
        },
    );
    udr.advance_to(t(1200));
    let label = format!("{mode} / {} attempt(s)", retries);
    (
        label,
        report,
        udr.metrics.merges,
        udr.metrics.merge_conflicts,
    )
}

fn main() {
    println!("batch: 1200 create-subscription items at 10/s; 30 s backbone glitch at t=40\n");
    let mut table = Table::new([
        "configuration",
        "succeeded",
        "failed (manual)",
        "retries",
        "peak backlog",
        "merges",
        "conflicts",
    ])
    .with_title("§4.1 batch vs glitch — master/slave vs §5 multi-master");

    for (mode, retries) in [
        (ReplicationMode::AsyncMasterSlave, 1),
        (ReplicationMode::AsyncMasterSlave, 5),
        (ReplicationMode::MultiMaster, 1),
        (ReplicationMode::MultiMaster, 5),
    ] {
        let (label, report, merges, conflicts) = run(mode, retries);
        table.row([
            label,
            report.succeeded.to_string(),
            format!(
                "{} ({})",
                report.failed,
                pct(report.manual_intervention_fraction(), 1)
            ),
            report.retries.to_string(),
            format!("{:.0}", report.backlog.max().unwrap_or(0.0)),
            merges.to_string(),
            conflicts.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: with master/slave and no retries, every item that hit the glitch failed and\n\
         needs manual completion (the §4.1 cost). Retries shrink the damage but grow the\n\
         backlog; multi-master keeps taking writes during the glitch (PA), at the price of a\n\
         consistency-restoration merge after heal (§5)."
    );
}
