//! A multi-national service provider (Figure 1/2): three national sites,
//! realistic traffic with roaming, and a backbone partition mid-run.
//!
//! Shows the paper's central CAP trade-off live: during the partition the
//! read-mostly front-end traffic keeps flowing (PA/EL) while provisioning
//! writes addressed to isolated masters fail (PC/EC).
//!
//! ```sh
//! cargo run --release --example multinational_network
//! ```

use udr::core::{OpRequest, Udr, UdrConfig};
use udr::metrics::{pct, Table};
use udr::model::ids::SiteId;
use udr::model::{AttrId, AttrMod, AttrValue, Identity, SimDuration, SimTime, TxnClass};
use udr::sim::{FaultSchedule, SimRng};
use udr::workload::{PopulationBuilder, TrafficModel};

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

fn main() {
    let mut cfg = UdrConfig::figure2();
    cfg.ldap_servers_per_cluster = 4;
    cfg.seed = 2014;
    let mut udr = Udr::build(cfg).expect("valid configuration");

    // Population: 300 subscribers, region shares 50/30/20 (big, medium,
    // small country), 40 % IMS-enabled.
    let mut rng = SimRng::seed_from_u64(99);
    let population = PopulationBuilder::new(3)
        .region_weights(vec![5.0, 3.0, 2.0])
        .build(300, &mut rng);
    let mut at = t(0) + SimDuration::from_millis(1);
    for sub in &population {
        let out = udr.provision_subscriber(&sub.ids, sub.home_region, SiteId(0), at);
        assert!(out.is_ok());
        at += SimDuration::from_millis(3);
    }

    // Traffic: 600 s of procedures at 0.05 proc/sub/s with 5 % roaming.
    let mut model = TrafficModel::flat(0.05, 3);
    model.roaming_probability = 0.05;
    let events = model.generate(&population, t(10), t(610), &mut rng);
    println!("generated {} procedure arrivals over 600 s", events.len());

    // Fault: site 2 cut off from the backbone between t=200 and t=320.
    udr.schedule_faults(FaultSchedule::new().partition(
        t(200),
        SimDuration::from_secs(120),
        [SiteId(2)],
    ));

    // Drive: FE procedures from the generated stream; a slow provisioning
    // trickle targets subscribers of every region throughout.
    let mut window = [(0u64, 0u64); 3]; // (ok, fail) per phase: before/during/after
    let phase = |at: SimTime| -> usize {
        if at < t(200) {
            0
        } else if at < t(320) {
            1
        } else {
            2
        }
    };
    let mut prov_iter = population.iter().cycle();
    let mut next_prov = t(12);
    for ev in &events {
        // Interleave a provisioning write every 2 s.
        while next_prov <= ev.at {
            let target = prov_iter.next().unwrap();
            let out = udr.modify_services(
                &Identity::Imsi(target.ids.imsi),
                vec![AttrMod::Set(
                    AttrId::OdbMask,
                    AttrValue::U64(next_prov.as_nanos()),
                )],
                SiteId(0),
                next_prov,
            );
            let p = phase(next_prov);
            if out.is_ok() {
                window[p].0 += 1;
            } else {
                window[p].1 += 1;
            }
            next_prov += SimDuration::from_secs(2);
        }
        let sub = &population[ev.subscriber];
        udr.execute(
            OpRequest::procedure(ev.kind, &sub.ids)
                .site(ev.fe_site)
                .at(ev.at),
        )
        .into_procedure();
    }
    udr.advance_to(t(700));

    // ---- report ------------------------------------------------------------
    let fe = udr.metrics.ops(TxnClass::FrontEnd);
    let ps = udr.metrics.ops(TxnClass::Provisioning);
    let mut table = Table::new(["metric", "front-end", "provisioning"])
        .with_title("600 s multinational run with a 120 s partition of site 2");
    table.row(["operations ok".into(), fe.ok.to_string(), ps.ok.to_string()]);
    table.row([
        "availability failures".into(),
        fe.unavailable.to_string(),
        ps.unavailable.to_string(),
    ]);
    table.row([
        "operational availability".into(),
        pct(fe.operational_availability(), 3),
        pct(ps.operational_availability(), 3),
    ]);
    table.row([
        "mean latency".into(),
        udr.metrics.fe_latency.mean().to_string(),
        udr.metrics.ps_latency.mean().to_string(),
    ]);
    table.row([
        "p99 latency".into(),
        udr.metrics.fe_latency.p99().to_string(),
        udr.metrics.ps_latency.p99().to_string(),
    ]);
    println!("\n{table}");

    let mut phases = Table::new(["phase", "prov ok", "prov failed"])
        .with_title("provisioning (writes) by phase — the §4.1 failure mode");
    for (name, (ok, fail)) in ["before partition", "during partition", "after heal"]
        .iter()
        .zip(window)
    {
        phases.row([(*name).into(), ok.to_string(), fail.to_string()]);
    }
    println!("{phases}");

    println!(
        "stale slave reads: {} of {} reads ({}), mean lag {}",
        udr.metrics.staleness.stale_reads,
        udr.metrics.staleness.total_reads(),
        pct(udr.metrics.staleness.stale_fraction(), 2),
        udr.metrics.staleness.mean_lag_time(),
    );
    println!(
        "backbone crossings: {} of SE-bound ops ({})",
        udr.metrics.backbone_ops,
        pct(udr.metrics.backbone_fraction(), 1)
    );
    println!(
        "\nPACELC observed: FE stayed available during the partition ({}), PS writes to the \
         island failed ({}) — the paper's PA/EL vs PC/EC split.",
        udr.pacelc_for(TxnClass::FrontEnd),
        udr.pacelc_for(TxnClass::Provisioning)
    );
}
