//! Business intelligence over consolidated subscriber data — the UDC
//! motivation the paper opens with.
//!
//! §1: with silo'd nodes, "performing business intelligence and operative
//! research over subscriber data becomes a formidable task, since there's
//! no standardized way of fetching subscriber data from the silos." §2.2
//! adds that "data mining over the subscriber data stored in the UDR is
//! propelling service providers to move to a DLA telecom network."
//!
//! This example provisions a mixed population into the Figure 2 UDR,
//! shapes service profiles through normal PS writes, and then answers four
//! operator questions with standard LDAP filters evaluated against the
//! consolidated repository — counting the work the same questions cost in
//! a pre-UDC network (one vendor-specific full export per silo, plus
//! client-side correlation).
//!
//! ```sh
//! cargo run --release --example subscriber_analytics
//! ```

use udr::core::{Udr, UdrConfig};
use udr::ldap::Filter;
use udr::metrics::Table;
use udr::model::attrs::{AttrId, AttrMod, AttrValue};
use udr::model::identity::Identity;
use udr::model::ids::{SeId, SiteId};
use udr::model::{ReplicaRole, SimDuration, SimTime};
use udr::sim::SimRng;
use udr::workload::PopulationBuilder;

fn main() {
    let cfg = UdrConfig::figure2();
    let se_count = cfg.total_ses();
    let mut udr = Udr::build(cfg).expect("valid configuration");

    // Provision 900 subscribers across three home regions, ~35 % IMS.
    let mut rng = SimRng::seed_from_u64(22);
    let population = PopulationBuilder::new(3)
        .ims_fraction(0.35)
        .build(900, &mut rng);
    let mut at = SimTime::ZERO + SimDuration::from_millis(1);
    for sub in &population {
        // Rare WAN message loss can time an attempt out; the PS retries,
        // as §2.4 describes.
        let mut done = false;
        for _ in 0..4 {
            let out = udr.provision_subscriber(&sub.ids, sub.home_region, SiteId(0), at);
            at += SimDuration::from_millis(2);
            match out.op.result {
                Ok(_) => {
                    done = true;
                    break;
                }
                Err(e) if e.is_retryable() => continue,
                Err(e) => panic!("provisioning failed hard: {e}"),
            }
        }
        assert!(done, "provisioning kept timing out");
    }

    // Shape profiles through ordinary provisioning writes: pay-call barring
    // for ~12 %, operator-determined barring tiers, and a registration state
    // for the ~70 % of SIMs that have attached at least once.
    for (i, sub) in population.iter().enumerate() {
        let mut mods = Vec::new();
        if rng.chance(0.12) {
            mods.push(AttrMod::Set(AttrId::CallBarring, AttrValue::Bool(true)));
        }
        mods.push(AttrMod::Set(
            AttrId::OdbMask,
            AttrValue::U64((i % 8) as u64),
        ));
        if rng.chance(0.70) {
            mods.push(AttrMod::Set(
                AttrId::VlrAddress,
                AttrValue::Str(format!("vlr{}.region{}.example", i % 4, sub.home_region)),
            ));
        }
        let id = Identity::Imsi(sub.ids.imsi);
        let mut done = false;
        for _ in 0..4 {
            let out = udr.modify_services(&id, mods.clone(), SiteId(0), at);
            at += SimDuration::from_millis(2);
            match out.result {
                Ok(_) => {
                    done = true;
                    break;
                }
                Err(e) if e.is_retryable() => continue,
                Err(e) => panic!("modify failed hard: {e}"),
            }
        }
        assert!(done, "modify kept timing out");
    }

    // The operator's questions, as standard RFC 4515 filters.
    let questions: [(&str, &str); 4] = [
        ("lines with pay-call barring", "(callBarring=TRUE)"),
        (
            "region-2 heavy ODB (mask >= 4)",
            "(&(homeRegion=2)(odbMask>=4))",
        ),
        ("IMS subscribers (any sip: IMPU)", "(impuList=sip:*)"),
        ("never-registered SIMs", "(!(vlrAddress=*))"),
    ];

    let mut table = Table::new(["question", "filter", "matches", "entries scanned"])
        .with_title("operator BI queries against the consolidated UDR");
    for (label, filter_src) in questions {
        let filter: Filter = filter_src.parse().expect("valid filter");
        let (mut matches, mut scanned) = (0u64, 0u64);
        // One logical scan over the single data space: every master copy,
        // across all SEs (the UDR's Single Point of Access view).
        for se_idx in 0..se_count {
            let se = udr.se(SeId(se_idx));
            for partition in se.partitions().collect::<Vec<_>>() {
                if se.role(partition) != Some(ReplicaRole::Master) {
                    continue;
                }
                let engine = se.engine(partition).expect("replica exists");
                for view in engine.iter_committed() {
                    let Some(entry) = view.entry else {
                        continue;
                    };
                    scanned += 1;
                    if filter.matches(entry) {
                        matches += 1;
                    }
                }
            }
        }
        table.row([
            label.to_owned(),
            filter_src.to_owned(),
            matches.to_string(),
            scanned.to_string(),
        ]);
    }
    println!("{table}");

    println!(
        "\npre-UDC equivalent (§1): the same four questions require a full data export\n\
         from each of the HLR/HSS silos ({} per question here), each in a vendor-\n\
         specific format, plus client-side correlation of identities across silos —\n\
         the 'formidable task' consolidation removes. With the UDR every question is\n\
         one standard filter against one data space.",
        3 // one silo HLR per site in the Figure 1 baseline
    );
}
