//! The architectural argument of Figures 3→4, live: the same subscriber
//! activation during the same network glitch, on the pre-UDC node network
//! and on the UDR.
//!
//! §4.1: "a brand new user walks out of the phone shop and activates a
//! device… If the activation fails because there's a network partition at
//! that moment, two very bad things happen" — the user is disappointed,
//! and the provider pays a manual intervention.
//!
//! ```sh
//! cargo run --release --example preudc_vs_udc
//! ```

use udr::core::{OpRequest, Udr, UdrConfig};
use udr::model::ids::SiteId;
use udr::model::{Identity, ProcedureKind, SimDuration, SimTime};
use udr::preudc::PreUdcNetwork;
use udr::sim::net::Cut;
use udr::sim::{FaultSchedule, SimRng};
use udr::workload::PopulationBuilder;

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

fn main() {
    let mut rng = SimRng::seed_from_u64(2014);
    let population = PopulationBuilder::new(3).build(3, &mut rng);
    let alice = &population[0]; // home region from the generator

    println!(
        "subscriber: IMSI {}, home region {}\n",
        alice.ids.imsi, alice.home_region
    );
    println!("--- pre-UDC network (Figure 3): HLR silo + one SLF per site ---");
    {
        let mut net = PreUdcNetwork::new(3, SiteId(0), 7);
        // The backbone to site 2 glitches exactly when the shop clerk hits
        // "activate".
        let cut = net.net.start_partition(Cut::isolating([SiteId(2)]));
        let (result, latency) = net.provision(&alice.ids, alice.home_region, t(0));
        println!("activation result: {result:?} (took {latency})");
        println!("pending manual repairs: {}", net.pending_repairs());
        let (dangling, divergent) = net.audit();
        println!("network audit: {dangling} dangling routes, {divergent} divergent identities");

        // Alice powers her phone on while visiting site 2: dead.
        let id = Identity::Imsi(alice.ids.imsi);
        let (lookup, _) = net.fe_lookup(&id, SiteId(2), t(1));
        println!("phone registers at site 2: {lookup:?}");

        // The glitch heals; a technician (or the nightly repair job) fixes it.
        net.net.heal_partition(cut);
        let repaired = net.run_repairs(t(60));
        println!("after heal + repair pass: {repaired} subscription(s) completed");
        let (lookup, _) = net.fe_lookup(&id, SiteId(2), t(61));
        println!(
            "phone registers at site 2 now: {}",
            if lookup.is_ok() { "OK" } else { "still dead" }
        );
    }

    println!("\n--- UDC network (Figure 4): one UDR write, one transaction ---");
    {
        let mut cfg = UdrConfig::figure2();
        cfg.seed = 7;
        let mut udr = Udr::build(cfg).unwrap();
        udr.schedule_faults(FaultSchedule::new().partition(
            t(0),
            SimDuration::from_secs(30),
            [SiteId(2)],
        ));
        // Same activation, same glitch.
        let out = udr.provision_subscriber(&alice.ids, alice.home_region, SiteId(0), t(1));
        println!(
            "activation result: {} (took {})",
            if out.is_ok() {
                "OK".to_owned()
            } else {
                format!("{:?}", out.op.result)
            },
            out.op.latency
        );
        if !out.is_ok() {
            // Clean failure: the PS just retries after the glitch. Nothing
            // was left half-written anywhere.
            let retry = udr.provision_subscriber(&alice.ids, alice.home_region, SiteId(0), t(40));
            println!(
                "retry after heal: {} (took {})",
                if retry.is_ok() { "OK" } else { "failed" },
                retry.op.latency
            );
        }
        let reg = udr
            .execute(
                OpRequest::procedure(ProcedureKind::Attach, &alice.ids)
                    .site(SiteId(2))
                    .at(t(41)),
            )
            .into_procedure();
        println!(
            "phone registers at site 2: {}",
            if reg.success { "OK" } else { "failed" }
        );
    }

    println!(
        "\nMoral (§2.4): the pre-UDC activation left a half-provisioned subscriber on the\n\
         nodes — working in two countries, dead in the third — until someone repaired it.\n\
         The UDR activation either fully happened or cleanly didn't: the corner case the\n\
         UDC architecture exists to remove."
    );
}
