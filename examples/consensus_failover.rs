//! Consensus failover drill: the §6 evolution under fire.
//!
//! A five-site provisioning ensemble replicated with multi-Paxos takes a
//! steady stream of subscriber writes while the drill injects the two
//! faults the paper worries about most: the leader's site burns down
//! (§3.1's "unforeseen events") and the backbone partitions (§4.1). Watch
//! the leadership timeline, the per-window commit rate, and the final
//! agreement check — no restoration merge is ever needed.
//!
//! ```sh
//! cargo run --release --example consensus_failover
//! ```

use udr::consensus::runtime::{ClusterConfig, ConsensusCluster};
use udr::consensus::NodeId;
use udr::metrics::Table;
use udr::model::ids::SubscriberUid;
use udr::model::{SimDuration, SimTime};
use udr::sim::net::Topology;

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn main() {
    let mut cluster =
        ConsensusCluster::new(Topology::multinational(5), ClusterConfig::default(), 2014);

    // Let a leader emerge, then find out who it is so the drill can target it.
    cluster.run_until(secs(5));
    let leader = cluster.current_leader().expect("a leader by t=5s");
    println!("t=5s: {leader} leads a 5-site ensemble (WAN median 15 ms)\n");

    // A provisioning stream: one write every 200 ms for two minutes,
    // submitted round-robin through every site's PoA except the leader's
    // (its site is about to have a very bad day).
    let origins: Vec<u32> = (0..5u32).filter(|i| NodeId(*i) != leader).collect();
    let mut ids = Vec::new();
    for i in 0..600u64 {
        let at = secs(5) + SimDuration::from_millis(200 * i);
        let origin = origins[(i % origins.len() as u64) as usize];
        ids.push((
            at,
            cluster.submit_write_at(at, origin, SubscriberUid(i), None),
        ));
    }

    // The drill: leader site crashes at t=30s, restarts at t=60s;
    // then sites {3,4} are cut off from t=80s to t=100s.
    cluster.schedule_crash(secs(30), leader.0);
    cluster.schedule_restart(secs(60), leader.0);
    cluster.schedule_partition(secs(80), SimDuration::from_secs(20), [3u32, 4]);

    let report = cluster.run_until(secs(180));

    println!("leadership timeline:");
    for (at, node) in &report.leader_changes {
        let note = if *node == leader { " (original)" } else { "" };
        println!(
            "  t={:>6.1}s  {node} wins leadership{note}",
            at.as_secs_f64()
        );
    }

    // Commit rate per 20 s window of submission time.
    let mut table = Table::new(["window", "submitted", "committed in-window", "eventually"])
        .with_title("commit behaviour through the drill");
    for w in 0..6u64 {
        let (lo, hi) = (secs(5 + 20 * w), secs(5 + 20 * (w + 1)));
        let in_window: Vec<_> = ids
            .iter()
            .filter(|(at, _)| *at >= lo && *at < hi)
            .map(|(_, id)| *id)
            .collect();
        let committed_fast = in_window
            .iter()
            .filter(|id| {
                report.fates[id]
                    .commit_latency()
                    .is_some_and(|l| l < SimDuration::from_secs(2))
            })
            .count();
        let eventual = in_window
            .iter()
            .filter(|id| report.fates[id].chosen_at.is_some())
            .count();
        table.row([
            format!("{}-{}s", 5 + 20 * w, 5 + 20 * (w + 1)),
            in_window.len().to_string(),
            committed_fast.to_string(),
            eventual.to_string(),
        ]);
    }
    println!("\n{table}");

    println!(
        "messages: {} total, {} over the backbone ({} elections)",
        report.messages.total, report.messages.wan, report.elections
    );
    println!(
        "final watermarks: {:?}",
        report
            .final_committed
            .iter()
            .map(|s| s.raw())
            .collect::<Vec<_>>()
    );
    assert!(
        report.violations.is_empty(),
        "agreement violated: {:?}",
        report.violations
    );
    assert_eq!(
        report.committed(),
        ids.len(),
        "every write must eventually commit"
    );
    println!(
        "\nagreement check: all {} writes committed, all logs prefix-consistent —\n\
         availability was lost only for seconds around each fault, and consistency\n\
         never (the §5 restoration process has nothing to do).",
        ids.len()
    );
}
