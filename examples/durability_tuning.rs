//! Durability tuning (§3.1 footnote 6 and §5): how much latency does each
//! durability/replication knob cost, and how many committed transactions
//! does a lagging-master crash actually lose under each?
//!
//! "The latency penalty for achieving close to 100% guaranteed durability
//! is so high that some unwary service providers might think it twice
//! before going down that way."
//!
//! Scenario: the master's site is cut off the backbone at t=55 (its local
//! PS keeps writing, slaves stop receiving), the master crashes at t=60,
//! the partition heals at t=65 and the element restores at t=90. Whatever
//! committed between t=55 and t=60 exists nowhere else — each knob handles
//! that differently.
//!
//! ```sh
//! cargo run --release --example durability_tuning
//! ```

use udr::core::{Udr, UdrConfig};
use udr::metrics::Table;
use udr::model::ids::SiteId;
use udr::model::{
    AttrId, AttrMod, AttrValue, DurabilityMode, Identity, ReplicationMode, SimDuration, SimTime,
};
use udr::sim::{FaultSchedule, SimRng};
use udr::workload::PopulationBuilder;

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

struct RunResult {
    label: String,
    mean_commit: SimDuration,
    ok: u64,
    failed: u64,
    lost: u64,
    partial: u64,
}

fn run(durability: DurabilityMode, replication: ReplicationMode, auto_failover: bool) -> RunResult {
    let mut cfg = UdrConfig::figure2();
    cfg.frash.durability = durability;
    cfg.frash.replication = replication;
    cfg.frash.auto_failover = auto_failover;
    cfg.frash.failover_detection = SimDuration::from_secs(2);
    cfg.seed = 5;
    let mut udr = Udr::build(cfg).expect("valid configuration");

    let mut rng = SimRng::seed_from_u64(5);
    let population = PopulationBuilder::new(3).build(60, &mut rng);
    let mut at = t(0) + SimDuration::from_millis(1);
    for sub in &population {
        udr.provision_subscriber(&sub.ids, sub.home_region, SiteId(0), at);
        at += SimDuration::from_millis(2);
    }

    // Only write to subscribers homed at site 0 so every write goes to a
    // site-0 master from the site-0 PS.
    let home0: Vec<_> = population.iter().filter(|s| s.home_region == 0).collect();
    let master = udr
        .group(
            udr.lookup_authority(&Identity::Imsi(home0[0].ids.imsi))
                .unwrap()
                .partition,
        )
        .master();

    udr.schedule_faults(
        FaultSchedule::new()
            .partition(t(55), SimDuration::from_secs(10), [SiteId(0)])
            .se_outage(t(60), SimDuration::from_secs(30), master),
    );

    udr.metrics.ps_latency = Default::default();
    let mut writes = 0u64;
    let mut failed = 0u64;
    let mut i = 0usize;
    let mut at = t(10);
    while at < t(130) {
        let sub = &home0[i % home0.len()];
        let out = udr.modify_services(
            &Identity::Imsi(sub.ids.imsi),
            vec![AttrMod::Set(AttrId::AuthSqn, AttrValue::U64(writes))],
            SiteId(0),
            at,
        );
        if out.is_ok() {
            writes += 1;
        } else {
            failed += 1;
        }
        i += 1;
        at += SimDuration::from_millis(50);
    }
    udr.advance_to(t(300));

    RunResult {
        label: format!(
            "{durability} + {replication}{}",
            if auto_failover { "" } else { " (no failover)" }
        ),
        mean_commit: udr.metrics.ps_latency.mean(),
        ok: writes,
        failed,
        lost: udr.metrics.lost_commits,
        partial: udr.metrics.partial_commits,
    }
}

fn main() {
    println!(
        "durability tuning: 20 writes/s to site-0 masters for 120 s;\n\
         site 0 isolated t=55..65, master crash t=60, restore t=90\n"
    );
    let snapshot = DurabilityMode::PeriodicSnapshot {
        interval: SimDuration::from_secs(30),
    };
    let runs = [
        run(
            DurabilityMode::None,
            ReplicationMode::AsyncMasterSlave,
            true,
        ),
        run(snapshot, ReplicationMode::AsyncMasterSlave, true),
        run(
            DurabilityMode::SyncCommit,
            ReplicationMode::AsyncMasterSlave,
            false,
        ),
        run(snapshot, ReplicationMode::DualInSequence, true),
        run(snapshot, ReplicationMode::Quorum { n: 3, w: 2, r: 2 }, true),
        run(snapshot, ReplicationMode::Quorum { n: 3, w: 3, r: 1 }, true),
    ];
    let mut table = Table::new([
        "configuration",
        "mean write latency",
        "writes ok",
        "writes failed",
        "commits lost",
        "partial commits",
    ])
    .with_title("F vs R: the price of durability (§3.1 fn6, §5)");
    for r in &runs {
        table.row([
            r.label.clone(),
            r.mean_commit.to_string(),
            r.ok.to_string(),
            r.failed.to_string(),
            r.lost.to_string(),
            r.partial.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: async replication is fastest and keeps accepting writes while its site is\n\
         isolated — then loses exactly those commits when the master dies (the §4.2 gap).\n\
         Dual-in-sequence and quorum w=2 refuse those writes instead (fail-rather-than-lose);\n\
         quorum w=3 refuses even more. Sync-commit without failover loses nothing — the §3.1\n\
         fn6 option — but pays fsync on every write and is unavailable until restore. That is\n\
         the F–R slide of Figures 5/6, measured."
    );
}
